//! Runtime values and typed array storage.
//!
//! The mini-language has C arithmetic semantics: `int` (64-bit here for
//! safety), `float` (f32), `double` (f64), with the usual promotions and
//! truncating conversions. Device pointers are first-class values so the
//! `deviceptr` / `acc_malloc` / `host_data use_device` tests can pass them
//! around; dereferencing one on the host is a runtime error, which is how
//! the simulator models a segfault.

use crate::memory::BufferId;
use acc_ast::ScalarType;
use std::fmt;

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Single-precision float.
    F32(f32),
    /// Double-precision float.
    F64(f64),
    /// A device pointer (from `acc_malloc` or `use_device`).
    DevPtr(BufferId),
}

/// Errors raised by value operations (type confusion the front-end cannot
/// catch — e.g. arithmetic on a device pointer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueError(pub String);

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "value error: {}", self.0)
    }
}

impl std::error::Error for ValueError {}

impl Value {
    /// Zero of a scalar type.
    pub fn zero(ty: ScalarType) -> Value {
        match ty {
            ScalarType::Int => Value::Int(0),
            ScalarType::Float => Value::F32(0.0),
            ScalarType::Double => Value::F64(0.0),
        }
    }

    /// The value's numeric type, when it is numeric.
    pub fn scalar_type(self) -> Option<ScalarType> {
        match self {
            Value::Int(_) => Some(ScalarType::Int),
            Value::F32(_) => Some(ScalarType::Float),
            Value::F64(_) => Some(ScalarType::Double),
            Value::DevPtr(_) => None,
        }
    }

    /// As an integer (truthiness/index); errors on pointers.
    pub fn as_int(self) -> Result<i64, ValueError> {
        match self {
            Value::Int(v) => Ok(v),
            Value::F32(v) => Ok(v as i64),
            Value::F64(v) => Ok(v as i64),
            Value::DevPtr(_) => Err(ValueError("device pointer used as integer".into())),
        }
    }

    /// As an f64; errors on pointers.
    pub fn as_f64(self) -> Result<f64, ValueError> {
        match self {
            Value::Int(v) => Ok(v as f64),
            Value::F32(v) => Ok(v as f64),
            Value::F64(v) => Ok(v),
            Value::DevPtr(_) => Err(ValueError("device pointer used as number".into())),
        }
    }

    /// Truthiness (C semantics: nonzero = true). Pointers are true.
    pub fn truthy(self) -> bool {
        match self {
            Value::Int(v) => v != 0,
            Value::F32(v) => v != 0.0,
            Value::F64(v) => v != 0.0,
            Value::DevPtr(_) => true,
        }
    }

    /// Convert to the given scalar type (C conversion semantics).
    pub fn convert_to(self, ty: ScalarType) -> Result<Value, ValueError> {
        Ok(match ty {
            ScalarType::Int => Value::Int(self.as_int()?),
            ScalarType::Float => Value::F32(self.as_f64()? as f32),
            ScalarType::Double => Value::F64(self.as_f64()?),
        })
    }

    /// The common type of two operands under C promotion rules.
    pub fn promoted(a: Value, b: Value) -> Result<ScalarType, ValueError> {
        let (ta, tb) = (
            a.scalar_type()
                .ok_or_else(|| ValueError("pointer in arithmetic".into()))?,
            b.scalar_type()
                .ok_or_else(|| ValueError("pointer in arithmetic".into()))?,
        );
        Ok(if ta == ScalarType::Double || tb == ScalarType::Double {
            ScalarType::Double
        } else if ta == ScalarType::Float || tb == ScalarType::Float {
            ScalarType::Float
        } else {
            ScalarType::Int
        })
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::F32(v) => write!(f, "{v:?}f"),
            Value::F64(v) => write!(f, "{v:?}"),
            Value::DevPtr(b) => write!(f, "<devptr {}>", b.0),
        }
    }
}

/// Typed contiguous array storage used for both host arrays and device
/// buffers.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrayData {
    /// `int` elements.
    Int(Vec<i64>),
    /// `float` elements.
    F32(Vec<f32>),
    /// `double` elements.
    F64(Vec<f64>),
}

impl ArrayData {
    /// Zero-filled storage.
    pub fn zeros(ty: ScalarType, len: usize) -> ArrayData {
        match ty {
            ScalarType::Int => ArrayData::Int(vec![0; len]),
            ScalarType::Float => ArrayData::F32(vec![0.0; len]),
            ScalarType::Double => ArrayData::F64(vec![0.0; len]),
        }
    }

    /// Deterministic "uninitialized memory" pattern: recognizably garbage,
    /// never equal to small test constants, and varying by position so
    /// accidental matches are vanishingly unlikely.
    pub fn garbage(ty: ScalarType, len: usize, seed: u64) -> ArrayData {
        match ty {
            ScalarType::Int => ArrayData::Int(
                (0..len)
                    .map(|i| -(0x5EED_0000 + seed as i64 * 131 + i as i64 * 7))
                    .collect(),
            ),
            ScalarType::Float => ArrayData::F32(
                (0..len)
                    .map(|i| -1.0e30f32 - seed as f32 - i as f32)
                    .collect(),
            ),
            ScalarType::Double => ArrayData::F64(
                (0..len)
                    .map(|i| -1.0e300 - seed as f64 - i as f64)
                    .collect(),
            ),
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        match self {
            ArrayData::Int(v) => v.len(),
            ArrayData::F32(v) => v.len(),
            ArrayData::F64(v) => v.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element type.
    pub fn elem_type(&self) -> ScalarType {
        match self {
            ArrayData::Int(_) => ScalarType::Int,
            ArrayData::F32(_) => ScalarType::Float,
            ArrayData::F64(_) => ScalarType::Double,
        }
    }

    /// Read element `i`.
    pub fn get(&self, i: usize) -> Option<Value> {
        match self {
            ArrayData::Int(v) => v.get(i).map(|x| Value::Int(*x)),
            ArrayData::F32(v) => v.get(i).map(|x| Value::F32(*x)),
            ArrayData::F64(v) => v.get(i).map(|x| Value::F64(*x)),
        }
    }

    /// Write element `i`, converting `val` to the element type. Returns
    /// false when out of bounds.
    pub fn set(&mut self, i: usize, val: Value) -> Result<bool, ValueError> {
        if i >= self.len() {
            return Ok(false);
        }
        match self {
            ArrayData::Int(v) => v[i] = val.as_int()?,
            ArrayData::F32(v) => v[i] = val.as_f64()? as f32,
            ArrayData::F64(v) => v[i] = val.as_f64()?,
        }
        Ok(true)
    }

    /// Copy a section `[start, start+len)` from `src` into the same
    /// positions of `self`. Both must have the same element type and the
    /// section must be in bounds of both.
    pub fn copy_section_from(
        &mut self,
        src: &ArrayData,
        start: usize,
        len: usize,
    ) -> Result<(), ValueError> {
        if start + len > self.len() || start + len > src.len() {
            return Err(ValueError(format!(
                "section [{start}..{}) out of bounds (dst {}, src {})",
                start + len,
                self.len(),
                src.len()
            )));
        }
        match (self, src) {
            (ArrayData::Int(d), ArrayData::Int(s)) => {
                d[start..start + len].copy_from_slice(&s[start..start + len])
            }
            (ArrayData::F32(d), ArrayData::F32(s)) => {
                d[start..start + len].copy_from_slice(&s[start..start + len])
            }
            (ArrayData::F64(d), ArrayData::F64(s)) => {
                d[start..start + len].copy_from_slice(&s[start..start + len])
            }
            _ => return Err(ValueError("element type mismatch in transfer".into())),
        }
        Ok(())
    }

    /// Size in bytes (for transfer metrics).
    pub fn size_bytes(&self) -> usize {
        self.len() * self.elem_type().size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotions() {
        assert_eq!(
            Value::promoted(Value::Int(1), Value::F32(2.0)).unwrap(),
            ScalarType::Float
        );
        assert_eq!(
            Value::promoted(Value::F32(1.0), Value::F64(2.0)).unwrap(),
            ScalarType::Double
        );
        assert_eq!(
            Value::promoted(Value::Int(1), Value::Int(2)).unwrap(),
            ScalarType::Int
        );
    }

    #[test]
    fn conversions_truncate_like_c() {
        assert_eq!(
            Value::F64(2.9).convert_to(ScalarType::Int).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            Value::Int(3).convert_to(ScalarType::Float).unwrap(),
            Value::F32(3.0)
        );
        assert_eq!(
            Value::F32(1.5).convert_to(ScalarType::Double).unwrap(),
            Value::F64(1.5)
        );
    }

    #[test]
    fn pointer_arithmetic_rejected() {
        assert!(Value::DevPtr(BufferId(1)).as_int().is_err());
        assert!(Value::promoted(Value::DevPtr(BufferId(1)), Value::Int(0)).is_err());
    }

    #[test]
    fn truthiness() {
        assert!(Value::Int(-1).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(!Value::F64(0.0).truthy());
        assert!(Value::F32(0.5).truthy());
        assert!(Value::DevPtr(BufferId(0)).truthy());
    }

    #[test]
    fn array_get_set_with_conversion() {
        let mut a = ArrayData::zeros(ScalarType::Int, 4);
        assert!(a.set(2, Value::F64(7.9)).unwrap());
        assert_eq!(a.get(2), Some(Value::Int(7)));
        assert!(!a.set(4, Value::Int(1)).unwrap(), "oob write reports false");
        assert_eq!(a.get(4), None);
    }

    #[test]
    fn garbage_differs_from_zeros_and_is_deterministic() {
        let g1 = ArrayData::garbage(ScalarType::Int, 8, 3);
        let g2 = ArrayData::garbage(ScalarType::Int, 8, 3);
        let g3 = ArrayData::garbage(ScalarType::Int, 8, 4);
        assert_eq!(g1, g2);
        assert_ne!(g1, g3);
        assert_ne!(g1, ArrayData::zeros(ScalarType::Int, 8));
        for i in 0..8 {
            let v = g1.get(i).unwrap().as_int().unwrap();
            assert!(
                v < -1000,
                "garbage must not collide with small test constants"
            );
        }
    }

    #[test]
    fn section_copy() {
        let mut dst = ArrayData::zeros(ScalarType::Float, 6);
        let src = ArrayData::F32(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        dst.copy_section_from(&src, 2, 3).unwrap();
        assert_eq!(dst.get(1), Some(Value::F32(0.0)));
        assert_eq!(dst.get(2), Some(Value::F32(3.0)));
        assert_eq!(dst.get(4), Some(Value::F32(5.0)));
        assert_eq!(dst.get(5), Some(Value::F32(0.0)));
    }

    #[test]
    fn section_copy_errors() {
        let mut dst = ArrayData::zeros(ScalarType::Float, 4);
        let src = ArrayData::F32(vec![1.0; 8]);
        assert!(dst.copy_section_from(&src, 2, 3).is_err());
        let src_int = ArrayData::Int(vec![1; 8]);
        assert!(dst.copy_section_from(&src_int, 0, 2).is_err());
    }

    #[test]
    fn size_bytes() {
        assert_eq!(ArrayData::zeros(ScalarType::Float, 10).size_bytes(), 40);
        assert_eq!(ArrayData::zeros(ScalarType::Int, 10).size_bytes(), 80);
    }
}
