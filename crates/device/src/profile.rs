//! Execution profiles: the behaviour knobs a simulated vendor compiler sets.
//!
//! A profile captures two things:
//!
//! 1. **Legitimate implementation choices** the 1.0 spec leaves open —
//!    the gang/worker/vector hardware mapping (§II) and the
//!    worker-loop-without-gang policy (the Fig. 1 ambiguity). Different
//!    vendors legitimately differ here, and the testsuite must *not* call
//!    these bugs.
//! 2. **Injected defects** ([`Defect`]) — concrete wrong-code or runtime
//!    misbehaviours drawn from the paper's bug analyses (§V-B). The machine
//!    consults the active defect set at the corresponding semantic points,
//!    so a defect manifests as silently wrong results (the paper's "wrong
//!    code bugs"), a hang, or a crash — never as a flag the harness could
//!    cheat by reading.

use acc_spec::{ClauseKind, DirectiveKind, Language, ReductionOp, RuntimeRoutine, VendorMapping};
use std::collections::HashSet;

/// Policy for a `loop worker` with no enclosing `loop gang`
/// (the OpenACC 1.0 ambiguity of Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WorkerLoopPolicy {
    /// Partition iterations across the workers of each gang; with `G` gangs
    /// the loop body runs once per gang (CAPS-style).
    #[default]
    PerGangWorkers,
    /// Spread iterations across all gangs *and* workers; the loop body runs
    /// exactly once in total (Cray-style forward analysis).
    SpreadAcrossGangs,
    /// Treat the loop as sequential within each gang — the level is ignored
    /// (PGI-style, which does not map `worker` at all).
    SequentialPerGang,
}

/// The software stack the OpenACC program is translated through on a node
/// (the Titan harness of §VII validates both paths, Fig. 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TranslationTarget {
    /// OpenACC → CUDA.
    #[default]
    Cuda,
    /// OpenACC → OpenCL.
    Opencl,
}

impl TranslationTarget {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            TranslationTarget::Cuda => "CUDA",
            TranslationTarget::Opencl => "OpenCL",
        }
    }
}

/// An injected defect. Each corresponds to an observable misbehaviour; the
/// machine and the compiler driver consult the set at the matching semantic
/// point.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Defect {
    /// The directive parses but has no effect (silent wrong code). E.g. a
    /// broken `loop` directive leaves the loop running gang-redundantly.
    IgnoreDirective(DirectiveKind),
    /// The clause parses but is silently ignored on the given directive.
    IgnoreClause(DirectiveKind, ClauseKind),
    /// Compile-time rejection of the feature ("not yet supported"): the
    /// compiler driver fails with an internal error when the feature occurs.
    CompileError(DirectiveKind, Option<ClauseKind>),
    /// §V-B CAPS: non-constant expressions in `num_gangs`/`num_workers`/
    /// `vector_length` are rejected at compile time.
    RejectVariableSizingExpr,
    /// §V-B PGI: the whole asynchronous family is broken — `acc_async_test`
    /// and friends never observe completion, and results written by async
    /// activities never become visible (the routine returns the untouched
    /// initial value, observed as -1 in the paper's Fig. 10 test).
    AsyncFamilyBroken,
    /// §V-B Cray: scalar variables in `copy`/`copyin`/`copyout` clauses are
    /// not transferred (arrays still are).
    ScalarCopyOmitted,
    /// §V-B Cray: compute regions whose result is provably unused (the
    /// "dummy loop" of Fig. 11) are eliminated, including their data
    /// movement.
    EliminateDeadComputeRegions,
    /// A reduction with the given operator produces a wrong partial-
    /// combination (classic "complex directives such as reduction" bugs).
    WrongReduction(ReductionOp),
    /// A specific runtime routine is broken: it returns the given constant
    /// instead of its real result.
    RoutineReturnsConstant(RuntimeRoutine, i64),
    /// `update host`/`update device` silently does nothing.
    UpdateNoop,
    /// `firstprivate` behaves like `private` (copies are not initialized
    /// from the host value; they see garbage).
    FirstprivateUninitialized,
    /// Kernel launches on this feature hang (the paper's "code executes
    /// forever" runtime error class). The machine aborts with a timeout when
    /// a region carrying the clause executes.
    HangOnClause(DirectiveKind, ClauseKind),
    /// The `collapse(n)` clause only collapses the outermost loop
    /// (n is effectively 1).
    CollapseIgnoresInner,
    /// `private` is ignored: "private" variables alias the shared copy.
    PrivateAliasesShared,
    /// The runtime routine is missing from the vendor's library: programs
    /// calling it fail at compile/link time.
    RejectRoutine(RuntimeRoutine),
    /// *Transient* infrastructure fault: a host↔device transfer fails
    /// (crashing the run) with probability `rate_pct`% per transfer. The
    /// draw is a pure function of `seed`, the program name, and the run
    /// index, so a given (seed, program, attempt) triple always reproduces —
    /// deterministic flakiness, the field failure mode the Titan harness's
    /// nightly retries exist for (§VII).
    TransientMemcpyFault {
        /// Failure probability in percent (0–100) per transfer.
        rate_pct: u8,
        /// Seed decorrelating this fault source from others.
        seed: u64,
    },
    /// *Transient* infrastructure fault: a `wait` (or synchronous queue
    /// drain) stalls forever with probability `rate_pct`% per wait,
    /// observed as a timeout. Same determinism contract as
    /// [`Defect::TransientMemcpyFault`].
    IntermittentAsyncStall {
        /// Stall probability in percent (0–100) per wait point.
        rate_pct: u8,
        /// Seed decorrelating this fault source from others.
        seed: u64,
    },
}

impl Defect {
    /// Is this a transient infrastructure fault (retry-able) rather than a
    /// deterministic compiler bug?
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            Defect::TransientMemcpyFault { .. } | Defect::IntermittentAsyncStall { .. }
        )
    }
}

/// Deterministic per-event fault decision shared by every transient-fault
/// site: SplitMix64 over `(seed, program hash, run index, event index)`.
/// Thread-schedule independent — the machine executing a program is
/// single-threaded, and everything entering the hash is fixed per attempt.
pub fn transient_fault_fires(
    rate_pct: u8,
    seed: u64,
    program_hash: u64,
    run_index: u64,
    event_index: u64,
) -> bool {
    if rate_pct == 0 {
        return false;
    }
    if rate_pct >= 100 {
        return true;
    }
    let mut z = seed
        ^ program_hash.rotate_left(17)
        ^ run_index.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ event_index.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % 100) < rate_pct as u64
}

/// FNV-1a hash of a program name — the stable `program_hash` input to
/// [`transient_fault_fires`].
pub fn stable_name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Which languages a defect (or a whole profile rule) applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LangScope {
    /// C only.
    COnly,
    /// Fortran only.
    FortranOnly,
    /// Both languages.
    Both,
}

impl LangScope {
    /// Does the scope cover `lang`?
    pub fn covers(self, lang: Language) -> bool {
        match self {
            LangScope::COnly => lang == Language::C,
            LangScope::FortranOnly => lang == Language::Fortran,
            LangScope::Both => true,
        }
    }
}

/// The complete behavioural profile the machine executes under.
#[derive(Debug, Clone)]
pub struct ExecProfile {
    /// Human-readable name ("CAPS 3.0.7 (C)").
    pub name: String,
    /// gang/worker/vector hardware mapping.
    pub mapping: VendorMapping,
    /// Policy for the Fig. 1 ambiguity.
    pub worker_loop_policy: WorkerLoopPolicy,
    /// Software stack (CUDA/OpenCL) — semantics-neutral, recorded in
    /// metrics and used by the Titan harness.
    pub target: TranslationTarget,
    /// Default gang count when `num_gangs` is absent.
    pub default_gangs: u32,
    /// Default workers per gang when `num_workers` is absent.
    pub default_workers: u32,
    /// Default vector length when `vector_length` is absent.
    pub default_vector: u32,
    /// Gang count the compiler auto-selects for loops in `kernels` regions
    /// (which admit no `num_gangs`).
    pub kernels_auto_gangs: u32,
    /// Active injected defects.
    defects: HashSet<Defect>,
}

impl ExecProfile {
    /// A defect-free, spec-conforming profile with the given mapping.
    pub fn conforming(name: impl Into<String>, mapping: VendorMapping) -> Self {
        ExecProfile {
            name: name.into(),
            mapping,
            worker_loop_policy: WorkerLoopPolicy::default(),
            target: TranslationTarget::default(),
            default_gangs: 1,
            default_workers: 1,
            default_vector: 1,
            kernels_auto_gangs: 8,
            defects: HashSet::new(),
        }
    }

    /// A reference profile used by the validation suite itself to compute
    /// expected results (PGI-style mapping, no defects).
    pub fn reference() -> Self {
        Self::conforming("reference", VendorMapping::PGI_STYLE)
    }

    /// Add a defect.
    pub fn inject(&mut self, d: Defect) {
        self.defects.insert(d);
    }

    /// Builder-style defect injection.
    pub fn with_defect(mut self, d: Defect) -> Self {
        self.inject(d);
        self
    }

    /// Remove a defect (a vendor fixed the bug in a newer release).
    pub fn fix(&mut self, d: &Defect) -> bool {
        self.defects.remove(d)
    }

    /// Is the defect active?
    pub fn has(&self, d: &Defect) -> bool {
        self.defects.contains(d)
    }

    /// Is a clause on a directive silently ignored? A combined construct
    /// inherits clause defects keyed to its components (`parallel loop`
    /// carries every `parallel` and `loop` clause bug).
    pub fn ignores_clause(&self, dir: DirectiveKind, clause: ClauseKind) -> bool {
        dir.components()
            .iter()
            .any(|d| self.defects.contains(&Defect::IgnoreClause(*d, clause)))
    }

    /// Is a directive silently ignored? Only the exact kind counts here — a
    /// broken standalone `loop` does not imply the combined construct is
    /// broken (its loop handling is separate code in real compilers).
    pub fn ignores_directive(&self, dir: DirectiveKind) -> bool {
        self.defects.contains(&Defect::IgnoreDirective(dir))
    }

    /// Does a feature occurrence hang the device? Component-aware like
    /// [`ignores_clause`](Self::ignores_clause).
    pub fn hangs_on(&self, dir: DirectiveKind, clause: ClauseKind) -> bool {
        dir.components()
            .iter()
            .any(|d| self.defects.contains(&Defect::HangOnClause(*d, clause)))
    }

    /// The compile-time rejection for a directive/clause pair, if any.
    /// Component-aware: rejecting `async` on `parallel` also rejects it on
    /// `parallel loop`.
    pub fn compile_error(&self, dir: DirectiveKind, clause: Option<ClauseKind>) -> bool {
        dir.components()
            .iter()
            .any(|d| self.defects.contains(&Defect::CompileError(*d, clause)))
    }

    /// Constant-return override for a runtime routine, if any.
    pub fn routine_override(&self, r: RuntimeRoutine) -> Option<i64> {
        self.defects.iter().find_map(|d| match d {
            Defect::RoutineReturnsConstant(routine, v) if *routine == r => Some(*v),
            _ => None,
        })
    }

    /// Any transient infrastructure faults configured? When false, the
    /// machine's outcome is independent of the attempt index — every
    /// decision point the index feeds is dead — so repeated executions of
    /// one executable are provably identical and callers may run once and
    /// reuse the outcome.
    pub fn has_transient_faults(&self) -> bool {
        self.defects.iter().any(|d| d.is_transient())
    }

    /// Number of active defects.
    pub fn defect_count(&self) -> usize {
        self.defects.len()
    }

    /// Iterate active defects (unordered).
    pub fn defects(&self) -> impl Iterator<Item = &Defect> {
        self.defects.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conforming_profile_has_no_defects() {
        let p = ExecProfile::reference();
        assert_eq!(p.defect_count(), 0);
        assert!(!p.ignores_directive(DirectiveKind::Loop));
        assert!(!p.compile_error(DirectiveKind::Declare, None));
    }

    #[test]
    fn inject_and_fix() {
        let mut p = ExecProfile::reference();
        let d = Defect::IgnoreClause(DirectiveKind::Parallel, ClauseKind::Firstprivate);
        p.inject(d.clone());
        assert!(p.ignores_clause(DirectiveKind::Parallel, ClauseKind::Firstprivate));
        assert!(p.fix(&d));
        assert!(!p.ignores_clause(DirectiveKind::Parallel, ClauseKind::Firstprivate));
        assert!(!p.fix(&d), "fixing twice reports false");
    }

    #[test]
    fn combined_constructs_inherit_component_clause_defects() {
        let p = ExecProfile::reference().with_defect(Defect::IgnoreClause(
            DirectiveKind::Parallel,
            ClauseKind::Async,
        ));
        assert!(p.ignores_clause(DirectiveKind::Parallel, ClauseKind::Async));
        assert!(p.ignores_clause(DirectiveKind::ParallelLoop, ClauseKind::Async));
        assert!(!p.ignores_clause(DirectiveKind::KernelsLoop, ClauseKind::Async));
        let p = ExecProfile::reference().with_defect(Defect::CompileError(
            DirectiveKind::Loop,
            Some(ClauseKind::Collapse),
        ));
        assert!(p.compile_error(DirectiveKind::KernelsLoop, Some(ClauseKind::Collapse)));
        // Whole-directive breakage stays exact.
        let p = ExecProfile::reference().with_defect(Defect::IgnoreDirective(DirectiveKind::Loop));
        assert!(!p.ignores_directive(DirectiveKind::ParallelLoop));
    }

    #[test]
    fn routine_override_lookup() {
        let p = ExecProfile::reference().with_defect(Defect::RoutineReturnsConstant(
            RuntimeRoutine::AsyncTest,
            -1,
        ));
        assert_eq!(p.routine_override(RuntimeRoutine::AsyncTest), Some(-1));
        assert_eq!(p.routine_override(RuntimeRoutine::AsyncTestAll), None);
    }

    #[test]
    fn lang_scope_covers() {
        assert!(LangScope::Both.covers(Language::C));
        assert!(LangScope::COnly.covers(Language::C));
        assert!(!LangScope::COnly.covers(Language::Fortran));
        assert!(LangScope::FortranOnly.covers(Language::Fortran));
    }

    #[test]
    fn defects_are_set_semantics() {
        let mut p = ExecProfile::reference();
        p.inject(Defect::ScalarCopyOmitted);
        p.inject(Defect::ScalarCopyOmitted);
        assert_eq!(p.defect_count(), 1);
    }

    #[test]
    fn worker_policy_default() {
        assert_eq!(
            WorkerLoopPolicy::default(),
            WorkerLoopPolicy::PerGangWorkers
        );
    }

    #[test]
    fn transient_faults_are_deterministic_and_rate_bounded() {
        // Same inputs → same decision, always.
        for event in 0..50 {
            let a = transient_fault_fires(30, 7, 99, 2, event);
            let b = transient_fault_fires(30, 7, 99, 2, event);
            assert_eq!(a, b);
        }
        // Rate 0 never fires; rate 100 always fires.
        assert!(!transient_fault_fires(0, 1, 2, 3, 4));
        assert!(transient_fault_fires(100, 1, 2, 3, 4));
        // A mid rate fires sometimes but not always across events.
        let fires: Vec<bool> = (0..200)
            .map(|e| transient_fault_fires(50, 11, 22, 0, e))
            .collect();
        assert!(fires.iter().any(|f| *f));
        assert!(fires.iter().any(|f| !*f));
        // Different run indices decorrelate (retries see fresh draws).
        let runs: Vec<bool> = (0..64)
            .map(|run| transient_fault_fires(50, 11, 22, run, 0))
            .collect();
        assert!(runs.iter().any(|f| *f) && runs.iter().any(|f| !*f));
    }

    #[test]
    fn transient_classification() {
        assert!(Defect::TransientMemcpyFault { rate_pct: 5, seed: 1 }.is_transient());
        assert!(Defect::IntermittentAsyncStall { rate_pct: 5, seed: 1 }.is_transient());
        assert!(!Defect::ScalarCopyOmitted.is_transient());
    }

    #[test]
    fn name_hash_is_stable_and_discriminating() {
        assert_eq!(stable_name_hash("loop"), stable_name_hash("loop"));
        assert_ne!(stable_name_hash("loop"), stable_name_hash("data.copy"));
    }

    #[test]
    fn translation_target_labels() {
        assert_eq!(TranslationTarget::Cuda.label(), "CUDA");
        assert_eq!(TranslationTarget::Opencl.label(), "OpenCL");
    }
}
