//! A genuinely parallel execution backend for partitioned, race-free
//! kernels.
//!
//! The conformance machine interprets gangs *deterministically in sequence*,
//! because conformance tests depend on observing redundant-execution effects
//! exactly (DESIGN.md §4.1). For throughput benchmarking we also provide a
//! real thread-parallel backend over crossbeam scoped threads: a partitioned
//! gang loop whose iterations are provably disjoint is split into per-thread
//! index ranges executed concurrently. The perf_device bench contrasts the
//! two (the "ablation" of the deterministic-semantics design choice).
//!
//! The backend executes *data-parallel element kernels* — a function applied
//! to each index — rather than interpreting ASTs on worker threads, which
//! keeps the hot loop allocation-free per the HPC guidance.

use crate::value::ArrayData;

/// How to split an index space across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// Contiguous blocks, one per thread.
    Block,
    /// Cyclic assignment (thread t takes i where i % threads == t) —
    /// mirrors the deterministic machine's gang schedule. Implemented by
    /// re-mapping to blocks internally for cache friendliness when legal.
    Cyclic,
}

/// Statistics from a parallel kernel execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchStats {
    /// Threads used.
    pub threads: usize,
    /// Total elements processed.
    pub elements: usize,
}

/// Apply `f(i, &mut out[i])` over `out` in parallel with `threads` threads.
///
/// The closure receives the global element index; disjointness is guaranteed
/// by construction (each thread owns a distinct sub-slice), so this is safe
/// for any `f`.
pub fn par_map_f64(
    out: &mut [f64],
    threads: usize,
    partition: Partition,
    f: impl Fn(usize, &mut f64) + Sync,
) -> LaunchStats {
    let threads = threads.max(1).min(out.len().max(1));
    let n = out.len();
    if threads <= 1 || n < 2 {
        for (i, v) in out.iter_mut().enumerate() {
            f(i, v);
        }
        return LaunchStats {
            threads: 1,
            elements: n,
        };
    }
    match partition {
        Partition::Block => {
            let chunk = n.div_ceil(threads);
            crossbeam::scope(|s| {
                for (t, slice) in out.chunks_mut(chunk).enumerate() {
                    let f = &f;
                    s.spawn(move |_| {
                        let base = t * chunk;
                        for (j, v) in slice.iter_mut().enumerate() {
                            f(base + j, v);
                        }
                    });
                }
            })
            .expect("worker thread panicked");
        }
        Partition::Cyclic => {
            // Cyclic ownership: thread t owns indices t, t+T, t+2T, …
            // chunks_mut can't express that, so hand out raw sub-ranges via
            // split_at_mut round-robin reindexing: we transpose by striding
            // over a raw pointer wrapper that guarantees disjointness.
            struct Shared(*mut f64, usize);
            unsafe impl Sync for Shared {}
            let shared = Shared(out.as_mut_ptr(), n);
            crossbeam::scope(|s| {
                for t in 0..threads {
                    let f = &f;
                    let shared = &shared;
                    s.spawn(move |_| {
                        let mut i = t;
                        while i < shared.1 {
                            // SAFETY: thread t touches only indices ≡ t (mod
                            // threads); the index sets are pairwise disjoint
                            // and in-bounds.
                            let v = unsafe { &mut *shared.0.add(i) };
                            f(i, v);
                            i += threads;
                        }
                    });
                }
            })
            .expect("worker thread panicked");
        }
    }
    LaunchStats {
        threads,
        elements: n,
    }
}

/// Split the flat index space `0..total` into contiguous blocks, run
/// `f(lo, hi)` for each block on a worker pool, and return the per-block
/// results **in block order** — the generic dispatch entry the VM's
/// parallel gang engine uses to launch element kernels.
///
/// With `threads <= 1` (or a space too small to split) the single call runs
/// inline on the caller's thread — no pool, no allocation — so the parallel
/// engine costs nothing extra on single-core hosts. Determinism does not
/// depend on the partition: callers only dispatch plans whose iterations are
/// provably disjoint (DESIGN.md §15.1), and block-ordered results let the
/// caller commit writes in global iteration order regardless.
pub fn par_ranges<T: Send>(
    total: u64,
    threads: usize,
    f: impl Fn(u64, u64) -> T + Sync,
) -> Vec<T> {
    let threads = threads.max(1).min(usize::try_from(total).unwrap_or(usize::MAX).max(1));
    if threads <= 1 || total < 2 {
        return vec![f(0, total)];
    }
    let chunk = total.div_ceil(threads as u64);
    let mut out: Vec<Option<T>> = Vec::new();
    out.resize_with(threads, || None);
    crossbeam::scope(|s| {
        for (t, slot) in out.iter_mut().enumerate() {
            let f = &f;
            s.spawn(move |_| {
                let lo = ((t as u64) * chunk).min(total);
                let hi = (lo + chunk).min(total);
                *slot = Some(f(lo, hi));
            });
        }
    })
    .expect("worker thread panicked");
    out.into_iter()
        .map(|r| r.expect("worker produced no result"))
        .collect()
}

/// Sequential reference for the same kernel shape (the deterministic
/// machine's schedule): used by benches as the baseline.
pub fn seq_map_f64(out: &mut [f64], f: impl Fn(usize, &mut f64)) -> LaunchStats {
    for (i, v) in out.iter_mut().enumerate() {
        f(i, v);
    }
    LaunchStats {
        threads: 1,
        elements: out.len(),
    }
}

/// Parallel sum reduction with per-thread partials combined on the caller
/// thread — the execution shape of `loop reduction(+:x)` under real
/// parallelism.
pub fn par_sum_f64(data: &[f64], threads: usize) -> f64 {
    let threads = threads.max(1).min(data.len().max(1));
    if threads <= 1 || data.len() < 2 {
        return data.iter().sum();
    }
    let chunk = data.len().div_ceil(threads);
    let mut partials = vec![0.0f64; threads.min(data.len().div_ceil(chunk))];
    crossbeam::scope(|s| {
        for (p, slice) in partials.iter_mut().zip(data.chunks(chunk)) {
            s.spawn(move |_| {
                *p = slice.iter().sum();
            });
        }
    })
    .expect("worker thread panicked");
    partials.iter().sum()
}

/// A saxpy-shaped workload over [`ArrayData`] buffers, used by the device
/// throughput bench: `y[i] = a*x[i] + y[i]`.
pub fn saxpy(a: f64, x: &ArrayData, y: &mut ArrayData, threads: usize) -> LaunchStats {
    match (x, y) {
        (ArrayData::F64(x), ArrayData::F64(y)) => {
            let x = x.as_slice();
            par_map_f64(y, threads, Partition::Block, |i, v| *v += a * x[i])
        }
        _ => panic!("saxpy requires f64 buffers"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_matches_sequential() {
        let mut par = vec![0.0; 1000];
        let mut seq = vec![0.0; 1000];
        par_map_f64(&mut par, 4, Partition::Block, |i, v| *v = (i as f64).sqrt());
        seq_map_f64(&mut seq, |i, v| *v = (i as f64).sqrt());
        assert_eq!(par, seq);
    }

    #[test]
    fn cyclic_matches_sequential() {
        let mut par = vec![0.0; 1003]; // non-divisible length
        let mut seq = vec![0.0; 1003];
        par_map_f64(&mut par, 7, Partition::Cyclic, |i, v| *v = i as f64 * 3.0);
        seq_map_f64(&mut seq, |i, v| *v = i as f64 * 3.0);
        assert_eq!(par, seq);
    }

    #[test]
    fn single_thread_and_empty() {
        let mut v: Vec<f64> = vec![];
        let s = par_map_f64(&mut v, 8, Partition::Block, |_, _| {});
        assert_eq!(s.elements, 0);
        let mut one = vec![1.0];
        let s = par_map_f64(&mut one, 8, Partition::Cyclic, |_, v| *v += 1.0);
        assert_eq!(s.threads, 1);
        assert_eq!(one[0], 2.0);
    }

    #[test]
    fn par_sum_matches_sequential() {
        let data: Vec<f64> = (0..10_000).map(|i| i as f64 * 0.5).collect();
        let expect: f64 = data.iter().sum();
        for threads in [1, 2, 3, 8, 64] {
            let got = par_sum_f64(&data, threads);
            assert!(
                (got - expect).abs() < 1e-6,
                "threads={threads}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn saxpy_computes() {
        let x = ArrayData::F64((0..64).map(|i| i as f64).collect());
        let mut y = ArrayData::F64(vec![1.0; 64]);
        let stats = saxpy(2.0, &x, &mut y, 4);
        assert_eq!(stats.elements, 64);
        assert_eq!(y.get(10).unwrap().as_f64().unwrap(), 21.0);
    }

    #[test]
    #[should_panic(expected = "saxpy requires f64")]
    fn saxpy_type_checked() {
        let x = ArrayData::Int(vec![0; 4]);
        let mut y = ArrayData::F64(vec![0.0; 4]);
        saxpy(1.0, &x, &mut y, 1);
    }

    #[test]
    fn par_ranges_tiles_the_space_in_order() {
        for threads in [1, 2, 3, 8] {
            let ranges = par_ranges(1003u64, threads, |lo, hi| (lo, hi));
            // Blocks tile 0..1003 exactly, in order, no overlap.
            let mut next = 0u64;
            for (lo, hi) in &ranges {
                assert_eq!(*lo, next.min(1003));
                assert!(hi >= lo);
                next = *hi;
            }
            assert_eq!(ranges.last().unwrap().1, 1003);
        }
        // Inline path: single result covering everything.
        assert_eq!(par_ranges(5u64, 1, |lo, hi| hi - lo), vec![5]);
        assert_eq!(par_ranges(0u64, 8, |lo, hi| hi - lo), vec![0]);
    }

    #[test]
    fn threads_clamped_to_len() {
        let mut v = vec![0.0; 3];
        let s = par_map_f64(&mut v, 100, Partition::Block, |i, x| *x = i as f64);
        assert!(s.threads <= 3);
        assert_eq!(v, vec![0.0, 1.0, 2.0]);
    }
}
