//! # acc-device — the simulated accelerator
//!
//! The paper's testbed is a 16-core Xeon host with an NVIDIA K20: a
//! *discrete-memory* accelerator behind a driver that offers asynchronous
//! work queues. This crate simulates exactly the properties the OpenACC 1.0
//! feature set observes:
//!
//! * **Discrete memory** ([`memory`]): device buffers are distinct from host
//!   storage; host writes are invisible on the device until an explicit
//!   transfer and vice versa. A present-table tracks which host symbols are
//!   mapped, with reference counts for nested data regions.
//! * **Asynchronous queues on a virtual clock** ([`queue`]): work enqueued
//!   with an `async(tag)` clause completes at a simulated timestamp;
//!   `acc_async_test` compares against the clock, `wait` advances it. No
//!   wall-clock sleeps, fully deterministic.
//! * **Uninitialized-memory modeling**: freshly created buffers are filled
//!   with a deterministic garbage pattern, so `copyout`-without-write tests
//!   observe "non-deterministic" values that differ from host data (§IV-B-3).
//! * **Execution profile** ([`profile`]): the knobs a simulated vendor
//!   compiler twists — gang/worker/vector hardware mapping, the
//!   worker-without-gang ambiguity policy, and injected wrong-code defects.
//! * **Metrics** ([`metrics`]): kernels launched, bytes moved, iterations
//!   executed — consumed by the benches and the Titan harness.
//! * **A genuinely parallel backend** ([`parallel`]): crossbeam-based
//!   execution of race-free partitioned kernels, used by the performance
//!   benches to contrast the deterministic interpreter with real threads.

#![warn(missing_docs)]

pub mod memory;
pub mod metrics;
pub mod parallel;
pub mod profile;
pub mod queue;
pub mod value;

pub use memory::{BufferId, DeviceBuffer, DeviceMemory, PresentEntry, PresentTable};
pub use metrics::Metrics;
pub use profile::{Defect, ExecProfile, TranslationTarget, WorkerLoopPolicy};
pub use queue::{AsyncQueues, VirtualClock};
pub use value::{ArrayData, Value};
