//! Property tests on the device substrate: memory/present-table invariants,
//! queue semantics, and parallel-backend equivalence.

use acc_ast::ScalarType;
use acc_device::memory::{DeviceMemory, ExitAction, PresentEntry, PresentTable};
use acc_device::parallel::{par_map_f64, par_sum_f64, seq_map_f64, Partition};
use acc_device::queue::{AsyncQueues, AsyncTag, VirtualClock};
use acc_device::{ArrayData, BufferId};
use proptest::prelude::*;

proptest! {
    #[test]
    fn upload_download_round_trips_any_section(
        len in 1usize..128,
        start_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
        vals in prop::collection::vec(-1000i64..1000, 128),
    ) {
        let start = ((len - 1) as f64 * start_frac) as usize;
        let sec_len = 1 + ((len - start - 1) as f64 * len_frac) as usize;
        let host = ArrayData::Int(vals[..len].to_vec());
        let mut mem = DeviceMemory::new();
        let buf = mem.alloc(ScalarType::Int, vec![len]);
        mem.upload(buf, &host, start, sec_len).unwrap();
        let mut back = ArrayData::Int(vec![0; len]);
        mem.download(buf, &mut back, start, sec_len).unwrap();
        for i in start..start + sec_len {
            prop_assert_eq!(back.get(i), host.get(i));
        }
        // Outside the section stays zero.
        for i in (0..start).chain(start + sec_len..len) {
            prop_assert_eq!(back.get(i).unwrap().as_int().unwrap(), 0);
        }
    }

    #[test]
    fn alloc_free_never_leaks(ops in prop::collection::vec(1usize..64, 1..40)) {
        let mut mem = DeviceMemory::new();
        let mut live = Vec::new();
        for (k, n) in ops.iter().enumerate() {
            if k % 3 == 2 && !live.is_empty() {
                let buf: BufferId = live.swap_remove(k % live.len());
                mem.free(buf).unwrap();
            } else {
                live.push(mem.alloc(ScalarType::Double, vec![*n]));
            }
        }
        prop_assert_eq!(mem.live_buffers(), live.len());
        for buf in live.drain(..) {
            mem.free(buf).unwrap();
        }
        prop_assert_eq!(mem.live_buffers(), 0);
        prop_assert_eq!(mem.allocated_bytes, 0);
    }

    #[test]
    fn present_table_refcounts_balance(reenters in 0u32..10) {
        let mut t = PresentTable::new();
        t.insert("v", PresentEntry {
            buffer: BufferId(1),
            start: 0,
            len: 4,
            exit_action: ExitAction::CopyOut,
            refcount: 1,
        });
        for _ in 0..reenters {
            prop_assert!(t.reenter("v"));
        }
        // Exactly `reenters` exits keep the entry; the final exit releases.
        for _ in 0..reenters {
            prop_assert!(t.exit("v").unwrap().is_none());
            prop_assert!(t.contains("v"));
        }
        let released = t.exit("v").unwrap();
        prop_assert!(released.is_some());
        prop_assert!(!t.contains("v"));
    }

    #[test]
    fn queue_completion_matches_max_timestamp(
        times in prop::collection::vec(1u64..1000, 1..20),
    ) {
        let mut q = AsyncQueues::new();
        for (i, t) in times.iter().enumerate() {
            q.enqueue(AsyncTag::Numbered(1), *t, i as u64);
        }
        let max = *times.iter().max().unwrap();
        prop_assert_eq!(q.tag_completion(AsyncTag::Numbered(1)), Some(max));
        prop_assert!(!q.tag_done(AsyncTag::Numbered(1), max - 1));
        prop_assert!(q.tag_done(AsyncTag::Numbered(1), max));
        // Draining at the max yields every payload exactly once.
        let mut payloads = q.drain_complete(AsyncTag::Numbered(1), max);
        payloads.sort_unstable();
        let expected: Vec<u64> = (0..times.len() as u64).collect();
        prop_assert_eq!(payloads, expected);
    }

    #[test]
    fn clock_never_goes_backwards(jumps in prop::collection::vec(0u64..500, 1..30)) {
        let mut c = VirtualClock::new();
        let mut last = 0;
        for (i, j) in jumps.iter().enumerate() {
            if i % 2 == 0 {
                c.advance(*j);
            } else {
                c.advance_to(*j);
            }
            prop_assert!(c.now() >= last);
            last = c.now();
        }
    }

    #[test]
    fn parallel_backends_match_sequential(
        n in 1usize..3000,
        threads in 1usize..9,
        block in prop::bool::ANY,
    ) {
        let mut par = vec![0.0f64; n];
        let mut seq = vec![0.0f64; n];
        let part = if block { Partition::Block } else { Partition::Cyclic };
        par_map_f64(&mut par, threads, part, |i, v| *v = (i as f64) * 1.5 - 3.0);
        seq_map_f64(&mut seq, |i, v| *v = (i as f64) * 1.5 - 3.0);
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn par_sum_is_thread_count_invariant(
        vals in prop::collection::vec(-100i64..100, 1..2000),
    ) {
        // Integral values stored as f64 sum exactly regardless of the split.
        let data: Vec<f64> = vals.iter().map(|v| *v as f64).collect();
        let expect: f64 = data.iter().sum();
        for threads in [1usize, 2, 5, 16] {
            prop_assert_eq!(par_sum_f64(&data, threads), expect);
        }
    }

    #[test]
    fn garbage_never_matches_small_constants(
        len in 1usize..64,
        seed in 0u64..1000,
        probe in -100i64..100,
    ) {
        let g = ArrayData::garbage(ScalarType::Int, len, seed);
        for i in 0..len {
            prop_assert_ne!(g.get(i).unwrap().as_int().unwrap(), probe);
        }
    }
}
