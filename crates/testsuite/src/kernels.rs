//! Tests for the `kernels` construct and its clauses (§IV-A).
//!
//! The data-clause battery mirrors the `parallel` area — the specification
//! gives `kernels` the same data clauses — but the compute semantics differ:
//! the compiler auto-parallelizes annotated loops instead of launching a
//! fixed gang count.

use crate::support::*;
use acc_ast::builder as b;
use acc_ast::{AccClause, DataRef, Expr, ScalarType, Stmt, Type};
use acc_spec::ClauseKind;
use acc_validation::TestCase;

/// All kernels-construct cases.
pub fn cases() -> Vec<TestCase> {
    vec![
        base(),
        if_clause(),
        async_clause(),
        copy(),
        copyin(),
        copyout(),
        create(),
        present(),
        pcopy(),
        pcopyin(),
        pcopyout(),
        pcreate(),
        deviceptr(),
    ]
}

fn base() -> TestCase {
    let mut body = preamble(&["A", "C"], N);
    body.push(b::decl_int("flag", 100));
    body.push(init_array("A", N, |i| i));
    body.push(init_array("C", N, |_| Expr::int(0)));
    body.push(b::data_region(
        vec![
            b::create_clause("flag", None),
            b::copy_sec("A", Expr::int(N)),
            b::copy_sec("C", Expr::int(N)),
        ],
        vec![b::kernels_region(
            vec![],
            vec![
                b::set("flag", Expr::int(200)),
                b::acc_loop(
                    vec![],
                    "j",
                    Expr::int(N),
                    vec![b::set1(
                        "C",
                        Expr::var("j"),
                        Expr::add(Expr::idx("A", Expr::var("j")), Expr::var("flag")),
                    )],
                ),
            ],
        )],
    ));
    body.push(check_array("C", N, |i| Expr::add(i, Expr::int(200))));
    body.push(check_eq(Expr::var("flag"), Expr::int(100)));
    body.push(b::return_error_check());
    case(
        "kernels",
        "kernels",
        body,
        cross("remove-directive:kernels"),
        "the kernels region executes on the device",
    )
}

fn if_clause() -> TestCase {
    // Device path taken when the condition is true; the host fallback's
    // writes are overwritten by the data region copyout.
    let mut body = preamble(&["A"], N);
    body.push(b::decl_int("cond", 1));
    body.push(init_array("A", N, |i| i));
    body.push(b::data_region(
        vec![b::copy_sec("A", Expr::int(N))],
        vec![
            b::kernels_region(
                vec![AccClause::If(Expr::var("cond"))],
                vec![b::acc_loop(
                    vec![],
                    "i",
                    Expr::int(N),
                    vec![b::add1("A", Expr::var("i"), Expr::int(100))],
                )],
            ),
            // Host-side marker write after the region, inside the data
            // region: survives only if the device copyout ignores it.
            Stmt::assign(acc_ast::LValue::idx("A", Expr::int(0)), Expr::int(-77)),
        ],
    ));
    // cond true: device A = i+100, copied out at data exit, overwriting the
    // host marker.
    body.push(check_array("A", N, |i| Expr::add(i, Expr::int(100))));
    body.push(b::return_error_check());
    case(
        "kernels.if",
        "kernels.if",
        body,
        cross("force-if:0"),
        "if(true) keeps execution on the device; forcing false leaves host-side effects behind",
    )
}

fn async_clause() -> TestCase {
    let mut body = preamble(&["A"], N);
    body.push(init_array("A", N, |_| Expr::int(0)));
    body.push(b::kernels_region(
        vec![
            b::copy_sec("A", Expr::int(N)),
            AccClause::Async(Some(Expr::int(2))),
        ],
        vec![b::acc_loop(
            vec![],
            "i",
            Expr::int(N),
            vec![b::add1("A", Expr::var("i"), Expr::int(5))],
        )],
    ));
    body.push(check_eq(Expr::idx("A", Expr::int(0)), Expr::int(0)));
    body.push(b::wait(Some(Expr::int(2))));
    body.push(check_array("A", N, |_| Expr::int(5)));
    body.push(b::return_error_check());
    case(
        "kernels.async",
        "kernels.async",
        body,
        cross("remove-clause:kernels.async"),
        "async kernels results are deferred until wait",
    )
}

fn copy() -> TestCase {
    let mut body = preamble(&["A"], N);
    body.push(init_array("A", N, |i| i));
    body.push(b::kernels_region(
        vec![b::copy_sec("A", Expr::int(N))],
        vec![b::acc_loop(
            vec![],
            "i",
            Expr::int(N),
            vec![b::set1(
                "A",
                Expr::var("i"),
                Expr::mul(Expr::idx("A", Expr::var("i")), Expr::int(2)),
            )],
        )],
    ));
    body.push(check_array("A", N, |i| Expr::mul(i, Expr::int(2))));
    body.push(b::return_error_check());
    case(
        "kernels.copy",
        "kernels.copy",
        body,
        cross("replace-clause:kernels.copy->create"),
        "copy on kernels round-trips the data",
    )
}

fn copyin() -> TestCase {
    let mut body = preamble(&["A", "B"], N);
    body.push(init_array("A", N, |i| i));
    body.push(init_array("B", N, |_| Expr::int(0)));
    body.push(b::kernels_region(
        vec![
            b::copyin_sec("A", Expr::int(N)),
            b::copy_sec("B", Expr::int(N)),
        ],
        vec![b::acc_loop(
            vec![],
            "i",
            Expr::int(N),
            vec![
                b::set1(
                    "B",
                    Expr::var("i"),
                    Expr::add(Expr::idx("A", Expr::var("i")), Expr::int(3)),
                ),
                b::set1("A", Expr::var("i"), Expr::int(-1)),
            ],
        )],
    ));
    body.push(check_array("B", N, |i| Expr::add(i, Expr::int(3))));
    body.push(check_array("A", N, |i| i));
    body.push(b::return_error_check());
    case(
        "kernels.copyin",
        "kernels.copyin",
        body,
        cross("replace-clause:kernels.copyin->copy"),
        "copyin on kernels never writes back",
    )
}

fn copyout() -> TestCase {
    let mut body = preamble(&["B"], N);
    body.push(init_array("B", N, |_| Expr::int(-5)));
    body.push(b::kernels_region(
        vec![b::copyout_sec("B", Expr::int(N))],
        vec![b::acc_loop(
            vec![],
            "i",
            Expr::int(N),
            vec![b::set1(
                "B",
                Expr::var("i"),
                Expr::mul(Expr::var("i"), Expr::int(6)),
            )],
        )],
    ));
    body.push(check_array("B", N, |i| Expr::mul(i, Expr::int(6))));
    body.push(b::return_error_check());
    case(
        "kernels.copyout",
        "kernels.copyout",
        body,
        cross("replace-clause:kernels.copyout->create"),
        "copyout on kernels returns computed values",
    )
}

fn create() -> TestCase {
    let mut body = preamble(&["A", "B", "T"], N);
    body.push(init_array("A", N, |i| i));
    body.push(init_array("B", N, |_| Expr::int(0)));
    body.push(init_array("T", N, |_| Expr::int(-5)));
    body.push(b::kernels_region(
        vec![
            b::create_clause("T", Some(Expr::int(N))),
            b::copyin_sec("A", Expr::int(N)),
            b::copyout_sec("B", Expr::int(N)),
        ],
        vec![
            b::acc_loop(
                vec![],
                "i",
                Expr::int(N),
                vec![b::set1(
                    "T",
                    Expr::var("i"),
                    Expr::add(Expr::idx("A", Expr::var("i")), Expr::int(2)),
                )],
            ),
            b::acc_loop(
                vec![],
                "i",
                Expr::int(N),
                vec![b::set1("B", Expr::var("i"), Expr::idx("T", Expr::var("i")))],
            ),
        ],
    ));
    body.push(check_array("B", N, |i| Expr::add(i, Expr::int(2))));
    body.push(check_array("T", N, |_| Expr::int(-5)));
    body.push(b::return_error_check());
    case(
        "kernels.create",
        "kernels.create",
        body,
        cross("replace-clause:kernels.create->copy"),
        "create on kernels is device-only scratch",
    )
}

fn present() -> TestCase {
    let mut body = preamble(&["A", "B"], N);
    body.push(init_array("A", N, |i| i));
    body.push(init_array("B", N, |_| Expr::int(0)));
    body.push(b::data_region(
        vec![
            b::copyin_sec("A", Expr::int(N)),
            b::copyout_sec("B", Expr::int(N)),
        ],
        vec![b::kernels_region(
            vec![b::data_whole(ClauseKind::Present, &["A", "B"])],
            vec![b::acc_loop(
                vec![],
                "i",
                Expr::int(N),
                vec![b::set1(
                    "B",
                    Expr::var("i"),
                    Expr::add(Expr::idx("A", Expr::var("i")), Expr::int(7)),
                )],
            )],
        )],
    ));
    body.push(check_array("B", N, |i| Expr::add(i, Expr::int(7))));
    body.push(b::return_error_check());
    case(
        "kernels.present",
        "kernels.present",
        body,
        cross("remove-directive:data"),
        "present on kernels requires the enclosing mapping",
    )
}

fn pcopy() -> TestCase {
    let mut body = preamble(&["A"], N);
    body.push(b::decl_int("s", 5));
    body.push(init_array("A", N, |i| i));
    body.push(b::data_region(
        vec![b::copyin_sec("A", Expr::int(N))],
        vec![b::kernels_region(
            vec![AccClause::Data(
                ClauseKind::PresentOrCopy,
                // `A` exercises the present path (no copy-back); the scalar
                // `s` exercises the miss path (full copy both ways) — an
                // ignored clause would leave `s` per-gang and unchanged.
                vec![
                    DataRef::section("A", Expr::int(0), Expr::int(N)),
                    DataRef::whole("s"),
                ],
            )],
            vec![
                b::set("s", Expr::int(9)),
                b::acc_loop(
                    vec![],
                    "i",
                    Expr::int(N),
                    vec![b::add1("A", Expr::var("i"), Expr::int(1))],
                ),
            ],
        )],
    ));
    body.push(check_array("A", N, |i| i));
    body.push(check_eq(Expr::var("s"), Expr::int(9)));
    body.push(b::return_error_check());
    case(
        "kernels.present_or_copy",
        "kernels.present_or_copy",
        body,
        cross("remove-directive:data"),
        "pcopy on kernels reuses the present mapping",
    )
}

fn pcopyin() -> TestCase {
    let mut body = preamble(&["A", "B"], N);
    body.push(init_array("A", N, |i| i));
    body.push(init_array("B", N, |_| Expr::int(0)));
    body.push(b::kernels_region(
        vec![
            AccClause::Data(
                ClauseKind::PresentOrCopyin,
                vec![DataRef::section("A", Expr::int(0), Expr::int(N))],
            ),
            b::copy_sec("B", Expr::int(N)),
        ],
        vec![b::acc_loop(
            vec![],
            "i",
            Expr::int(N),
            vec![
                b::set1("B", Expr::var("i"), Expr::idx("A", Expr::var("i"))),
                b::set1("A", Expr::var("i"), Expr::int(-9)),
            ],
        )],
    ));
    body.push(check_array("B", N, |i| i));
    body.push(check_array("A", N, |i| i));
    body.push(b::return_error_check());
    case(
        "kernels.present_or_copyin",
        "kernels.present_or_copyin",
        body,
        cross("replace-clause:kernels.present_or_copyin->present_or_copy"),
        "pcopyin on kernels uploads on a miss, never downloads",
    )
}

fn pcopyout() -> TestCase {
    let mut body = preamble(&["B"], N);
    body.push(b::decl_int("s", 5));
    body.push(init_array("B", N, |_| Expr::int(-5)));
    body.push(b::kernels_region(
        vec![AccClause::Data(
            ClauseKind::PresentOrCopyout,
            vec![
                DataRef::section("B", Expr::int(0), Expr::int(N)),
                DataRef::whole("s"),
            ],
        )],
        vec![
            b::set("s", Expr::int(9)),
            b::acc_loop(
                vec![],
                "i",
                Expr::int(N),
                vec![b::set1(
                    "B",
                    Expr::var("i"),
                    Expr::mul(Expr::var("i"), Expr::int(8)),
                )],
            ),
        ],
    ));
    body.push(check_array("B", N, |i| Expr::mul(i, Expr::int(8))));
    body.push(check_eq(Expr::var("s"), Expr::int(9)));
    body.push(b::return_error_check());
    case(
        "kernels.present_or_copyout",
        "kernels.present_or_copyout",
        body,
        cross("replace-clause:kernels.present_or_copyout->present_or_create"),
        "pcopyout on kernels downloads on a miss",
    )
}

fn pcreate() -> TestCase {
    let mut body = preamble(&["A", "B", "T"], N);
    body.push(init_array("A", N, |i| i));
    body.push(init_array("B", N, |_| Expr::int(0)));
    body.push(init_array("T", N, |_| Expr::int(-5)));
    body.push(b::kernels_region(
        vec![
            AccClause::Data(
                ClauseKind::PresentOrCreate,
                vec![DataRef::section("T", Expr::int(0), Expr::int(N))],
            ),
            b::copyin_sec("A", Expr::int(N)),
            b::copyout_sec("B", Expr::int(N)),
        ],
        vec![
            b::acc_loop(
                vec![],
                "i",
                Expr::int(N),
                vec![b::set1(
                    "T",
                    Expr::var("i"),
                    Expr::add(Expr::idx("A", Expr::var("i")), Expr::int(11)),
                )],
            ),
            b::acc_loop(
                vec![],
                "i",
                Expr::int(N),
                vec![b::set1("B", Expr::var("i"), Expr::idx("T", Expr::var("i")))],
            ),
        ],
    ));
    body.push(check_array("B", N, |i| Expr::add(i, Expr::int(11))));
    body.push(check_array("T", N, |_| Expr::int(-5)));
    body.push(b::return_error_check());
    case(
        "kernels.present_or_create",
        "kernels.present_or_create",
        body,
        cross("replace-clause:kernels.present_or_create->present_or_copy"),
        "pcreate on kernels stays device-only",
    )
}

fn deviceptr() -> TestCase {
    let n = N;
    let body = vec![
        b::decl_int("error", 0),
        b::decl_array("A", ScalarType::Float, n as usize),
        b::decl_array("B", ScalarType::Float, n as usize),
        Stmt::DeclScalar {
            name: "p".into(),
            ty: Type::Ptr(ScalarType::Float),
            init: Some(Expr::call(
                "acc_malloc",
                vec![Expr::mul(Expr::int(n), Expr::SizeOf(ScalarType::Float))],
            )),
        },
        init_array("A", n, |i| i),
        init_array("B", n, |_| Expr::int(0)),
        b::kernels_region(
            vec![
                AccClause::Deviceptr(vec!["p".into()]),
                b::copyin_sec("A", Expr::int(n)),
            ],
            vec![b::acc_loop(
                vec![],
                "i",
                Expr::int(n),
                vec![b::set1(
                    "p",
                    Expr::var("i"),
                    Expr::mul(Expr::idx("A", Expr::var("i")), Expr::int(2)),
                )],
            )],
        ),
        b::kernels_region(
            vec![
                AccClause::Deviceptr(vec!["p".into()]),
                b::copyout_sec("B", Expr::int(n)),
            ],
            vec![b::acc_loop(
                vec![],
                "i",
                Expr::int(n),
                vec![b::set1("B", Expr::var("i"), Expr::idx("p", Expr::var("i")))],
            )],
        ),
        Stmt::Call {
            name: "acc_free".into(),
            args: vec![Expr::var("p")],
        },
        check_array("B", n, |i| Expr::mul(i, Expr::int(2))),
        b::return_error_check(),
    ];
    case(
        "kernels.deviceptr",
        "kernels.deviceptr",
        body,
        cross("remove-clause:kernels.deviceptr"),
        "deviceptr on kernels exposes raw device memory",
    )
    .c_only()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_validation::harness::validate_case;

    #[test]
    fn all_kernels_cases_validate_against_reference() {
        for case in cases() {
            let problems = validate_case(&case);
            assert!(problems.is_empty(), "{}: {problems:?}", case.name);
        }
    }

    #[test]
    fn area_covers_thirteen_features() {
        assert_eq!(cases().len(), 13);
    }
}
