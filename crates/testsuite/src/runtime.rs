//! Runtime-library routine tests (§3 of the 1.0 specification).
//!
//! Most routine tests are functional-only — there is no directive to remove
//! — except the asynchronous family, whose tests carry a removable `async`
//! clause (Fig. 10).

use crate::support::*;
use crate::templates;
use acc_ast::builder as b;
use acc_ast::{AccClause, Expr, LValue, ScalarType, Stmt, Type};
use acc_validation::TestCase;

/// All fourteen runtime-routine cases.
pub fn cases() -> Vec<TestCase> {
    vec![
        get_num_devices(),
        set_device_type(),
        get_device_type(),
        set_device_num(),
        get_device_num(),
        templates::fig10_async_test(),
        async_test_all(),
        async_wait(),
        async_wait_all(),
        init(),
        shutdown(),
        on_device(),
        malloc(),
        free(),
    ]
}

fn rt_case(name: &str, body: Vec<Stmt>, desc: &str) -> TestCase {
    case(name, name, body, None, desc)
}

fn get_num_devices() -> TestCase {
    let body = vec![
        b::decl_int("error", 0),
        Stmt::decl_int(
            "n",
            Expr::call(
                "acc_get_num_devices",
                vec![Expr::var("acc_device_not_host")],
            ),
        ),
        b::if_then(
            Expr::bin(acc_ast::BinOp::Lt, Expr::var("n"), Expr::int(1)),
            vec![b::bump_error()],
        ),
        b::if_then(
            Expr::bin(acc_ast::BinOp::Gt, Expr::var("n"), Expr::int(16)),
            vec![b::bump_error()],
        ),
        b::return_error_check(),
    ];
    rt_case(
        "rt.acc_get_num_devices",
        body,
        "a plausible accelerator count (at least one attached device)",
    )
}

fn set_device_type() -> TestCase {
    let body = vec![
        b::decl_int("error", 0),
        b::decl_int("t", 0),
        Stmt::Call {
            name: "acc_set_device_type".into(),
            args: vec![Expr::var("acc_device_host")],
        },
        b::set("t", Expr::call("acc_get_device_type", vec![])),
        check_eq(Expr::var("t"), Expr::var("acc_device_host")),
        b::return_error_check(),
    ];
    rt_case(
        "rt.acc_set_device_type",
        body,
        "selecting the host device type must be observable through the getter",
    )
}

fn get_device_type() -> TestCase {
    // §V-C / Fig. 12: after selecting not_host, the concrete type returned
    // is implementation-defined — but it must be an accelerator.
    let body = vec![
        b::decl_int("error", 0),
        b::decl_int("t", 0),
        Stmt::Call {
            name: "acc_set_device_type".into(),
            args: vec![Expr::var("acc_device_not_host")],
        },
        b::set("t", Expr::call("acc_get_device_type", vec![])),
        check_ne(Expr::var("t"), Expr::var("acc_device_host")),
        check_ne(Expr::var("t"), Expr::var("acc_device_none")),
        b::return_error_check(),
    ];
    rt_case(
        "rt.acc_get_device_type",
        body,
        "after selecting not_host the reported type is implementation-defined but never host/none \
         (Fig. 12)",
    )
}

fn set_device_num() -> TestCase {
    let body = vec![
        b::decl_int("error", 0),
        b::decl_int("n", -1),
        Stmt::Call {
            name: "acc_set_device_num".into(),
            args: vec![Expr::int(0), Expr::var("acc_device_not_host")],
        },
        b::set(
            "n",
            Expr::call("acc_get_device_num", vec![Expr::var("acc_device_not_host")]),
        ),
        check_eq(Expr::var("n"), Expr::int(0)),
        b::return_error_check(),
    ];
    rt_case(
        "rt.acc_set_device_num",
        body,
        "device selection round-trips through the getter",
    )
}

fn get_device_num() -> TestCase {
    let body = vec![
        b::decl_int("error", 0),
        Stmt::decl_int(
            "n",
            Expr::call("acc_get_device_num", vec![Expr::var("acc_device_not_host")]),
        ),
        b::if_then(
            Expr::bin(acc_ast::BinOp::Lt, Expr::var("n"), Expr::int(0)),
            vec![b::bump_error()],
        ),
        b::return_error_check(),
    ];
    rt_case(
        "rt.acc_get_device_num",
        body,
        "the current device number is non-negative",
    )
}

fn async_test_all() -> TestCase {
    let mut body = preamble(&["A"], 64);
    body.push(b::decl_int("is_sync", -1));
    body.push(init_array("A", 64, |_| Expr::int(0)));
    body.push(b::parallel_region(
        vec![
            b::copy_sec("A", Expr::int(64)),
            AccClause::Async(Some(Expr::int(9))),
        ],
        vec![b::acc_loop(
            vec![],
            "i",
            Expr::int(64),
            vec![b::add1("A", Expr::var("i"), Expr::int(1))],
        )],
    ));
    body.push(b::set("is_sync", Expr::call("acc_async_test_all", vec![])));
    body.push(check_eq(Expr::var("is_sync"), Expr::int(0)));
    body.push(b::wait(None));
    body.push(b::set("is_sync", Expr::call("acc_async_test_all", vec![])));
    body.push(check_ne(Expr::var("is_sync"), Expr::int(0)));
    body.push(check_array("A", 64, |_| Expr::int(1)));
    body.push(b::return_error_check());
    case(
        "rt.acc_async_test_all",
        "rt.acc_async_test_all",
        body,
        cross("remove-clause:parallel.async"),
        "acc_async_test_all observes pending work, then completion after wait",
    )
}

fn async_wait() -> TestCase {
    let mut body = preamble(&["A"], N);
    body.push(init_array("A", N, |_| Expr::int(0)));
    body.push(b::parallel_region(
        vec![
            b::copy_sec("A", Expr::int(N)),
            AccClause::Async(Some(Expr::int(5))),
        ],
        vec![b::acc_loop(
            vec![],
            "i",
            Expr::int(N),
            vec![b::add1("A", Expr::var("i"), Expr::int(1))],
        )],
    ));
    // Not yet visible before the wait…
    body.push(check_eq(Expr::idx("A", Expr::int(0)), Expr::int(0)));
    body.push(Stmt::Call {
        name: "acc_async_wait".into(),
        args: vec![Expr::int(5)],
    });
    body.push(check_array("A", N, |_| Expr::int(1)));
    body.push(b::return_error_check());
    case(
        "rt.acc_async_wait",
        "rt.acc_async_wait",
        body,
        cross("remove-clause:parallel.async"),
        "acc_async_wait blocks until the tagged activity completes",
    )
}

fn async_wait_all() -> TestCase {
    let mut body = preamble(&["A", "B"], N);
    body.push(init_array("A", N, |_| Expr::int(0)));
    body.push(init_array("B", N, |_| Expr::int(0)));
    for (arr, tag) in [("A", 1), ("B", 2)] {
        body.push(b::parallel_region(
            vec![
                b::copy_sec(arr, Expr::int(N)),
                AccClause::Async(Some(Expr::int(tag))),
            ],
            vec![b::acc_loop(
                vec![],
                "i",
                Expr::int(N),
                vec![b::add1(arr, Expr::var("i"), Expr::int(1))],
            )],
        ));
    }
    // Neither queue has landed yet…
    body.push(check_eq(Expr::idx("A", Expr::int(0)), Expr::int(0)));
    body.push(check_eq(Expr::idx("B", Expr::int(0)), Expr::int(0)));
    body.push(Stmt::Call {
        name: "acc_async_wait_all".into(),
        args: vec![],
    });
    body.push(check_array("A", N, |_| Expr::int(1)));
    body.push(check_array("B", N, |_| Expr::int(1)));
    body.push(b::return_error_check());
    case(
        "rt.acc_async_wait_all",
        "rt.acc_async_wait_all",
        body,
        cross("remove-clause:parallel.async"),
        "acc_async_wait_all drains every queue",
    )
}

fn init() -> TestCase {
    let mut body = preamble(&["A"], N);
    body.push(Stmt::Call {
        name: "acc_init".into(),
        args: vec![Expr::var("acc_device_default")],
    });
    body.push(init_array("A", N, |i| i));
    body.push(b::parallel_region(
        vec![b::copy_sec("A", Expr::int(N))],
        vec![b::acc_loop(
            vec![],
            "i",
            Expr::int(N),
            vec![b::add1("A", Expr::var("i"), Expr::int(1))],
        )],
    ));
    body.push(check_array("A", N, |i| Expr::add(i, Expr::int(1))));
    body.push(b::return_error_check());
    rt_case(
        "rt.acc_init",
        body,
        "explicit initialization precedes device work",
    )
}

fn shutdown() -> TestCase {
    let mut body = preamble(&["A"], N);
    body.push(init_array("A", N, |i| i));
    body.push(b::parallel_region(
        vec![b::copy_sec("A", Expr::int(N))],
        vec![b::acc_loop(
            vec![],
            "i",
            Expr::int(N),
            vec![b::add1("A", Expr::var("i"), Expr::int(1))],
        )],
    ));
    body.push(Stmt::Call {
        name: "acc_shutdown".into(),
        args: vec![Expr::var("acc_device_default")],
    });
    body.push(check_array("A", N, |i| Expr::add(i, Expr::int(1))));
    body.push(b::return_error_check());
    rt_case(
        "rt.acc_shutdown",
        body,
        "shutdown after device work leaves results intact",
    )
}

fn on_device() -> TestCase {
    let body = vec![
        b::decl_int("error", 0),
        b::decl_int("host_ans", -1),
        b::decl_int("dev_ans", -1),
        b::set(
            "host_ans",
            Expr::call("acc_on_device", vec![Expr::var("acc_device_not_host")]),
        ),
        b::parallel_region(
            vec![b::data_whole(acc_spec::ClauseKind::Copy, &["dev_ans"])],
            vec![b::set(
                "dev_ans",
                Expr::call("acc_on_device", vec![Expr::var("acc_device_not_host")]),
            )],
        ),
        check_eq(Expr::var("host_ans"), Expr::int(0)),
        check_eq(Expr::var("dev_ans"), Expr::int(1)),
        b::return_error_check(),
    ];
    rt_case(
        "rt.acc_on_device",
        body,
        "acc_on_device distinguishes host from accelerator execution",
    )
}

fn malloc() -> TestCase {
    let n = N;
    let body = vec![
        b::decl_int("error", 0),
        b::decl_array("B", ScalarType::Float, n as usize),
        Stmt::DeclScalar {
            name: "p".into(),
            ty: Type::Ptr(ScalarType::Float),
            init: Some(Expr::call(
                "acc_malloc",
                vec![Expr::mul(Expr::int(n), Expr::SizeOf(ScalarType::Float))],
            )),
        },
        init_array("B", n, |_| Expr::int(0)),
        b::parallel_region(
            vec![AccClause::Deviceptr(vec!["p".into()])],
            vec![b::acc_loop(
                vec![],
                "i",
                Expr::int(n),
                vec![b::set1(
                    "p",
                    Expr::var("i"),
                    Expr::mul(Expr::var("i"), Expr::int(3)),
                )],
            )],
        ),
        b::parallel_region(
            vec![
                AccClause::Deviceptr(vec!["p".into()]),
                b::copyout_sec("B", Expr::int(n)),
            ],
            vec![b::acc_loop(
                vec![],
                "i",
                Expr::int(n),
                vec![b::set1("B", Expr::var("i"), Expr::idx("p", Expr::var("i")))],
            )],
        ),
        Stmt::Call {
            name: "acc_free".into(),
            args: vec![Expr::var("p")],
        },
        check_array("B", n, |i| Expr::mul(i, Expr::int(3))),
        b::return_error_check(),
    ];
    rt_case(
        "rt.acc_malloc",
        body,
        "acc_malloc returns usable device memory (§IV-B-5)",
    )
    .c_only()
}

fn free() -> TestCase {
    let n = N;
    let body = vec![
        b::decl_int("error", 0),
        b::decl_array("B", ScalarType::Float, n as usize),
        Stmt::DeclScalar {
            name: "p".into(),
            ty: Type::Ptr(ScalarType::Float),
            init: Some(Expr::call(
                "acc_malloc",
                vec![Expr::mul(Expr::int(n), Expr::SizeOf(ScalarType::Float))],
            )),
        },
        Stmt::Call {
            name: "acc_free".into(),
            args: vec![Expr::var("p")],
        },
        // A second allocation must succeed after the free.
        Stmt::DeclScalar {
            name: "q".into(),
            ty: Type::Ptr(ScalarType::Float),
            init: Some(Expr::call(
                "acc_malloc",
                vec![Expr::mul(Expr::int(n), Expr::SizeOf(ScalarType::Float))],
            )),
        },
        init_array("B", n, |_| Expr::int(0)),
        b::parallel_region(
            vec![
                AccClause::Deviceptr(vec!["q".into()]),
                b::copyout_sec("B", Expr::int(n)),
            ],
            vec![b::acc_loop(
                vec![],
                "i",
                Expr::int(n),
                vec![
                    b::set1("q", Expr::var("i"), Expr::add(Expr::var("i"), Expr::int(2))),
                    b::set1("B", Expr::var("i"), Expr::idx("q", Expr::var("i"))),
                ],
            )],
        ),
        Stmt::Call {
            name: "acc_free".into(),
            args: vec![Expr::var("q")],
        },
        check_array("B", n, |i| Expr::add(i, Expr::int(2))),
        b::return_error_check(),
    ];
    rt_case(
        "rt.acc_free",
        body,
        "acc_free releases device memory for reuse",
    )
    .c_only()
}

// Keep LValue in scope for potential direct statements above.
#[allow(unused)]
fn _keep(_: Option<LValue>) {}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_validation::harness::validate_case;

    #[test]
    fn all_runtime_cases_validate_against_reference() {
        for case in cases() {
            let problems = validate_case(&case);
            assert!(problems.is_empty(), "{}: {problems:?}", case.name);
        }
    }

    #[test]
    fn area_covers_fourteen_routines() {
        assert_eq!(cases().len(), 14);
    }
}
