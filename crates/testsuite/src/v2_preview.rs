//! OpenACC 2.0 preview probes (§V-C / §VI).
//!
//! The paper closes by noting which 1.0 gaps OpenACC 2.0 resolved:
//! `default(none)`, the `routine` directive, and unstructured data lifetimes
//! (`enter data` / `exit data`). These probes are *expected to be rejected*
//! by every conforming 1.0 front-end — the suite uses them to verify that
//! implementations do not silently accept (and misinterpret) 2.0 syntax.

use acc_ast::Program;
use acc_spec::{Language, SpecVersion};

/// A 2.0-syntax probe and the 1.0 expectation.
#[derive(Debug, Clone)]
pub struct V2Probe {
    /// Probe name.
    pub name: &'static str,
    /// The 2.0 feature exercised.
    pub feature: &'static str,
    /// C source using the 2.0 syntax.
    pub source: &'static str,
    /// How 2.0 resolves the 1.0 gap (paper §V-C).
    pub resolution: &'static str,
}

/// All 2.0 preview probes.
pub fn probes() -> Vec<V2Probe> {
    vec![
        V2Probe {
            name: "v2.enter_exit_data",
            feature: "enter data / exit data",
            source: "int main(void) {\n    int A[8];\n    for (i = 0; i < 8; i++)\n    {\n        A[i] = i;\n    }\n    #pragma acc enter data copyin(A[0:8])\n    #pragma acc exit data copyout(A[0:8])\n    return 1;\n}\n",
            resolution: "2.0 adds enter/exit data for unstructured data lifetimes",
        },
        V2Probe {
            name: "v2.default_none",
            feature: "default(none)",
            source: "int main(void) {\n    int A[8];\n    #pragma acc parallel default(none) copy(A[0:8])\n    {\n        #pragma acc loop\n        for (i = 0; i < 8; i++)\n        {\n            A[i] = i;\n        }\n    }\n    return 1;\n}\n",
            resolution: "2.0 adds default(none) to disable implicit present_or_copy",
        },
        V2Probe {
            name: "v2.routine",
            feature: "routine directive",
            source: "int main(void) {\n    #pragma acc routine seq\n    return 1;\n}\n",
            resolution: "2.0 adds the routine directive for device-callable procedures",
        },
    ]
}

/// Parse a probe (the front-end accepts 2.0 syntax; conformance is the
/// semantic layer's job).
pub fn parse_probe(p: &V2Probe) -> Result<Program, acc_frontend::ParseError> {
    acc_frontend::parse(p.source, Language::C)
}

/// Does a 1.0 semantic check reject the probe, as it must?
pub fn rejected_by_1_0(p: &V2Probe) -> bool {
    match parse_probe(p) {
        Ok(program) => !acc_frontend::sema::conforms(&program, SpecVersion::V1_0),
        Err(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_compiler::{driver::FailureKind, VendorCompiler, VendorId};

    #[test]
    fn probes_parse_but_fail_1_0_conformance() {
        for p in probes() {
            assert!(
                parse_probe(&p).is_ok(),
                "{}: front-end must parse 2.0 syntax",
                p.name
            );
            assert!(
                rejected_by_1_0(&p),
                "{}: 1.0 conformance must reject",
                p.name
            );
            assert!(
                acc_frontend::sema::conforms(&parse_probe(&p).unwrap(), SpecVersion::V2_0),
                "{}: 2.0 conformance must accept",
                p.name
            );
        }
    }

    #[test]
    fn every_vendor_rejects_v2_syntax_at_compile_time() {
        for vendor in VendorId::COMMERCIAL {
            let compiler = VendorCompiler::latest(vendor);
            for p in probes() {
                let err = compiler
                    .compile(p.source, Language::C)
                    .expect_err("1.0 compilers must reject 2.0 syntax");
                assert_eq!(err.kind, FailureKind::SemanticError, "{vendor}/{}", p.name);
            }
        }
    }
}
