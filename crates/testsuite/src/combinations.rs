//! Feature-combination tests — the paper's §IX direction: "The coverage of
//! tests can be widened by testing several combinations of the features."
//!
//! Each case exercises two or more 1.0 features *interacting*: nested data
//! regions, multiple async queues, bidirectional updates, the full
//! gang/worker/vector nest, multi-variable reductions, cross-procedure
//! present chains, `if` × `async`, 2-D collapse, and the
//! deviceptr × host_data interplay.

use crate::support::*;
use acc_ast::builder as b;
use acc_ast::{
    AccClause, DataRef, Expr, Function, LValue, Param, ParamKind, Program, ScalarType, Stmt, Type,
};
use acc_spec::{ClauseKind, DirectiveKind, Language, ReductionOp};
use acc_validation::TestCase;

/// All combination cases.
pub fn cases() -> Vec<TestCase> {
    vec![
        data_in_data(),
        async_multi_queue(),
        update_bidirectional(),
        gang_worker_vector(),
        reduction_multi_var(),
        firstprivate_reduction(),
        present_chain(),
        if_async(),
        copy_2d_collapse(),
        deviceptr_host_data(),
    ]
}

/// Three nested data regions: ownership stays with the outermost mapping.
fn data_in_data() -> TestCase {
    let pcopy = |name: &str| {
        AccClause::Data(
            ClauseKind::PresentOrCopy,
            vec![DataRef::section(name, Expr::int(0), Expr::int(N))],
        )
    };
    let mut body = preamble(&["A", "B"], N);
    body.push(init_array("A", N, |i| i));
    body.push(init_array("B", N, |_| Expr::int(0)));
    body.push(b::data_region(
        vec![
            AccClause::If(Expr::int(1)),
            b::copyin_sec("A", Expr::int(N)),
        ],
        vec![Stmt::AccBlock {
            dir: b::data(vec![pcopy("A")]),
            body: vec![Stmt::AccBlock {
                dir: b::data(vec![pcopy("A")]),
                body: vec![b::parallel_region(
                    vec![b::copy_sec("B", Expr::int(N))],
                    vec![b::acc_loop(
                        vec![],
                        "i",
                        Expr::int(N),
                        vec![
                            b::set1(
                                "B",
                                Expr::var("i"),
                                Expr::add(Expr::idx("A", Expr::var("i")), Expr::int(1)),
                            ),
                            b::add1("A", Expr::var("i"), Expr::int(1)),
                        ],
                    )],
                )],
            }],
        }],
    ));
    body.push(check_array("B", N, |i| Expr::add(i, Expr::int(1))));
    // The outermost copyin owns the data: device increments never land.
    body.push(check_array("A", N, |i| i));
    body.push(b::return_error_check());
    case(
        "combo.data_in_data",
        "combo.data_in_data",
        body,
        cross("force-if:0"),
        "three nested data regions: the outermost mapping owns allocation and exit action",
    )
}

/// Two async queues with interleaved tests and waits.
fn async_multi_queue() -> TestCase {
    let mut body = preamble(&["A", "B"], N);
    body.push(b::decl_int("t", -1));
    body.push(init_array("A", N, |_| Expr::int(0)));
    body.push(init_array("B", N, |_| Expr::int(0)));
    for (arr, tag, inc) in [("A", 1i64, 1i64), ("B", 2, 2)] {
        body.push(b::parallel_region(
            vec![
                b::copy_sec(arr, Expr::int(N)),
                AccClause::Async(Some(Expr::int(tag))),
            ],
            vec![b::acc_loop(
                vec![],
                "i",
                Expr::int(N),
                vec![b::add1(arr, Expr::var("i"), Expr::int(inc))],
            )],
        ));
    }
    // Nothing done yet.
    body.push(b::set("t", Expr::call("acc_async_test_all", vec![])));
    body.push(check_eq(Expr::var("t"), Expr::int(0)));
    // Wait on queue 1 only: tag 1 is done, tag 2 still pending (probe the
    // queues immediately — host progress itself advances the virtual clock).
    body.push(b::wait(Some(Expr::int(1))));
    body.push(b::set(
        "t",
        Expr::call("acc_async_test", vec![Expr::int(2)]),
    ));
    body.push(check_eq(Expr::var("t"), Expr::int(0)));
    body.push(b::set(
        "t",
        Expr::call("acc_async_test", vec![Expr::int(1)]),
    ));
    body.push(check_ne(Expr::var("t"), Expr::int(0)));
    body.push(check_eq(Expr::idx("B", Expr::int(0)), Expr::int(0)));
    body.push(check_array("A", N, |_| Expr::int(1)));
    // Wait on queue 2: B lands.
    body.push(b::wait(Some(Expr::int(2))));
    body.push(check_array("B", N, |_| Expr::int(2)));
    body.push(b::set("t", Expr::call("acc_async_test_all", vec![])));
    body.push(check_ne(Expr::var("t"), Expr::int(0)));
    body.push(b::return_error_check());
    case(
        "combo.async_multi_queue",
        "combo.async_multi_queue",
        body,
        cross("remove-clause:parallel.async"),
        "independent async queues complete independently and in order",
    )
}

/// `update host` then `update device` round trip inside one data region.
fn update_bidirectional() -> TestCase {
    let hostc = |n: &str| {
        AccClause::Data(
            ClauseKind::HostClause,
            vec![DataRef::section(n, Expr::int(0), Expr::int(N))],
        )
    };
    let devc = |n: &str| {
        AccClause::Data(
            ClauseKind::DeviceClause,
            vec![DataRef::section(n, Expr::int(0), Expr::int(N))],
        )
    };
    let mut body = preamble(&["A", "B"], N);
    body.push(init_array("A", N, |i| i));
    body.push(init_array("B", N, |_| Expr::int(0)));
    body.push(b::data_region(
        vec![b::copyin_sec("A", Expr::int(N))],
        vec![
            b::parallel_region(
                vec![],
                vec![b::acc_loop(
                    vec![],
                    "i",
                    Expr::int(N),
                    vec![b::add1("A", Expr::var("i"), Expr::int(10))],
                )],
            ),
            b::update(vec![hostc("A")]),
            check_array("A", N, |i| Expr::add(i, Expr::int(10))),
            b::for_upto(
                "i",
                Expr::int(N),
                vec![b::add1("A", Expr::var("i"), Expr::int(100))],
            ),
            b::update(vec![devc("A")]),
            b::parallel_region(
                vec![b::copy_sec("B", Expr::int(N))],
                // `A[i] + 0` keeps the kernel out of Cray's dead-region
                // heuristic (a pure copy would be eliminated, Fig. 11).
                vec![b::acc_loop(
                    vec![],
                    "i",
                    Expr::int(N),
                    vec![b::set1(
                        "B",
                        Expr::var("i"),
                        Expr::add(Expr::idx("A", Expr::var("i")), Expr::int(0)),
                    )],
                )],
            ),
        ],
    ));
    body.push(check_array("B", N, |i| Expr::add(i, Expr::int(110))));
    body.push(b::return_error_check());
    case(
        "combo.update_bidirectional",
        "combo.update_bidirectional",
        body,
        cross("remove-directive:update"),
        "host and device copies round-trip through paired updates",
    )
}

/// The complete gang/worker/vector nest with two-level reduction.
fn gang_worker_vector() -> TestCase {
    let mut body = preamble(&["red"], 4);
    body.push(init_array("red", 4, |_| Expr::int(0)));
    body.push(Stmt::AccBlock {
        dir: b::parallel(vec![
            b::copy_sec("red", Expr::int(4)),
            AccClause::NumGangs(Expr::int(4)),
            AccClause::NumWorkers(Expr::int(2)),
            AccClause::VectorLength(Expr::int(2)),
        ]),
        body: vec![b::acc_loop(
            vec![AccClause::Gang(None)],
            "i",
            Expr::int(4),
            vec![
                Stmt::decl_int("t", Expr::int(0)),
                b::acc_loop(
                    vec![
                        AccClause::Worker(None),
                        AccClause::Reduction(ReductionOp::Add, vec!["t".into()]),
                    ],
                    "j",
                    Expr::int(4),
                    vec![b::acc_loop(
                        vec![
                            AccClause::Vector(None),
                            AccClause::Reduction(ReductionOp::Add, vec!["t".into()]),
                        ],
                        "k",
                        Expr::int(4),
                        vec![b::add("t", Expr::int(1))],
                    )],
                ),
                b::set1("red", Expr::var("i"), Expr::var("t")),
            ],
        )],
    });
    body.push(check_array("red", 4, |_| Expr::int(16)));
    body.push(b::return_error_check());
    case(
        "combo.gang_worker_vector",
        "combo.gang_worker_vector",
        body,
        cross("remove-clause:loop.vector"),
        "all three parallelism levels nest and cover the full iteration space",
    )
}

/// Two reduction variables with different operators on one construct.
fn reduction_multi_var() -> TestCase {
    let mut body = vec![
        b::decl_int("error", 0),
        b::decl_int("s", 0),
        b::decl_int("m", -1000),
        b::decl_array("V", ScalarType::Int, N as usize),
    ];
    body.push(init_array("V", N, |i| Expr::mul(i, Expr::int(3))));
    body.push(b::parallel_loop(
        vec![
            AccClause::NumGangs(Expr::int(4)),
            AccClause::Reduction(ReductionOp::Add, vec!["s".into()]),
            AccClause::Reduction(ReductionOp::Max, vec!["m".into()]),
            b::copyin_sec("V", Expr::int(N)),
        ],
        "i",
        Expr::int(N),
        vec![
            b::add("s", Expr::idx("V", Expr::var("i"))),
            b::set(
                "m",
                Expr::call("max", vec![Expr::var("m"), Expr::idx("V", Expr::var("i"))]),
            ),
        ],
    ));
    let total: i64 = (0..N).map(|i| i * 3).sum();
    body.push(check_eq(Expr::var("s"), Expr::int(total)));
    body.push(check_eq(Expr::var("m"), Expr::int((N - 1) * 3)));
    body.push(b::return_error_check());
    case(
        "combo.reduction_multi_var",
        "combo.reduction_multi_var",
        body,
        cross("remove-clause:parallel_loop.reduction"),
        "two reduction variables with different operators reduce independently",
    )
}

/// `firstprivate` feeding a region-level reduction.
fn firstprivate_reduction() -> TestCase {
    let body = vec![
        b::decl_int("error", 0),
        b::decl_int("seed", 5),
        b::decl_int("total", 0),
        b::parallel_region(
            vec![
                AccClause::NumGangs(Expr::int(8)),
                AccClause::Firstprivate(vec!["seed".into()]),
                AccClause::Reduction(ReductionOp::Add, vec!["total".into()]),
            ],
            vec![b::add("total", Expr::var("seed"))],
        ),
        check_eq(Expr::var("total"), Expr::int(40)),
        b::return_error_check(),
    ];
    case(
        "combo.firstprivate_reduction",
        "combo.firstprivate_reduction",
        body,
        cross("replace-clause:parallel.firstprivate->private"),
        "every gang contributes the host-seeded firstprivate value to the reduction",
    )
}

/// A cross-procedure present chain: main maps, a helper computes.
fn present_chain() -> TestCase {
    let helper = Function {
        name: "fill7".into(),
        params: vec![
            Param {
                name: "T".into(),
                kind: ParamKind::ArrayPtr(ScalarType::Int),
            },
            Param {
                name: "n".into(),
                kind: ParamKind::Scalar(ScalarType::Int),
            },
        ],
        ret: None,
        body: vec![b::parallel_region(
            vec![AccClause::Data(
                ClauseKind::Present,
                vec![DataRef::section("T", Expr::int(0), Expr::var("n"))],
            )],
            vec![b::acc_loop(
                vec![],
                "i",
                Expr::var("n"),
                vec![b::set1(
                    "T",
                    Expr::var("i"),
                    Expr::mul(Expr::var("i"), Expr::int(7)),
                )],
            )],
        )],
    };
    let mut main_body = preamble(&["T"], N);
    main_body.push(init_array("T", N, |_| Expr::int(-1)));
    main_body.push(b::data_region(
        vec![b::create_clause("T", Some(Expr::int(N)))],
        vec![
            Stmt::Call {
                name: "fill7".into(),
                args: vec![Expr::var("T"), Expr::int(N)],
            },
            b::update(vec![AccClause::Data(
                ClauseKind::HostClause,
                vec![DataRef::section("T", Expr::int(0), Expr::int(N))],
            )]),
        ],
    ));
    main_body.push(check_array("T", N, |i| Expr::mul(i, Expr::int(7))));
    main_body.push(b::return_error_check());
    let mut program = Program::simple("combo.present_chain", Language::C, main_body);
    program.functions.insert(0, helper);
    TestCase::new(
        "combo.present_chain",
        "combo.present_chain",
        program,
        cross("remove-directive:data"),
        "present in a callee finds the caller's data-region mapping",
    )
}

/// `if(false)` on an async region: host fallback launches nothing.
fn if_async() -> TestCase {
    let mut body = preamble(&["A"], N);
    body.push(b::decl_int("cond", 0));
    body.push(b::decl_int("t", -1));
    body.push(init_array("A", N, |i| i));
    body.push(b::parallel_region(
        vec![
            AccClause::If(Expr::var("cond")),
            AccClause::Async(Some(Expr::int(7))),
            b::copy_sec("A", Expr::int(N)),
        ],
        vec![b::acc_loop(
            vec![],
            "i",
            Expr::int(N),
            vec![b::add1("A", Expr::var("i"), Expr::int(1))],
        )],
    ));
    // Host fallback executed synchronously: results visible at once, and no
    // asynchronous activity exists.
    body.push(b::set(
        "t",
        Expr::call("acc_async_test", vec![Expr::int(7)]),
    ));
    body.push(check_ne(Expr::var("t"), Expr::int(0)));
    body.push(check_array("A", N, |i| Expr::add(i, Expr::int(1))));
    body.push(b::return_error_check());
    case(
        "combo.if_async",
        "combo.if_async",
        body,
        cross("force-if:1"),
        "if(false) wins over async: the host fallback is synchronous and enqueues nothing",
    )
}

/// A 2-D matrix through `copy` with `collapse(2) gang` accumulation.
fn copy_2d_collapse() -> TestCase {
    let (rows, cols) = (4usize, 4usize);
    let mut body = vec![
        b::decl_int("error", 0),
        b::decl_matrix("M", ScalarType::Int, rows, cols),
    ];
    body.push(b::for_upto(
        "i",
        Expr::int(rows as i64),
        vec![b::for_upto(
            "j",
            Expr::int(cols as i64),
            vec![Stmt::assign(
                LValue::idx2("M", Expr::var("i"), Expr::var("j")),
                Expr::int(0),
            )],
        )],
    ));
    body.push(b::parallel_region(
        vec![
            AccClause::NumGangs(Expr::int(4)),
            b::data_whole(ClauseKind::Copy, &["M"]),
        ],
        vec![Stmt::AccLoop {
            dir: b::loop_dir(vec![
                AccClause::Collapse(Expr::int(2)),
                AccClause::Gang(None),
            ]),
            l: acc_ast::ForLoop {
                var: "i".into(),
                from: Expr::int(0),
                to: Expr::int(rows as i64),
                step: Expr::int(1),
                body: vec![Stmt::For(acc_ast::ForLoop {
                    var: "j".into(),
                    from: Expr::int(0),
                    to: Expr::int(cols as i64),
                    step: Expr::int(1),
                    body: vec![Stmt::assign_op(
                        LValue::idx2("M", Expr::var("i"), Expr::var("j")),
                        acc_ast::BinOp::Add,
                        Expr::int(1),
                    )],
                })],
            },
        }],
    ));
    body.push(b::for_upto(
        "i",
        Expr::int(rows as i64),
        vec![b::for_upto(
            "j",
            Expr::int(cols as i64),
            vec![b::if_then(
                Expr::ne(
                    Expr::idx2("M", Expr::var("i"), Expr::var("j")),
                    Expr::int(1),
                ),
                vec![b::bump_error()],
            )],
        )],
    ));
    body.push(b::return_error_check());
    case(
        "combo.copy_2d_collapse",
        "combo.copy_2d_collapse",
        body,
        cross("replace-clause:loop.gang->seq"),
        "collapse(2) gang over a copied 2-D matrix touches each element exactly once",
    )
}

/// `acc_malloc` + `deviceptr` + `host_data use_device` working together
/// (C only).
fn deviceptr_host_data() -> TestCase {
    let n = N;
    let helper = Function {
        name: "addinto".into(),
        params: vec![
            Param {
                name: "d".into(),
                kind: ParamKind::ArrayPtr(ScalarType::Float),
            },
            Param {
                name: "s".into(),
                kind: ParamKind::ArrayPtr(ScalarType::Float),
            },
            Param {
                name: "n".into(),
                kind: ParamKind::Scalar(ScalarType::Int),
            },
        ],
        ret: None,
        body: vec![b::for_upto(
            "i",
            Expr::var("n"),
            vec![Stmt::assign_op(
                LValue::idx("d", Expr::var("i")),
                acc_ast::BinOp::Add,
                Expr::idx("s", Expr::var("i")),
            )],
        )],
    };
    let mut main_body = vec![
        b::decl_int("error", 0),
        b::decl_array("A", ScalarType::Float, n as usize),
        Stmt::DeclScalar {
            name: "p".into(),
            ty: Type::Ptr(ScalarType::Float),
            init: Some(Expr::call(
                "acc_malloc",
                vec![Expr::mul(Expr::int(n), Expr::SizeOf(ScalarType::Float))],
            )),
        },
    ];
    main_body.push(init_array("A", n, |i| i));
    // Fill the raw device buffer with 2*A via deviceptr.
    main_body.push(b::parallel_region(
        vec![
            AccClause::Deviceptr(vec!["p".into()]),
            b::copyin_sec("A", Expr::int(n)),
        ],
        vec![b::acc_loop(
            vec![],
            "i",
            Expr::int(n),
            vec![b::set1(
                "p",
                Expr::var("i"),
                Expr::mul(Expr::idx("A", Expr::var("i")), Expr::int(2)),
            )],
        )],
    ));
    // host_data hands the "CUDA routine" both device addresses.
    main_body.push(b::data_region(
        vec![b::copy_sec("A", Expr::int(n))],
        vec![Stmt::AccBlock {
            dir: b::with_clauses(
                DirectiveKind::HostData,
                vec![AccClause::UseDevice(vec!["A".into()])],
            ),
            body: vec![Stmt::Call {
                name: "addinto".into(),
                args: vec![Expr::var("A"), Expr::var("p"), Expr::int(n)],
            }],
        }],
    ));
    main_body.push(Stmt::Call {
        name: "acc_free".into(),
        args: vec![Expr::var("p")],
    });
    main_body.push(check_array("A", n, |i| Expr::mul(i, Expr::int(3))));
    main_body.push(b::return_error_check());
    let mut program = Program::simple("combo.deviceptr_host_data", Language::C, main_body);
    program.functions.insert(0, helper);
    TestCase::new(
        "combo.deviceptr_host_data",
        "combo.deviceptr_host_data",
        program,
        cross("remove-directive:host_data"),
        "a device-pointer source and a use_device destination drive one device-side routine",
    )
    .c_only()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_validation::harness::validate_case;

    #[test]
    fn all_combination_cases_validate_against_reference() {
        for case in cases() {
            let problems = validate_case(&case);
            assert!(problems.is_empty(), "{}: {problems:?}", case.name);
        }
    }

    #[test]
    fn ten_combinations() {
        assert_eq!(cases().len(), 10);
    }

    #[test]
    fn combinations_survive_every_latest_vendor() {
        // The latest vendor releases carry only the persistent bug clusters;
        // combinations not touching those clusters must pass everywhere.
        use acc_compiler::{VendorCompiler, VendorId};
        use acc_validation::harness::run_case;
        let clean: &[&str] = &[
            "combo.data_in_data",
            "combo.update_bidirectional",
            "combo.gang_worker_vector",
            "combo.reduction_multi_var",
            "combo.present_chain",
        ];
        for vendor in VendorId::COMMERCIAL {
            let compiler = VendorCompiler::latest(vendor);
            for case in cases() {
                if !clean.contains(&case.name.as_str()) {
                    continue;
                }
                for lang in case.languages.clone() {
                    let r = run_case(&case, &compiler, lang);
                    assert!(
                        r.passed(),
                        "{vendor}/{} ({lang}): {:?}",
                        case.name,
                        r.status
                    );
                }
            }
        }
    }
}
