//! Tests for the `loop` construct and its scheduling clauses (§IV-C).

use crate::support::*;
use crate::templates;
use acc_ast::builder as b;
use acc_ast::{AccClause, BinOp, Expr, Stmt};
use acc_spec::ReductionOp;
use acc_validation::TestCase;

/// All loop-construct cases (the reduction battery lives in
/// [`crate::reductions`]).
pub fn cases() -> Vec<TestCase> {
    vec![
        templates::fig2_loop(),
        gang(),
        worker(),
        vector(),
        seq(),
        independent(),
        collapse(),
        private(),
    ]
}

/// `gang`: iterations shared across gangs — each element written once.
fn gang() -> TestCase {
    let mut body = preamble(&["A"], N);
    body.push(init_array("A", N, |_| Expr::int(0)));
    body.push(b::parallel_region(
        vec![
            AccClause::NumGangs(Expr::int(4)),
            b::copy_sec("A", Expr::int(N)),
        ],
        vec![b::acc_loop(
            vec![AccClause::Gang(None)],
            "i",
            Expr::int(N),
            vec![b::add1("A", Expr::var("i"), Expr::int(1))],
        )],
    ));
    body.push(check_array("A", N, |_| Expr::int(1)));
    body.push(b::return_error_check());
    case(
        "loop.gang",
        "loop.gang",
        body,
        cross("replace-clause:loop.gang->seq"),
        "gang scheduling executes every iteration exactly once; seq per gang would increment \
         once per gang",
    )
}

/// `worker`: an explicit Fig. 4-style gang/worker nest.
fn worker() -> TestCase {
    let mut body = preamble(&["red"], 4);
    body.push(init_array("red", 4, |_| Expr::int(0)));
    body.push(b::parallel_region(
        vec![
            b::copy_sec("red", Expr::int(4)),
            AccClause::NumGangs(Expr::int(4)),
            AccClause::NumWorkers(Expr::int(4)),
        ],
        vec![b::acc_loop(
            vec![AccClause::Gang(None)],
            "i",
            Expr::int(4),
            vec![
                Stmt::decl_int("t", Expr::int(0)),
                b::acc_loop(
                    vec![
                        AccClause::Worker(None),
                        AccClause::Reduction(ReductionOp::Add, vec!["t".into()]),
                    ],
                    "j",
                    Expr::int(N),
                    vec![b::add("t", Expr::int(1))],
                ),
                b::set1("red", Expr::var("i"), Expr::var("t")),
            ],
        )],
    ));
    body.push(check_array("red", 4, |_| Expr::int(N)));
    body.push(b::return_error_check());
    case(
        "loop.worker",
        "loop.worker",
        body,
        cross("remove-clause:loop.worker"),
        "worker scheduling covers the inner space once per gang iteration",
    )
}

/// `vector`: the innermost level, same coverage contract as worker.
fn vector() -> TestCase {
    let mut body = preamble(&["red"], 4);
    body.push(init_array("red", 4, |_| Expr::int(0)));
    body.push(b::parallel_region(
        vec![
            b::copy_sec("red", Expr::int(4)),
            AccClause::NumGangs(Expr::int(4)),
            AccClause::VectorLength(Expr::int(8)),
        ],
        vec![b::acc_loop(
            vec![AccClause::Gang(None)],
            "i",
            Expr::int(4),
            vec![
                Stmt::decl_int("t", Expr::int(0)),
                b::acc_loop(
                    vec![
                        AccClause::Vector(None),
                        AccClause::Reduction(ReductionOp::Add, vec!["t".into()]),
                    ],
                    "j",
                    Expr::int(N),
                    vec![b::add("t", Expr::int(1))],
                ),
                b::set1("red", Expr::var("i"), Expr::var("t")),
            ],
        )],
    ));
    body.push(check_array("red", 4, |_| Expr::int(N)));
    body.push(b::return_error_check());
    case(
        "loop.vector",
        "loop.vector",
        body,
        cross("remove-clause:loop.vector"),
        "vector scheduling covers the inner space once per gang iteration",
    )
}

/// `seq` (§IV-C-2): iterations run in ascending order within each gang.
fn seq() -> TestCase {
    let body = vec![
        b::decl_int("error", 0),
        b::decl_int("is_larger", 1),
        b::parallel_region(
            vec![
                AccClause::NumGangs(Expr::int(4)),
                b::data_whole(acc_spec::ClauseKind::Copy, &["is_larger"]),
            ],
            vec![
                Stmt::decl_int("last_i", Expr::int(-1)),
                b::acc_loop(
                    vec![AccClause::Seq],
                    "i",
                    Expr::int(N),
                    vec![
                        b::set(
                            "is_larger",
                            Expr::bin(
                                BinOp::And,
                                Expr::eq(
                                    Expr::sub(Expr::var("i"), Expr::var("last_i")),
                                    Expr::int(1),
                                ),
                                Expr::var("is_larger"),
                            ),
                        ),
                        b::set("last_i", Expr::var("i")),
                    ],
                ),
            ],
        ),
        check_eq(Expr::var("is_larger"), Expr::int(1)),
        b::return_error_check(),
    ];
    case(
        "loop.seq",
        "loop.seq",
        body,
        cross("replace-clause:loop.seq->independent"),
        "seq visits iterations in order; partitioned execution breaks the i == last_i + 1 chain",
    )
}

/// `independent` (§IV-C-1): asserting independence on a dependent loop must
/// produce an incorrect result (which is exactly what this test verifies).
fn independent() -> TestCase {
    let mut body = preamble(&["A"], N);
    body.push(b::decl_int("mismatches", 0));
    body.push(init_array("A", N, |_| Expr::int(0)));
    body.push(b::parallel_region(
        vec![
            AccClause::NumGangs(Expr::int(4)),
            b::copy_sec("A", Expr::int(N)),
        ],
        vec![Stmt::AccLoop {
            dir: b::loop_dir(vec![AccClause::Independent]),
            l: acc_ast::ForLoop {
                var: "i".into(),
                from: Expr::int(1),
                to: Expr::int(N),
                step: Expr::int(1),
                body: vec![b::set1(
                    "A",
                    Expr::var("i"),
                    Expr::add(
                        Expr::idx("A", Expr::sub(Expr::var("i"), Expr::int(1))),
                        Expr::int(1),
                    ),
                )],
            },
        }],
    ));
    // The loop carries a true dependence; partitioned execution must break
    // it somewhere.
    body.push(b::for_upto(
        "i",
        Expr::int(N),
        vec![b::if_then(
            Expr::ne(Expr::idx("A", Expr::var("i")), Expr::var("i")),
            vec![b::add("mismatches", Expr::int(1))],
        )],
    ));
    body.push(b::if_then(
        Expr::eq(Expr::var("mismatches"), Expr::int(0)),
        vec![b::bump_error()],
    ));
    body.push(b::return_error_check());
    case(
        "loop.independent",
        "loop.independent",
        body,
        cross("replace-clause:loop.independent->seq"),
        "independent on a dependent loop partitions it and breaks the recurrence (the paper's \
         methodology: the incorrect result proves the clause took effect)",
    )
}

/// `collapse(2)` over a tightly-nested 2-D loop (§IV-C-3). The 1.0 cross
/// methodology cannot discriminate collapse by results alone (removing it
/// preserves the value-space), so this is a functional-only test.
fn collapse() -> TestCase {
    let rows = 4usize;
    let cols = 4usize;
    let mut body = vec![
        b::decl_int("error", 0),
        b::decl_matrix("M", acc_ast::ScalarType::Int, rows, cols),
    ];
    body.push(b::for_upto(
        "i",
        Expr::int(rows as i64),
        vec![b::for_upto(
            "j",
            Expr::int(cols as i64),
            vec![Stmt::assign(
                acc_ast::LValue::idx2("M", Expr::var("i"), Expr::var("j")),
                Expr::int(0),
            )],
        )],
    ));
    body.push(b::parallel_region(
        vec![
            AccClause::NumGangs(Expr::int(4)),
            b::data_whole(acc_spec::ClauseKind::Copy, &["M"]),
        ],
        vec![Stmt::AccLoop {
            dir: b::loop_dir(vec![
                AccClause::Collapse(Expr::int(2)),
                AccClause::Gang(None),
            ]),
            l: acc_ast::ForLoop {
                var: "i".into(),
                from: Expr::int(0),
                to: Expr::int(rows as i64),
                step: Expr::int(1),
                body: vec![Stmt::For(acc_ast::ForLoop {
                    var: "j".into(),
                    from: Expr::int(0),
                    to: Expr::int(cols as i64),
                    step: Expr::int(1),
                    body: vec![Stmt::assign(
                        acc_ast::LValue::idx2("M", Expr::var("i"), Expr::var("j")),
                        Expr::add(Expr::mul(Expr::var("i"), Expr::int(10)), Expr::var("j")),
                    )],
                })],
            },
        }],
    ));
    body.push(b::for_upto(
        "i",
        Expr::int(rows as i64),
        vec![b::for_upto(
            "j",
            Expr::int(cols as i64),
            vec![b::if_then(
                Expr::ne(
                    Expr::idx2("M", Expr::var("i"), Expr::var("j")),
                    Expr::add(Expr::mul(Expr::var("i"), Expr::int(10)), Expr::var("j")),
                ),
                vec![b::bump_error()],
            )],
        )],
    ));
    body.push(b::return_error_check());
    case(
        "loop.collapse",
        "loop.collapse",
        body,
        None,
        "collapse(2) gang covers the full flattened iteration space exactly once",
    )
}

/// `private` on loop: per-execution-unit privacy.
fn private() -> TestCase {
    let mut body = preamble(&["A"], 4);
    body.push(b::decl_int("p", 7));
    body.push(init_array("A", 4, |_| Expr::int(-1)));
    body.push(b::parallel_region(
        vec![
            AccClause::NumGangs(Expr::int(4)),
            b::copy_sec("A", Expr::int(4)),
        ],
        vec![b::acc_loop(
            vec![AccClause::Gang(None), AccClause::Private(vec!["p".into()])],
            "i",
            Expr::int(4),
            vec![
                b::if_then(
                    Expr::eq(Expr::var("i"), Expr::int(0)),
                    vec![b::set("p", Expr::int(42))],
                ),
                b::set1("A", Expr::var("i"), Expr::var("p")),
            ],
        )],
    ));
    body.push(check_eq(Expr::idx("A", Expr::int(0)), Expr::int(42)));
    body.push(b::for_upto(
        "i",
        Expr::int(4),
        vec![b::if_then(
            Expr::bin(
                BinOp::And,
                Expr::bin(BinOp::Ge, Expr::var("i"), Expr::int(1)),
                Expr::bin(
                    BinOp::Or,
                    Expr::eq(Expr::idx("A", Expr::var("i")), Expr::int(42)),
                    Expr::eq(Expr::idx("A", Expr::var("i")), Expr::int(7)),
                ),
            ),
            vec![b::bump_error()],
        )],
    ));
    body.push(b::return_error_check());
    case(
        "loop.private",
        "loop.private",
        body,
        cross("remove-clause:loop.private"),
        "loop private copies are uninitialized and do not leak between units",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_validation::harness::validate_case;

    #[test]
    fn all_loop_cases_validate_against_reference() {
        for case in cases() {
            let problems = validate_case(&case);
            assert!(problems.is_empty(), "{}: {problems:?}", case.name);
        }
    }

    #[test]
    fn area_covers_eight_features() {
        assert_eq!(cases().len(), 8);
    }
}
