//! `host_data use_device` test (§IV-E): expose the device address to host
//! code so an optimized low-level routine (modeling a hand-written CUDA
//! kernel) can operate on the device copy directly.

use crate::support::*;
use acc_ast::builder as b;
use acc_ast::{AccClause, Expr, Function, LValue, Param, ParamKind, Program, ScalarType, Stmt};
use acc_spec::{DirectiveKind, Language};
use acc_validation::TestCase;

/// The single host_data case (C only — the generated helper takes a raw
/// device pointer, which has no Fortran binding in 1.0).
pub fn cases() -> Vec<TestCase> {
    vec![use_device()]
}

fn use_device() -> TestCase {
    // The "optimized CUDA routine": scales the buffer it is given.
    let helper = Function {
        name: "scale2".into(),
        params: vec![
            Param {
                name: "d".into(),
                kind: ParamKind::ArrayPtr(ScalarType::Int),
            },
            Param {
                name: "n".into(),
                kind: ParamKind::Scalar(ScalarType::Int),
            },
        ],
        ret: None,
        body: vec![b::for_upto(
            "i",
            Expr::var("n"),
            vec![Stmt::assign_op(
                LValue::idx("d", Expr::var("i")),
                acc_ast::BinOp::Mul,
                Expr::int(2),
            )],
        )],
    };
    let mut main_body = preamble(&["A"], N);
    main_body.push(init_array("A", N, |i| i));
    main_body.push(b::data_region(
        vec![b::copy_sec("A", Expr::int(N))],
        vec![Stmt::AccBlock {
            dir: b::with_clauses(
                DirectiveKind::HostData,
                vec![AccClause::UseDevice(vec!["A".into()])],
            ),
            body: vec![Stmt::Call {
                name: "scale2".into(),
                args: vec![Expr::var("A"), Expr::int(N)],
            }],
        }],
    ));
    main_body.push(check_array("A", N, |i| Expr::mul(i, Expr::int(2))));
    main_body.push(b::return_error_check());
    let mut program = Program::simple("host_data.use_device", Language::C, main_body);
    program.functions.insert(0, helper);
    TestCase::new(
        "host_data.use_device",
        "host_data.use_device",
        program,
        cross("remove-directive:host_data"),
        "use_device hands the helper the device address: its writes must surface through the \
         data region copyout (with the host address they would be overwritten)",
    )
    .c_only()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_validation::harness::validate_case;

    #[test]
    fn host_data_validates_against_reference() {
        for case in cases() {
            let problems = validate_case(&case);
            assert!(problems.is_empty(), "{}: {problems:?}", case.name);
        }
    }
}
