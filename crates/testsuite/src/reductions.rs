//! The reduction battery (§IV-C-4): every reduction operator crossed with
//! every operand type it is defined on — 21 generated tests (6 general
//! operators × 3 types, plus 3 integer-only bitwise operators).
//!
//! Operand values are chosen to be exact in binary floating point, so the
//! per-gang partial combination order cannot introduce rounding differences;
//! the float/double add/mul variants still compare under a rounding
//! tolerance, following the paper's Fig. 7 methodology. The `add.float`
//! variant is the Fig. 7 template itself.

use crate::support::*;
use crate::templates;
use acc_ast::builder as b;
use acc_ast::{AccClause, BinOp, Expr, LValue, ScalarType, Stmt, Type};
use acc_spec::ReductionOp;
use acc_validation::TestCase;

/// Iteration count of every reduction loop.
const COUNT: i64 = 16;

/// All 21 reduction cases.
pub fn cases() -> Vec<TestCase> {
    let mut out = Vec::new();
    for op in ReductionOp::ALL {
        let types: &[ScalarType] = if op.integer_only() {
            &[ScalarType::Int]
        } else {
            &[ScalarType::Int, ScalarType::Float, ScalarType::Double]
        };
        for &ty in types {
            if op == ReductionOp::Add && ty == ScalarType::Float {
                out.push(templates::fig7_reduction_float());
            } else {
                out.push(reduction_case(op, ty));
            }
        }
    }
    out
}

fn lit(ty: ScalarType, v: f64) -> Expr {
    match ty {
        ScalarType::Int => Expr::int(v as i64),
        _ => Expr::Real(v, ty),
    }
}

/// Initial accumulator value — chosen so it differs from the expected
/// result (the removal cross test must observe the untouched initial).
fn initial(op: ReductionOp, ty: ScalarType) -> Expr {
    let v = match op {
        ReductionOp::Add => -3.0,
        ReductionOp::Mul => 1.0,
        ReductionOp::Max => -100000.0,
        ReductionOp::Min => 100000.0,
        ReductionOp::LogicalAnd => 1.0,
        ReductionOp::LogicalOr => 0.0,
        ReductionOp::BitAnd => -1.0, // all bits set
        ReductionOp::BitOr => 0.0,
        ReductionOp::BitXor => 0.0,
    };
    lit(ty, v)
}

/// The per-iteration operand `V[i]`, as initialization statements. Several
/// operators override `V[0]` with a distinguished value so that a defective
/// combiner that drops one execution unit's contribution (the catalogued
/// WrongReduction wrong-code shape) is always observable.
fn operand_init(op: ReductionOp, ty: ScalarType) -> Vec<Stmt> {
    let override0 = |v: f64| b::set1("V", Expr::int(0), lit(ty, v));
    let base = operand_loop(op, ty);
    match op {
        ReductionOp::Max => vec![
            base,
            override0(if ty == ScalarType::Int { 9999.0 } else { 99.5 }),
        ],
        ReductionOp::Min => vec![
            base,
            override0(if ty == ScalarType::Int {
                -9999.0
            } else {
                -99.5
            }),
        ],
        ReductionOp::LogicalAnd => vec![base, override0(0.0)],
        ReductionOp::LogicalOr => vec![base, override0(1.0)],
        ReductionOp::BitAnd => vec![base, override0(240.0)],
        ReductionOp::BitOr => vec![base, override0(1024.0)],
        _ => vec![base],
    }
}

fn operand_loop(op: ReductionOp, ty: ScalarType) -> Stmt {
    let i = || Expr::var("i");
    let set = |e: Expr| b::set1("V", Expr::var("i"), e);
    match op {
        // add: V[i] = i + 0.5 (float) / i + 1 (int) — sums are exact.
        ReductionOp::Add => match ty {
            ScalarType::Int => b::for_upto(
                "i",
                Expr::int(COUNT),
                vec![set(Expr::add(i(), Expr::int(1)))],
            ),
            _ => b::for_upto(
                "i",
                Expr::int(COUNT),
                vec![set(Expr::add(i(), lit(ty, 0.5)))],
            ),
        },
        // mul: three 2s (float: exact powers of two), rest neutral.
        ReductionOp::Mul => b::for_upto(
            "i",
            Expr::int(COUNT),
            vec![Stmt::If {
                cond: Expr::lt(i(), Expr::int(3)),
                then_body: vec![set(lit(ty, 2.0))],
                else_body: vec![set(lit(ty, 1.0))],
            }],
        ),
        // max/min: a pseudo-random ramp.
        ReductionOp::Max | ReductionOp::Min => match ty {
            ScalarType::Int => b::for_upto(
                "i",
                Expr::int(COUNT),
                vec![set(Expr::bin(
                    BinOp::Rem,
                    Expr::mul(i(), Expr::int(7)),
                    Expr::int(13),
                ))],
            ),
            _ => b::for_upto(
                "i",
                Expr::int(COUNT),
                vec![set(Expr::sub(i(), lit(ty, 7.5)))],
            ),
        },
        // logical and: all true (V[0] overridden to false).
        ReductionOp::LogicalAnd => b::for_upto("i", Expr::int(COUNT), vec![set(lit(ty, 1.0))]),
        // logical or: all false (V[0] overridden to true).
        ReductionOp::LogicalOr => b::for_upto("i", Expr::int(COUNT), vec![set(lit(ty, 0.0))]),
        // bitwise patterns.
        ReductionOp::BitAnd => b::for_upto(
            "i",
            Expr::int(COUNT),
            vec![set(Expr::sub(
                Expr::int(255),
                Expr::bin(BinOp::Rem, i(), Expr::int(3)),
            ))],
        ),
        ReductionOp::BitOr => b::for_upto(
            "i",
            Expr::int(COUNT),
            vec![set(Expr::bin(
                BinOp::Rem,
                Expr::mul(i(), Expr::int(17)),
                Expr::int(256),
            ))],
        ),
        ReductionOp::BitXor => b::for_upto(
            "i",
            Expr::int(COUNT),
            vec![set(Expr::bin(
                BinOp::Rem,
                Expr::mul(i(), i()),
                Expr::int(61),
            ))],
        ),
    }
}

/// `acc = acc <op> V[i]` in the surface syntax for the operator.
fn combine_stmt(op: ReductionOp, acc: &str) -> Stmt {
    let v = Expr::idx("V", Expr::var("i"));
    let a = Expr::var(acc);
    let rhs = match op {
        ReductionOp::Add => Expr::add(a, v),
        ReductionOp::Mul => Expr::mul(a, v),
        ReductionOp::Max => Expr::call("max", vec![a, v]),
        ReductionOp::Min => Expr::call("min", vec![a, v]),
        ReductionOp::LogicalAnd => Expr::bin(BinOp::And, a, v),
        ReductionOp::LogicalOr => Expr::bin(BinOp::Or, a, v),
        ReductionOp::BitAnd => Expr::bin(BinOp::BitAnd, a, v),
        ReductionOp::BitOr => Expr::bin(BinOp::BitOr, a, v),
        ReductionOp::BitXor => Expr::bin(BinOp::BitXor, a, v),
    };
    Stmt::assign(LValue::var(acc), rhs)
}

fn reduction_case(op: ReductionOp, ty: ScalarType) -> TestCase {
    let name = format!("loop.reduction.{}.{}", op.ident(), ty.ident());
    let mut body = vec![
        b::decl_int("error", 0),
        Stmt::DeclScalar {
            name: "sum".into(),
            ty: Type::Scalar(ty),
            init: Some(initial(op, ty)),
        },
        Stmt::DeclScalar {
            name: "expected".into(),
            ty: Type::Scalar(ty),
            init: Some(initial(op, ty)),
        },
        Stmt::DeclArray {
            name: "V".into(),
            elem: ty,
            dims: vec![COUNT as usize],
        },
    ];
    body.extend(operand_init(op, ty));
    // Host reference computation.
    body.push(b::for_upto(
        "i",
        Expr::int(COUNT),
        vec![combine_stmt(op, "expected")],
    ));
    // Device reduction (the Fig. 7 combined-construct shape).
    body.push(b::kernels_loop(
        vec![
            AccClause::Reduction(op, vec!["sum".into()]),
            b::copyin_sec("V", Expr::int(COUNT)),
        ],
        "i",
        Expr::int(COUNT),
        vec![combine_stmt(op, "sum")],
    ));
    // Comparison: tolerance for inexact-prone float add/mul, equality
    // otherwise (operands are exact in binary).
    let needs_tolerance = ty.is_float() && matches!(op, ReductionOp::Add | ReductionOp::Mul);
    if needs_tolerance {
        let fabs = if ty == ScalarType::Float {
            "fabsf"
        } else {
            "fabs"
        };
        body.push(b::if_then(
            Expr::bin(
                BinOp::Gt,
                Expr::call(
                    fabs,
                    vec![Expr::sub(Expr::var("sum"), Expr::var("expected"))],
                ),
                Expr::Real(1e-4, ty),
            ),
            vec![b::bump_error()],
        ));
    } else {
        body.push(check_eq(Expr::var("sum"), Expr::var("expected")));
    }
    body.push(b::return_error_check());
    case(
        &name,
        &name,
        body,
        cross("remove-clause:kernels_loop.reduction"),
        &format!(
            "reduction({}:…) over {} operands matches the sequential host result",
            op.c_symbol(),
            ty.c_name()
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_validation::harness::validate_case;

    #[test]
    fn battery_has_21_variants() {
        assert_eq!(cases().len(), 21);
    }

    #[test]
    fn all_reduction_cases_validate_against_reference() {
        for case in cases() {
            let problems = validate_case(&case);
            assert!(problems.is_empty(), "{}: {problems:?}", case.name);
        }
    }

    #[test]
    fn expected_differs_from_initial() {
        // The removal cross test relies on the untouched initial value being
        // observably different from the expected reduction result. Verify by
        // running the cross variant under the reference compiler: it must
        // return 0.
        use acc_compiler::VendorCompiler;
        let reference = VendorCompiler::reference();
        for case in cases() {
            let src = case.cross_source_for(acc_spec::Language::C).unwrap();
            let exe = reference
                .compile(&src, acc_spec::Language::C)
                .unwrap_or_else(|e| panic!("{}: {e}", case.name));
            let out = exe.run().outcome;
            assert!(
                matches!(out, acc_compiler::RunOutcome::Completed(0)),
                "{}: cross must observe the initial value, got {out:?}",
                case.name
            );
        }
    }
}
