//! Tests for the combined `parallel loop` / `kernels loop` constructs.

use crate::support::*;
use acc_ast::builder as b;
use acc_ast::{AccClause, BinOp, Expr};
use acc_spec::ReductionOp;
use acc_validation::TestCase;

/// All combined-construct cases.
pub fn cases() -> Vec<TestCase> {
    vec![
        parallel_loop_base(),
        parallel_loop_if(),
        parallel_loop_reduction(),
        parallel_loop_private(),
        kernels_loop_base(),
        kernels_loop_if(),
        kernels_loop_reduction(),
    ]
}

/// Base: the combined construct executes on the device (device-residency
/// check through an enclosing copyin).
fn parallel_loop_base() -> TestCase {
    let mut body = preamble(&["A"], N);
    body.push(init_array("A", N, |i| i));
    body.push(b::data_region(
        vec![b::copyin_sec("A", Expr::int(N))],
        vec![b::parallel_loop(
            vec![],
            "i",
            Expr::int(N),
            vec![b::add1("A", Expr::var("i"), Expr::int(1))],
        )],
    ));
    // Device-only increments must not be visible on the host.
    body.push(check_array("A", N, |i| i));
    body.push(b::return_error_check());
    case(
        "parallel_loop",
        "parallel_loop",
        body,
        cross("remove-directive:parallel_loop"),
        "the combined parallel loop runs on the device; removing it leaves a host loop whose \
         writes are visible",
    )
}

fn parallel_loop_if() -> TestCase {
    let mut body = preamble(&["A"], N);
    body.push(b::decl_int("cond", 0));
    body.push(init_array("A", N, |i| i));
    body.push(b::data_region(
        vec![b::copy_sec("A", Expr::int(N))],
        vec![b::parallel_loop(
            vec![AccClause::If(Expr::var("cond"))],
            "i",
            Expr::int(N),
            vec![b::add1("A", Expr::var("i"), Expr::int(50))],
        )],
    ));
    // if(false): host increments, overwritten by the device copyout of the
    // untouched device copy.
    body.push(check_array("A", N, |i| i));
    body.push(b::return_error_check());
    case(
        "parallel_loop.if",
        "parallel_loop.if",
        body,
        cross("force-if:1"),
        "if(false) on a combined construct falls back to host execution",
    )
}

fn parallel_loop_reduction() -> TestCase {
    let body = vec![
        b::decl_int("error", 0),
        b::decl_int("total", 0),
        b::parallel_loop(
            vec![
                AccClause::NumGangs(Expr::int(4)),
                AccClause::Reduction(ReductionOp::Add, vec!["total".into()]),
            ],
            "i",
            Expr::int(N),
            vec![b::add("total", Expr::int(1))],
        ),
        check_eq(Expr::var("total"), Expr::int(N)),
        b::return_error_check(),
    ];
    case(
        "parallel_loop.reduction",
        "parallel_loop.reduction",
        body,
        cross("remove-clause:parallel_loop.reduction"),
        "a reduction on the combined construct counts every iteration once",
    )
}

fn parallel_loop_private() -> TestCase {
    let mut body = preamble(&["A"], 4);
    body.push(b::decl_int("p", 7));
    body.push(init_array("A", 4, |_| Expr::int(-1)));
    body.push(b::parallel_loop(
        vec![
            AccClause::NumGangs(Expr::int(4)),
            AccClause::Private(vec!["p".into()]),
            b::copy_sec("A", Expr::int(4)),
        ],
        "i",
        Expr::int(4),
        vec![
            b::if_then(
                Expr::eq(Expr::var("i"), Expr::int(0)),
                vec![b::set("p", Expr::int(42))],
            ),
            b::set1("A", Expr::var("i"), Expr::var("p")),
        ],
    ));
    body.push(check_eq(Expr::idx("A", Expr::int(0)), Expr::int(42)));
    body.push(b::for_upto(
        "i",
        Expr::int(4),
        vec![b::if_then(
            Expr::bin(
                BinOp::And,
                Expr::bin(BinOp::Ge, Expr::var("i"), Expr::int(1)),
                Expr::bin(
                    BinOp::Or,
                    Expr::eq(Expr::idx("A", Expr::var("i")), Expr::int(42)),
                    Expr::eq(Expr::idx("A", Expr::var("i")), Expr::int(7)),
                ),
            ),
            vec![b::bump_error()],
        )],
    ));
    body.push(b::return_error_check());
    case(
        "parallel_loop.private",
        "parallel_loop.private",
        body,
        cross("remove-clause:parallel_loop.private"),
        "private on the combined construct isolates the variable per gang",
    )
}

fn kernels_loop_base() -> TestCase {
    let mut body = preamble(&["A"], N);
    body.push(init_array("A", N, |i| i));
    body.push(b::data_region(
        vec![b::copyin_sec("A", Expr::int(N))],
        vec![b::kernels_loop(
            vec![],
            "i",
            Expr::int(N),
            vec![b::add1("A", Expr::var("i"), Expr::int(1))],
        )],
    ));
    body.push(check_array("A", N, |i| i));
    body.push(b::return_error_check());
    case(
        "kernels_loop",
        "kernels_loop",
        body,
        cross("remove-directive:kernels_loop"),
        "the combined kernels loop runs on the device",
    )
}

fn kernels_loop_if() -> TestCase {
    let mut body = preamble(&["A"], N);
    body.push(b::decl_int("cond", 0));
    body.push(init_array("A", N, |i| i));
    body.push(b::data_region(
        vec![b::copy_sec("A", Expr::int(N))],
        vec![b::kernels_loop(
            vec![AccClause::If(Expr::var("cond"))],
            "i",
            Expr::int(N),
            vec![b::add1("A", Expr::var("i"), Expr::int(50))],
        )],
    ));
    body.push(check_array("A", N, |i| i));
    body.push(b::return_error_check());
    case(
        "kernels_loop.if",
        "kernels_loop.if",
        body,
        cross("force-if:1"),
        "if(false) on kernels loop falls back to host execution",
    )
}

fn kernels_loop_reduction() -> TestCase {
    let body = vec![
        b::decl_int("error", 0),
        b::decl_int("total", 5),
        b::kernels_loop(
            vec![AccClause::Reduction(ReductionOp::Add, vec!["total".into()])],
            "i",
            Expr::int(N),
            vec![b::add("total", Expr::int(2))],
        ),
        check_eq(Expr::var("total"), Expr::int(5 + 2 * N)),
        b::return_error_check(),
    ];
    case(
        "kernels_loop.reduction",
        "kernels_loop.reduction",
        body,
        cross("remove-clause:kernels_loop.reduction"),
        "a reduction on kernels loop accumulates across the auto-parallelized gangs",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_validation::harness::validate_case;

    #[test]
    fn all_combined_cases_validate_against_reference() {
        for case in cases() {
            let problems = validate_case(&case);
            assert!(problems.is_empty(), "{}: {problems:?}", case.name);
        }
    }

    #[test]
    fn area_covers_seven_features() {
        assert_eq!(cases().len(), 7);
    }
}
