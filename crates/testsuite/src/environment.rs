//! Environment-variable tests (§4 of the 1.0 specification), authored as
//! text templates to exercise the `<env …/>` attribute path.

use acc_validation::template::parse_templates;
use acc_validation::TestCase;

/// `ACC_DEVICE_TYPE` selects the initial device type.
pub const ENV_DEVICE_TYPE: &str = r#"
<acctest name="env.ACC_DEVICE_TYPE" feature="env.ACC_DEVICE_TYPE" cross="none">
<description>ACC_DEVICE_TYPE=HOST must make the runtime report the host device type</description>
<env ACC_DEVICE_TYPE="HOST"/>
<code>
int main(void) {
    int error = 0;
    int t = 0;
    t = acc_get_device_type();
    if (t != acc_device_host)
    {
        error++;
    }
    return error == 0;
}
</code>
</acctest>
"#;

/// `ACC_DEVICE_NUM` selects the initial device number.
pub const ENV_DEVICE_NUM: &str = r#"
<acctest name="env.ACC_DEVICE_NUM" feature="env.ACC_DEVICE_NUM" cross="none">
<description>ACC_DEVICE_NUM=0 must select device zero</description>
<env ACC_DEVICE_NUM="0"/>
<code>
int main(void) {
    int error = 0;
    int n = -1;
    n = acc_get_device_num(acc_device_not_host);
    if (n != 0)
    {
        error++;
    }
    return error == 0;
}
</code>
</acctest>
"#;

/// Both environment cases.
pub fn cases() -> Vec<TestCase> {
    let mut out = parse_templates(ENV_DEVICE_TYPE).expect("env template");
    out.extend(parse_templates(ENV_DEVICE_NUM).expect("env template"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_validation::harness::validate_case;

    #[test]
    fn env_cases_validate_against_reference() {
        for case in cases() {
            let problems = validate_case(&case);
            assert!(problems.is_empty(), "{}: {problems:?}", case.name);
        }
    }

    #[test]
    fn env_settings_are_attached() {
        let cases = cases();
        assert_eq!(cases[0].env.device_type, Some(acc_spec::DeviceType::Host));
        assert_eq!(cases[1].env.device_num, Some(0));
    }
}
