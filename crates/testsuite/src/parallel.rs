//! Tests for the `parallel` construct and its clauses (§IV-A).

use crate::support::*;
use crate::templates;
use acc_ast::builder as b;
use acc_ast::{AccClause, Expr, ScalarType, Stmt, Type};
use acc_spec::ClauseKind;
use acc_validation::TestCase;

/// All parallel-construct cases.
pub fn cases() -> Vec<TestCase> {
    vec![
        base(),
        templates::fig9_num_gangs(),
        templates::fig4_num_workers(),
        vector_length(),
        templates::fig5_if(),
        async_clause(),
        reduction(),
        private(),
        firstprivate(),
        copy(),
        copyin(),
        copyout(),
        create(),
        present(),
        pcopy(),
        pcopyin(),
        pcopyout(),
        pcreate(),
        deviceptr(),
    ]
}

/// `parallel` base test: the region body must execute on the device. Uses
/// the Fig. 6 flag mechanism — a `create`-mapped scalar written inside the
/// region must not change on the host.
fn base() -> TestCase {
    let mut body = preamble(&["A", "C"], N);
    body.push(b::decl_int("flag", 100));
    body.push(init_array("A", N, |i| i));
    body.push(init_array("C", N, |_| Expr::int(0)));
    body.push(b::data_region(
        vec![
            b::create_clause("flag", None),
            b::copy_sec("A", Expr::int(N)),
            b::copy_sec("C", Expr::int(N)),
        ],
        vec![b::parallel_region(
            vec![],
            vec![
                b::set("flag", Expr::int(200)),
                b::acc_loop(
                    vec![],
                    "j",
                    Expr::int(N),
                    vec![b::set1(
                        "C",
                        Expr::var("j"),
                        Expr::add(Expr::idx("A", Expr::var("j")), Expr::var("flag")),
                    )],
                ),
            ],
        )],
    ));
    body.push(check_array("C", N, |i| Expr::add(i, Expr::int(200))));
    body.push(check_eq(Expr::var("flag"), Expr::int(100)));
    body.push(b::return_error_check());
    case(
        "parallel",
        "parallel",
        body,
        cross("remove-directive:parallel"),
        "the parallel region executes on the device: a device-resident flag write must not \
         surface on the host",
    )
}

/// `vector_length`: a vector loop inside a gang loop must cover the full
/// iteration space of each gang iteration.
fn vector_length() -> TestCase {
    let mut body = preamble(&["red"], 4);
    body.push(init_array("red", 4, |_| Expr::int(0)));
    body.push(Stmt::AccBlock {
        dir: b::parallel(vec![
            b::copy_sec("red", Expr::int(4)),
            AccClause::NumGangs(Expr::int(4)),
            AccClause::VectorLength(Expr::int(8)),
        ]),
        body: vec![b::acc_loop(
            vec![AccClause::Gang(None)],
            "i",
            Expr::int(4),
            vec![
                Stmt::decl_int("t", Expr::int(0)),
                b::acc_loop(
                    vec![
                        AccClause::Vector(None),
                        AccClause::Reduction(acc_spec::ReductionOp::Add, vec!["t".into()]),
                    ],
                    "j",
                    Expr::int(32),
                    vec![b::add("t", Expr::int(1))],
                ),
                b::set1("red", Expr::var("i"), Expr::var("t")),
            ],
        )],
    });
    body.push(check_array("red", 4, |_| Expr::int(32)));
    body.push(b::return_error_check());
    case(
        "parallel.vector_length",
        "parallel.vector_length",
        body,
        cross("remove-clause:loop.vector"),
        "a vector loop inside a gang loop reduces over the whole inner space",
    )
}

/// `async`: results must not be host-visible until the matching wait.
fn async_clause() -> TestCase {
    let mut body = preamble(&["A"], N);
    body.push(init_array("A", N, |_| Expr::int(0)));
    body.push(b::parallel_region(
        vec![
            b::copy_sec("A", Expr::int(N)),
            AccClause::Async(Some(Expr::int(1))),
        ],
        vec![b::acc_loop(
            vec![],
            "i",
            Expr::int(N),
            vec![b::add1("A", Expr::var("i"), Expr::int(1))],
        )],
    ));
    // Before the wait, the deferred copyout must not have landed.
    body.push(check_eq(Expr::idx("A", Expr::int(0)), Expr::int(0)));
    body.push(b::wait(Some(Expr::int(1))));
    body.push(check_array("A", N, |_| Expr::int(1)));
    body.push(b::return_error_check());
    case(
        "parallel.async",
        "parallel.async",
        body,
        cross("remove-clause:parallel.async"),
        "async region results become visible only after wait",
    )
}

/// Region-level `reduction` with a constant gang count.
fn reduction() -> TestCase {
    let body = vec![
        b::decl_int("error", 0),
        b::decl_int("gang_num", 0),
        b::parallel_region(
            vec![
                AccClause::NumGangs(Expr::int(8)),
                AccClause::Reduction(acc_spec::ReductionOp::Add, vec!["gang_num".into()]),
            ],
            vec![b::add("gang_num", Expr::int(1))],
        ),
        check_eq(Expr::var("gang_num"), Expr::int(8)),
        b::return_error_check(),
    ];
    case(
        "parallel.reduction",
        "parallel.reduction",
        body,
        cross("remove-clause:parallel.reduction"),
        "each gang contributes once to the region reduction",
    )
}

/// `private`: gang 0 writes the private copy; other gangs must not observe
/// it (nor the host value).
fn private() -> TestCase {
    let mut body = preamble(&["A"], 4);
    body.push(b::decl_int("p", 7));
    body.push(init_array("A", 4, |_| Expr::int(-1)));
    body.push(b::parallel_region(
        vec![
            AccClause::NumGangs(Expr::int(4)),
            AccClause::Private(vec!["p".into()]),
            b::copy_sec("A", Expr::int(4)),
        ],
        vec![b::acc_loop(
            vec![AccClause::Gang(None)],
            "i",
            Expr::int(4),
            vec![
                b::if_then(
                    Expr::eq(Expr::var("i"), Expr::int(0)),
                    vec![b::set("p", Expr::int(42))],
                ),
                b::set1("A", Expr::var("i"), Expr::var("p")),
            ],
        )],
    ));
    // Gang 0 saw its own write; the others saw neither 42 (leak across
    // gangs) nor 7 (host value — that would be firstprivate).
    body.push(check_eq(Expr::idx("A", Expr::int(0)), Expr::int(42)));
    body.push(b::for_upto(
        "i",
        Expr::int(4),
        vec![b::if_then(
            Expr::bin(
                acc_ast::BinOp::And,
                Expr::bin(acc_ast::BinOp::Ge, Expr::var("i"), Expr::int(1)),
                Expr::bin(
                    acc_ast::BinOp::Or,
                    Expr::eq(Expr::idx("A", Expr::var("i")), Expr::int(42)),
                    Expr::eq(Expr::idx("A", Expr::var("i")), Expr::int(7)),
                ),
            ),
            vec![b::bump_error()],
        )],
    ));
    body.push(b::return_error_check());
    case(
        "parallel.private",
        "parallel.private",
        body,
        cross("replace-clause:parallel.private->firstprivate"),
        "private copies are per gang and uninitialized",
    )
}

/// `firstprivate`: copies initialized from the host value.
fn firstprivate() -> TestCase {
    let mut body = preamble(&["A"], 4);
    body.push(b::decl_int("fp", 7));
    body.push(init_array("A", 4, |_| Expr::int(0)));
    body.push(b::parallel_region(
        vec![
            AccClause::NumGangs(Expr::int(4)),
            AccClause::Firstprivate(vec!["fp".into()]),
            b::copy_sec("A", Expr::int(4)),
        ],
        vec![b::acc_loop(
            vec![AccClause::Gang(None)],
            "i",
            Expr::int(4),
            vec![b::set1(
                "A",
                Expr::var("i"),
                Expr::add(Expr::var("fp"), Expr::var("i")),
            )],
        )],
    ));
    body.push(check_array("A", 4, |i| Expr::add(Expr::int(7), i)));
    body.push(b::return_error_check());
    case(
        "parallel.firstprivate",
        "parallel.firstprivate",
        body,
        cross("replace-clause:parallel.firstprivate->private"),
        "firstprivate copies start from the host value in every gang",
    )
}

/// `copy`: in at entry, out at exit.
fn copy() -> TestCase {
    let mut body = preamble(&["A"], N);
    body.push(init_array("A", N, |i| i));
    body.push(b::parallel_region(
        vec![b::copy_sec("A", Expr::int(N))],
        vec![b::acc_loop(
            vec![],
            "i",
            Expr::int(N),
            vec![b::set1(
                "A",
                Expr::var("i"),
                Expr::mul(Expr::idx("A", Expr::var("i")), Expr::int(2)),
            )],
        )],
    ));
    body.push(check_array("A", N, |i| Expr::mul(i, Expr::int(2))));
    body.push(b::return_error_check());
    case(
        "parallel.copy",
        "parallel.copy",
        body,
        cross("replace-clause:parallel.copy->create"),
        "copy transfers host values in and computed values out",
    )
}

/// `copyin`: in at entry only — device-side destruction must not surface.
fn copyin() -> TestCase {
    let mut body = preamble(&["A", "B"], N);
    body.push(init_array("A", N, |i| i));
    body.push(init_array("B", N, |_| Expr::int(0)));
    body.push(b::parallel_region(
        vec![
            b::copyin_sec("A", Expr::int(N)),
            b::copy_sec("B", Expr::int(N)),
        ],
        vec![b::acc_loop(
            vec![],
            "i",
            Expr::int(N),
            vec![
                b::set1(
                    "B",
                    Expr::var("i"),
                    Expr::mul(Expr::idx("A", Expr::var("i")), Expr::int(2)),
                ),
                b::set1("A", Expr::var("i"), Expr::int(0)),
            ],
        )],
    ));
    body.push(check_array("B", N, |i| Expr::mul(i, Expr::int(2))));
    body.push(check_array("A", N, |i| i));
    body.push(b::return_error_check());
    case(
        "parallel.copyin",
        "parallel.copyin",
        body,
        cross("replace-clause:parallel.copyin->copy"),
        "copyin values reach the device but device writes never come back",
    )
}

/// `copyout`: out at exit only; device copy starts uninitialized.
fn copyout() -> TestCase {
    let mut body = preamble(&["A", "B"], N);
    body.push(b::decl_int("sc", 5));
    body.push(init_array("A", N, |i| i));
    body.push(init_array("B", N, |_| Expr::int(-5)));
    // The scalar in the copyout list distinguishes an honored clause from
    // the implicit mapping rule (which would leave the scalar per-gang).
    let mut copyout_refs = vec![acc_ast::DataRef::section("B", Expr::int(0), Expr::int(N))];
    copyout_refs.push(acc_ast::DataRef::whole("sc"));
    body.push(b::parallel_region(
        vec![
            b::copyin_sec("A", Expr::int(N)),
            AccClause::Data(ClauseKind::Copyout, copyout_refs),
        ],
        vec![
            b::set("sc", Expr::int(9)),
            b::acc_loop(
                vec![],
                "i",
                Expr::int(N),
                vec![b::set1(
                    "B",
                    Expr::var("i"),
                    Expr::add(Expr::idx("A", Expr::var("i")), Expr::int(1)),
                )],
            ),
        ],
    ));
    body.push(check_array("B", N, |i| Expr::add(i, Expr::int(1))));
    body.push(check_eq(Expr::var("sc"), Expr::int(9)));
    body.push(b::return_error_check());
    case(
        "parallel.copyout",
        "parallel.copyout",
        body,
        cross("replace-clause:parallel.copyout->create"),
        "copyout returns every computed element",
    )
}

/// `create`: device scratch storage, never transferred.
fn create() -> TestCase {
    let mut body = preamble(&["A", "B", "T"], N);
    body.push(init_array("A", N, |i| i));
    body.push(init_array("B", N, |_| Expr::int(0)));
    body.push(init_array("T", N, |_| Expr::int(-5)));
    body.push(b::parallel_region(
        vec![
            b::create_clause("T", Some(Expr::int(N))),
            b::copyin_sec("A", Expr::int(N)),
            b::copyout_sec("B", Expr::int(N)),
        ],
        vec![
            b::acc_loop(
                vec![],
                "i",
                Expr::int(N),
                vec![b::set1(
                    "T",
                    Expr::var("i"),
                    Expr::mul(Expr::idx("A", Expr::var("i")), Expr::int(3)),
                )],
            ),
            b::acc_loop(
                vec![],
                "i",
                Expr::int(N),
                vec![b::set1(
                    "B",
                    Expr::var("i"),
                    Expr::add(Expr::idx("T", Expr::var("i")), Expr::int(1)),
                )],
            ),
        ],
    ));
    body.push(check_array("B", N, |i| {
        Expr::add(Expr::mul(i, Expr::int(3)), Expr::int(1))
    }));
    body.push(check_array("T", N, |_| Expr::int(-5)));
    body.push(b::return_error_check());
    case(
        "parallel.create",
        "parallel.create",
        body,
        cross("replace-clause:parallel.create->copy"),
        "create allocates device scratch without any transfer",
    )
}

/// `present`: data placed by an enclosing data region must be found.
fn present() -> TestCase {
    let mut body = preamble(&["A", "B"], N);
    body.push(init_array("A", N, |i| i));
    body.push(init_array("B", N, |_| Expr::int(0)));
    body.push(b::data_region(
        vec![
            b::copyin_sec("A", Expr::int(N)),
            b::copyout_sec("B", Expr::int(N)),
        ],
        vec![b::parallel_region(
            vec![b::data_whole(ClauseKind::Present, &["A", "B"])],
            vec![b::acc_loop(
                vec![],
                "i",
                Expr::int(N),
                vec![b::set1(
                    "B",
                    Expr::var("i"),
                    Expr::mul(Expr::idx("A", Expr::var("i")), Expr::int(2)),
                )],
            )],
        )],
    ));
    body.push(check_array("B", N, |i| Expr::mul(i, Expr::int(2))));
    body.push(b::return_error_check());
    case(
        "parallel.present",
        "parallel.present",
        body,
        cross("remove-directive:data"),
        "present finds data mapped by the enclosing data region (and crashes without it)",
    )
}

/// `present_or_copy`: the present path must win when the data is mapped.
fn pcopy() -> TestCase {
    let mut body = preamble(&["A"], N);
    body.push(init_array("A", N, |i| i));
    body.push(b::data_region(
        vec![b::copyin_sec("A", Expr::int(N))],
        vec![b::parallel_region(
            vec![AccClause::Data(
                ClauseKind::PresentOrCopy,
                vec![acc_ast::DataRef::section("A", Expr::int(0), Expr::int(N))],
            )],
            vec![b::acc_loop(
                vec![],
                "i",
                Expr::int(N),
                vec![b::add1("A", Expr::var("i"), Expr::int(1))],
            )],
        )],
    ));
    // Present hit → the outer copyin owns the data → no copy-back.
    body.push(check_array("A", N, |i| i));
    body.push(b::return_error_check());
    case(
        "parallel.present_or_copy",
        "parallel.present_or_copy",
        body,
        cross("remove-directive:data"),
        "pcopy reuses present data; removing the data region exposes the copy fallback",
    )
}

/// `present_or_copyin`: a miss must upload the CURRENT host values.
fn pcopyin() -> TestCase {
    let mut body = preamble(&["A", "B"], N);
    body.push(init_array("A", N, |i| i));
    body.push(init_array("B", N, |_| Expr::int(0)));
    body.push(b::parallel_region(
        vec![
            AccClause::Data(
                ClauseKind::PresentOrCopyin,
                vec![acc_ast::DataRef::section("A", Expr::int(0), Expr::int(N))],
            ),
            b::copy_sec("B", Expr::int(N)),
        ],
        vec![b::acc_loop(
            vec![],
            "i",
            Expr::int(N),
            vec![
                b::set1("B", Expr::var("i"), Expr::idx("A", Expr::var("i"))),
                b::set1("A", Expr::var("i"), Expr::int(0)),
            ],
        )],
    ));
    body.push(check_array("B", N, |i| i));
    body.push(check_array("A", N, |i| i));
    body.push(b::return_error_check());
    case(
        "parallel.present_or_copyin",
        "parallel.present_or_copyin",
        body,
        cross("replace-clause:parallel.present_or_copyin->present_or_copy"),
        "pcopyin uploads on a miss and never copies back",
    )
}

/// `present_or_copyout`: a miss must copy the computed values out.
fn pcopyout() -> TestCase {
    let mut body = preamble(&["B"], N);
    body.push(b::decl_int("sc", 5));
    body.push(init_array("B", N, |_| Expr::int(-5)));
    body.push(b::parallel_region(
        vec![AccClause::Data(
            ClauseKind::PresentOrCopyout,
            vec![
                acc_ast::DataRef::section("B", Expr::int(0), Expr::int(N)),
                acc_ast::DataRef::whole("sc"),
            ],
        )],
        vec![
            b::set("sc", Expr::int(9)),
            b::acc_loop(
                vec![],
                "i",
                Expr::int(N),
                vec![b::set1(
                    "B",
                    Expr::var("i"),
                    Expr::mul(Expr::var("i"), Expr::int(4)),
                )],
            ),
        ],
    ));
    body.push(check_array("B", N, |i| Expr::mul(i, Expr::int(4))));
    body.push(check_eq(Expr::var("sc"), Expr::int(9)));
    body.push(b::return_error_check());
    case(
        "parallel.present_or_copyout",
        "parallel.present_or_copyout",
        body,
        cross("replace-clause:parallel.present_or_copyout->present_or_create"),
        "pcopyout copies computed values back on a miss",
    )
}

/// `present_or_create`: scratch that must stay device-only.
fn pcreate() -> TestCase {
    let mut body = preamble(&["A", "B", "T"], N);
    body.push(init_array("A", N, |i| i));
    body.push(init_array("B", N, |_| Expr::int(0)));
    body.push(init_array("T", N, |_| Expr::int(-5)));
    body.push(b::parallel_region(
        vec![
            AccClause::Data(
                ClauseKind::PresentOrCreate,
                vec![acc_ast::DataRef::section("T", Expr::int(0), Expr::int(N))],
            ),
            b::copyin_sec("A", Expr::int(N)),
            b::copyout_sec("B", Expr::int(N)),
        ],
        vec![
            b::acc_loop(
                vec![],
                "i",
                Expr::int(N),
                vec![b::set1(
                    "T",
                    Expr::var("i"),
                    Expr::add(Expr::idx("A", Expr::var("i")), Expr::int(9)),
                )],
            ),
            b::acc_loop(
                vec![],
                "i",
                Expr::int(N),
                vec![b::set1("B", Expr::var("i"), Expr::idx("T", Expr::var("i")))],
            ),
        ],
    ));
    body.push(check_array("B", N, |i| Expr::add(i, Expr::int(9))));
    body.push(check_array("T", N, |_| Expr::int(-5)));
    body.push(b::return_error_check());
    case(
        "parallel.present_or_create",
        "parallel.present_or_create",
        body,
        cross("replace-clause:parallel.present_or_create->present_or_copy"),
        "pcreate allocates device-only scratch on a miss",
    )
}

/// `deviceptr` with `acc_malloc` (§IV-B-5). C only — 1.0 has no Fortran
/// binding for the memory routines.
fn deviceptr() -> TestCase {
    let n = N;
    let body = vec![
        b::decl_int("error", 0),
        b::decl_array("A", ScalarType::Float, n as usize),
        b::decl_array("B", ScalarType::Float, n as usize),
        Stmt::DeclScalar {
            name: "p".into(),
            ty: Type::Ptr(ScalarType::Float),
            init: Some(Expr::call(
                "acc_malloc",
                vec![Expr::mul(Expr::int(n), Expr::SizeOf(ScalarType::Float))],
            )),
        },
        init_array("A", n, |i| i),
        init_array("B", n, |_| Expr::int(0)),
        b::parallel_region(
            vec![
                AccClause::Deviceptr(vec!["p".into()]),
                b::copyin_sec("A", Expr::int(n)),
            ],
            vec![b::acc_loop(
                vec![],
                "i",
                Expr::int(n),
                vec![b::set1(
                    "p",
                    Expr::var("i"),
                    Expr::add(Expr::idx("A", Expr::var("i")), Expr::int(1)),
                )],
            )],
        ),
        b::parallel_region(
            vec![
                AccClause::Deviceptr(vec!["p".into()]),
                b::copyout_sec("B", Expr::int(n)),
            ],
            vec![b::acc_loop(
                vec![],
                "i",
                Expr::int(n),
                vec![b::set1("B", Expr::var("i"), Expr::idx("p", Expr::var("i")))],
            )],
        ),
        Stmt::Call {
            name: "acc_free".into(),
            args: vec![Expr::var("p")],
        },
        check_array("B", n, |i| Expr::add(i, Expr::int(1))),
        b::return_error_check(),
    ];
    case(
        "parallel.deviceptr",
        "parallel.deviceptr",
        body,
        cross("remove-clause:parallel.deviceptr"),
        "deviceptr exposes acc_malloc memory to kernels; without it the pointer faults",
    )
    .c_only()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_validation::harness::validate_case;

    #[test]
    fn all_parallel_cases_validate_against_reference() {
        for case in cases() {
            let problems = validate_case(&case);
            assert!(problems.is_empty(), "{}: {problems:?}", case.name);
        }
    }

    #[test]
    fn deviceptr_is_c_only() {
        let c = deviceptr();
        assert_eq!(c.languages, vec![acc_spec::Language::C]);
    }

    #[test]
    fn area_covers_nineteen_features() {
        assert_eq!(cases().len(), 19);
    }
}
