//! Tests for the `declare` directive: a data region spanning the enclosing
//! procedure's lifetime.

use crate::support::*;
use acc_ast::builder as b;
use acc_ast::{
    AccClause, DataRef, Expr, Function, LValue, Param, ParamKind, Program, ScalarType, Stmt,
};
use acc_spec::{ClauseKind, DirectiveKind, Language};
use acc_validation::TestCase;

/// All declare cases.
pub fn cases() -> Vec<TestCase> {
    vec![copy(), copyin(), copyout(), create(), device_resident()]
}

/// Build a program with a `work(A, n)` helper whose body starts with the
/// given declare directive, plus main-side init/check.
fn helper_program(
    name: &str,
    declare_clauses: Vec<AccClause>,
    helper_body_after_declare: Vec<Stmt>,
    main_tail: Vec<Stmt>,
) -> Program {
    let mut helper_body = vec![Stmt::AccStandalone {
        dir: b::with_clauses(DirectiveKind::Declare, declare_clauses),
    }];
    helper_body.extend(helper_body_after_declare);
    let helper = Function {
        name: "work".into(),
        params: vec![
            Param {
                name: "A".into(),
                kind: ParamKind::ArrayPtr(ScalarType::Int),
            },
            Param {
                name: "n".into(),
                kind: ParamKind::Scalar(ScalarType::Int),
            },
        ],
        ret: None,
        body: helper_body,
    };
    let mut main_body = preamble(&["A"], N);
    main_body.extend(main_tail);
    let mut p = Program::simple(name, Language::C, main_body);
    p.functions.insert(0, helper);
    p
}

fn sec_a() -> Vec<DataRef> {
    vec![DataRef::section("A", Expr::int(0), Expr::var("n"))]
}

/// The device kernel all declare tests run: `A[i] = A[i] * 2` under
/// `present`, proving the declare mapping is what carries the data.
fn scale_region() -> Stmt {
    b::parallel_region(
        vec![AccClause::Data(ClauseKind::Present, sec_a())],
        vec![b::acc_loop(
            vec![],
            "i",
            Expr::var("n"),
            vec![b::set1(
                "A",
                Expr::var("i"),
                Expr::mul(Expr::idx("A", Expr::var("i")), Expr::int(2)),
            )],
        )],
    )
}

fn copy() -> TestCase {
    let program = helper_program(
        "declare.copy",
        vec![AccClause::Data(ClauseKind::Copy, sec_a())],
        vec![scale_region()],
        vec![
            init_array("A", N, |i| i),
            Stmt::Call {
                name: "work".into(),
                args: vec![Expr::var("A"), Expr::int(N)],
            },
            check_array("A", N, |i| Expr::mul(i, Expr::int(2))),
            b::return_error_check(),
        ],
    );
    TestCase::new(
        "declare.copy",
        "declare.copy",
        program,
        cross("remove-directive:declare"),
        "declare copy spans the procedure: in at the directive, out at return",
    )
}

fn copyin() -> TestCase {
    let program = helper_program(
        "declare.copyin",
        vec![AccClause::Data(ClauseKind::Copyin, sec_a())],
        vec![scale_region()],
        vec![
            init_array("A", N, |i| i),
            Stmt::Call {
                name: "work".into(),
                args: vec![Expr::var("A"), Expr::int(N)],
            },
            // No copy-back at procedure exit.
            check_array("A", N, |i| i),
            b::return_error_check(),
        ],
    );
    TestCase::new(
        "declare.copyin",
        "declare.copyin",
        program,
        cross("replace-clause:declare.copyin->copy"),
        "declare copyin uploads at the directive and never downloads",
    )
}

fn copyout() -> TestCase {
    let program = helper_program(
        "declare.copyout",
        vec![AccClause::Data(ClauseKind::Copyout, sec_a())],
        vec![b::parallel_region(
            vec![AccClause::Data(ClauseKind::Present, sec_a())],
            vec![b::acc_loop(
                vec![],
                "i",
                Expr::var("n"),
                vec![b::set1(
                    "A",
                    Expr::var("i"),
                    Expr::mul(Expr::var("i"), Expr::int(3)),
                )],
            )],
        )],
        vec![
            init_array("A", N, |_| Expr::int(-5)),
            Stmt::Call {
                name: "work".into(),
                args: vec![Expr::var("A"), Expr::int(N)],
            },
            check_array("A", N, |i| Expr::mul(i, Expr::int(3))),
            b::return_error_check(),
        ],
    );
    TestCase::new(
        "declare.copyout",
        "declare.copyout",
        program,
        cross("replace-clause:declare.copyout->create"),
        "declare copyout downloads computed values at procedure return",
    )
}

fn create() -> TestCase {
    let program = helper_program(
        "declare.create",
        vec![AccClause::Data(ClauseKind::Create, sec_a())],
        vec![
            // Fill the device-only copy, then verify on the device itself by
            // summing into a reduction scalar that is copied back.
            b::parallel_region(
                vec![AccClause::Data(ClauseKind::Present, sec_a())],
                vec![b::acc_loop(
                    vec![],
                    "i",
                    Expr::var("n"),
                    vec![b::set1("A", Expr::var("i"), Expr::int(1))],
                )],
            ),
        ],
        vec![
            init_array("A", N, |_| Expr::int(-5)),
            Stmt::Call {
                name: "work".into(),
                args: vec![Expr::var("A"), Expr::int(N)],
            },
            // Device-only: the host copy must be untouched.
            check_array("A", N, |_| Expr::int(-5)),
            b::return_error_check(),
        ],
    );
    TestCase::new(
        "declare.create",
        "declare.create",
        program,
        cross("replace-clause:declare.create->copy"),
        "declare create is device-only for the procedure lifetime",
    )
}

fn device_resident() -> TestCase {
    let program = helper_program(
        "declare.device_resident",
        vec![AccClause::Data(ClauseKind::DeviceResident, sec_a())],
        vec![b::parallel_region(
            vec![AccClause::Data(ClauseKind::Present, sec_a())],
            vec![b::acc_loop(
                vec![],
                "i",
                Expr::var("n"),
                vec![b::set1("A", Expr::var("i"), Expr::int(1))],
            )],
        )],
        vec![
            init_array("A", N, |_| Expr::int(-5)),
            Stmt::Call {
                name: "work".into(),
                args: vec![Expr::var("A"), Expr::int(N)],
            },
            check_array("A", N, |_| Expr::int(-5)),
            b::return_error_check(),
        ],
    );
    TestCase::new(
        "declare.device_resident",
        "declare.device_resident",
        program,
        cross("remove-directive:declare"),
        "device_resident keeps the variable on the device for the procedure lifetime",
    )
}

// Unused import guard (LValue appears in some rustfmt arrangements).
#[allow(unused)]
fn _keep(_: Option<LValue>) {}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_validation::harness::validate_case;

    #[test]
    fn all_declare_cases_validate_against_reference() {
        for case in cases() {
            let problems = validate_case(&case);
            assert!(problems.is_empty(), "{}: {problems:?}", case.name);
        }
    }

    #[test]
    fn area_covers_five_features() {
        assert_eq!(cases().len(), 5);
    }
}
