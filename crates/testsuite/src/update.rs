//! Tests for the `update` construct (§IV-D).

use crate::support::*;
use acc_ast::builder as b;
use acc_ast::{AccClause, Expr, LValue, Stmt};
use acc_spec::ClauseKind;
use acc_validation::TestCase;

/// All update-construct cases.
pub fn cases() -> Vec<TestCase> {
    vec![host(), device(), if_clause(), async_clause()]
}

/// `update host`: refresh the host copy mid-region.
fn host() -> TestCase {
    let mut body = preamble(&["A"], N);
    body.push(init_array("A", N, |_| Expr::int(0)));
    body.push(b::data_region(
        vec![b::copyin_sec("A", Expr::int(N))],
        vec![
            b::parallel_region(
                vec![],
                vec![b::acc_loop(
                    vec![],
                    "i",
                    Expr::int(N),
                    vec![b::set1("A", Expr::var("i"), Expr::int(5))],
                )],
            ),
            b::update(vec![AccClause::Data(
                ClauseKind::HostClause,
                vec![acc_ast::DataRef::section("A", Expr::int(0), Expr::int(N))],
            )]),
            // The check runs inside the data region, right after the update.
            check_array("A", N, |_| Expr::int(5)),
        ],
    ));
    body.push(b::return_error_check());
    case(
        "update.host",
        "update.host",
        body,
        cross("remove-directive:update"),
        "update host refreshes the host copy from the device mid-region",
    )
}

/// `update device`: refresh the device copy after host writes.
fn device() -> TestCase {
    let mut body = preamble(&["A", "B"], N);
    body.push(init_array("A", N, |_| Expr::int(0)));
    body.push(init_array("B", N, |_| Expr::int(0)));
    body.push(b::data_region(
        vec![b::copyin_sec("A", Expr::int(N))],
        vec![
            init_array("A", N, |_| Expr::int(9)), // host-side writes
            b::update(vec![AccClause::Data(
                ClauseKind::DeviceClause,
                vec![acc_ast::DataRef::section("A", Expr::int(0), Expr::int(N))],
            )]),
            b::parallel_region(
                vec![b::copy_sec("B", Expr::int(N))],
                vec![b::acc_loop(
                    vec![],
                    "i",
                    Expr::int(N),
                    vec![b::set1("B", Expr::var("i"), Expr::idx("A", Expr::var("i")))],
                )],
            ),
        ],
    ));
    body.push(check_array("B", N, |_| Expr::int(9)));
    body.push(b::return_error_check());
    case(
        "update.device",
        "update.device",
        body,
        cross("remove-directive:update"),
        "update device pushes host writes to the device copy",
    )
}

/// `if` on update: a false condition must suppress the transfer.
fn if_clause() -> TestCase {
    let mut body = preamble(&["A"], N);
    body.push(b::decl_int("cond", 0));
    body.push(init_array("A", N, |_| Expr::int(0)));
    body.push(b::data_region(
        vec![b::copyin_sec("A", Expr::int(N))],
        vec![
            b::parallel_region(
                vec![],
                vec![b::acc_loop(
                    vec![],
                    "i",
                    Expr::int(N),
                    vec![b::set1("A", Expr::var("i"), Expr::int(5))],
                )],
            ),
            b::update(vec![
                AccClause::Data(
                    ClauseKind::HostClause,
                    vec![acc_ast::DataRef::section("A", Expr::int(0), Expr::int(N))],
                ),
                AccClause::If(Expr::var("cond")),
            ]),
            // Suppressed: the host copy must still be zero.
            check_array("A", N, |_| Expr::int(0)),
        ],
    ));
    body.push(b::return_error_check());
    case(
        "update.if",
        "update.if",
        body,
        cross("force-if:1"),
        "if(false) on update suppresses the transfer",
    )
}

/// `async` on update: the transfer completes only at the wait.
fn async_clause() -> TestCase {
    let mut body = preamble(&["A"], N);
    body.push(init_array("A", N, |_| Expr::int(0)));
    body.push(b::data_region(
        vec![b::copyin_sec("A", Expr::int(N))],
        vec![
            b::parallel_region(
                vec![],
                vec![b::acc_loop(
                    vec![],
                    "i",
                    Expr::int(N),
                    vec![b::set1("A", Expr::var("i"), Expr::int(5))],
                )],
            ),
            b::update(vec![
                AccClause::Data(
                    ClauseKind::HostClause,
                    vec![acc_ast::DataRef::section("A", Expr::int(0), Expr::int(N))],
                ),
                AccClause::Async(Some(Expr::int(6))),
            ]),
            // Not yet visible…
            Stmt::If {
                cond: Expr::ne(Expr::idx("A", Expr::int(0)), Expr::int(0)),
                then_body: vec![Stmt::assign_op(
                    LValue::var("error"),
                    acc_ast::BinOp::Add,
                    Expr::int(1),
                )],
                else_body: vec![],
            },
            b::wait(Some(Expr::int(6))),
            // …now it is.
            check_array("A", N, |_| Expr::int(5)),
        ],
    ));
    body.push(b::return_error_check());
    case(
        "update.async",
        "update.async",
        body,
        cross("remove-clause:update.async"),
        "async update defers host visibility until the matching wait",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_validation::harness::validate_case;

    #[test]
    fn all_update_cases_validate_against_reference() {
        for case in cases() {
            let problems = validate_case(&case);
            assert!(problems.is_empty(), "{}: {problems:?}", case.name);
        }
    }

    #[test]
    fn area_covers_four_features() {
        assert_eq!(cases().len(), 4);
    }
}
