//! # acc-testsuite — the OpenACC 1.0 test corpus
//!
//! The complete feature-test corpus of the validation suite: one test case
//! per feature of the OpenACC 1.0 specification (directives, clauses,
//! runtime library routines, environment variables), each with a functional
//! variant and — wherever a meaningful one exists — a cross variant, in both
//! C and Fortran (§III: "more than 160 test cases covering the OpenACC C
//! and OpenACC Fortran feature set included in 1.0").
//!
//! The corpus is organized by the areas of §IV. The showcase tests that
//! reproduce the paper's code figures verbatim are authored as *text
//! templates* ([`templates`]) and expanded through
//! `acc_validation::template`; the systematic families (data-clause
//! matrices, the 21-variant reduction battery) are constructed
//! programmatically with the AST builders. Both paths produce ordinary
//! [`TestCase`]s.
//!
//! [`full_suite`] returns every 1.0-conformance case; [`ambiguity`] and
//! [`v2_preview`] host the Fig. 1 ambiguity probe and the OpenACC 2.0
//! preview tests, which are deliberately *not* part of the conformance
//! suite.

#![warn(missing_docs)]

pub mod ambiguity;
pub mod combinations;
pub mod combined;
pub mod data;
pub mod declare;
pub mod environment;
pub mod host_data;
pub mod kernels;
pub mod loops;
pub mod misc;
pub mod parallel;
pub mod reductions;
pub mod runtime;
pub mod support;
pub mod templates;
pub mod update;
pub mod v2_preview;

use acc_validation::TestCase;

/// The complete OpenACC 1.0 conformance suite.
pub fn full_suite() -> Vec<TestCase> {
    let mut suite = Vec::new();
    suite.extend(parallel::cases());
    suite.extend(kernels::cases());
    suite.extend(data::cases());
    suite.extend(host_data::cases());
    suite.extend(loops::cases());
    suite.extend(reductions::cases());
    suite.extend(combined::cases());
    suite.extend(update::cases());
    suite.extend(declare::cases());
    suite.extend(misc::cases());
    suite.extend(runtime::cases());
    suite.extend(environment::cases());
    suite.extend(combinations::cases());
    suite
}

/// Total number of generated test programs (per-language variants), the
/// paper's "over 160 test cases (both C and Fortran)" metric.
pub fn variant_count(suite: &[TestCase]) -> usize {
    suite.iter().map(|c| c.languages.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn suite_exceeds_paper_size() {
        let suite = full_suite();
        assert!(
            suite.len() >= 100,
            "feature cases: {} (expected ≥ 100)",
            suite.len()
        );
        assert!(
            variant_count(&suite) > 160,
            "language variants: {} (paper: over 160)",
            variant_count(&suite)
        );
    }

    #[test]
    fn case_names_are_unique() {
        let suite = full_suite();
        let names: BTreeSet<_> = suite.iter().map(|c| c.name.clone()).collect();
        assert_eq!(names.len(), suite.len());
    }

    #[test]
    fn features_are_unique() {
        let suite = full_suite();
        let features: BTreeSet<_> = suite.iter().map(|c| c.feature.clone()).collect();
        assert_eq!(features.len(), suite.len());
    }

    #[test]
    fn all_sources_render_and_reparse() {
        // Every generated program must be accepted by the front-end of the
        // language it is generated for (generation sanity, independent of
        // execution).
        for case in full_suite() {
            for lang in case.languages.clone() {
                let src = case.source_for(lang);
                acc_frontend_reparse(&src, lang, &case.name);
                if let Some(xs) = case.cross_source_for(lang) {
                    acc_frontend_reparse(&xs, lang, &format!("{} (cross)", case.name));
                }
            }
        }
    }

    fn acc_frontend_reparse(src: &str, lang: acc_spec::Language, what: &str) {
        if let Err(e) = acc_frontend::parse(src, lang) {
            panic!("{what} [{lang}] does not reparse: {e}\n---\n{src}");
        }
    }
}
