//! The paper's code figures, authored verbatim as text templates and
//! expanded through the template engine — exercising the production
//! authoring path end to end (template text → parse → AST → four generated
//! programs).

use acc_validation::template::parse_templates;
use acc_validation::TestCase;

/// Fig. 2: the `loop` directive functional/cross pair.
pub const FIG2_LOOP: &str = r#"
<acctest name="loop" feature="loop" cross="remove-directive:loop">
<description>Fig. 2: the loop directive partitions iterations across gangs; without it every gang increments every element (paper Fig. 2(b))</description>
<code>
int main(void) {
    int error = 0;
    int A[16];
    for (i = 0; i < 16; i++)
    {
        A[i] = 0;
    }
    #pragma acc parallel num_gangs(10) copy(A[0:16])
    {
        #pragma acc loop
        for (i = 0; i < 16; i++)
        {
            A[i] = A[i] + 1;
        }
    }
    for (i = 0; i < 16; i++)
    {
        if (A[i] != 1)
        {
            error++;
        }
    }
    return error == 0;
}
</code>
</acctest>
"#;

/// Fig. 4: `num_workers` with a gang loop over a worker-reduction loop.
pub const FIG4_NUM_WORKERS: &str = r#"
<acctest name="parallel.num_workers" feature="parallel.num_workers" cross="remove-clause:loop.worker">
<description>Fig. 4: outer loop on gangs, inner loop on the workers of one gang performing a reduction; every gang must see the full reduction value</description>
<code>
int main(void) {
    int error = 0;
    int gangs_red[4];
    for (i = 0; i < 4; i++)
    {
        gangs_red[i] = 0;
    }
    #pragma acc parallel copy(gangs_red[0:4]) num_gangs(4) num_workers(8)
    {
        #pragma acc loop gang
        for (i = 0; i < 4; i++)
        {
            int to_reduct = 0;
            #pragma acc loop worker reduction(+:to_reduct)
            for (j = 0; j < 32; j++)
            {
                to_reduct += 1;
            }
            gangs_red[i] = to_reduct;
        }
    }
    for (i = 0; i < 4; i++)
    {
        if (gangs_red[i] != 32)
        {
            error++;
        }
    }
    return error == 0;
}
</code>
</acctest>
"#;

/// Fig. 5: the `if` clause evaluated at runtime on a combined construct.
pub const FIG5_IF: &str = r#"
<acctest name="parallel.if" feature="parallel.if" cross="force-if:1">
<description>Fig. 5: the if clause stops device execution once the runtime condition turns false; host-side iterations are overwritten by the data region copyout</description>
<code>
int main(void) {
    int error = 0;
    int sum = 1;
    int A[16];
    int B[16];
    int C[16];
    for (i = 0; i < 16; i++)
    {
        A[i] = i;
        B[i] = 2 * i;
        C[i] = 0;
    }
    #pragma acc data copy(C[0:16]) copyin(A[0:16], B[0:16])
    {
        for (m = 0; m < 10; m++)
        {
            #pragma acc parallel loop if(sum < 10)
            for (j = 0; j < 16; j++)
            {
                C[j] += A[j] + B[j];
            }
            sum += 1;
        }
    }
    for (i = 0; i < 16; i++)
    {
        if (C[i] != 27 * i)
        {
            error++;
        }
    }
    return error == 0;
}
</code>
</acctest>
"#;

/// Fig. 6: `data copy` with the HOST/DEVICE flag in `create`.
pub const FIG6_DATA_COPY: &str = r#"
<acctest name="data.copy" feature="data.copy" cross="replace-clause:data.copy->copyin">
<description>Fig. 6: arrays move through copy; the flag lives only on the device via create, so the host flag must keep its HOST value</description>
<code>
int main(void) {
    int error = 0;
    int flag = 100;
    int A[16];
    int B[16];
    int C[16];
    int knownC[16];
    for (i = 0; i < 16; i++)
    {
        A[i] = i;
        B[i] = i;
        C[i] = 0;
        knownC[i] = A[i] + B[i] + 200;
    }
    #pragma acc data create(flag) copy(A[0:16], B[0:16], C[0:16])
    {
        #pragma acc parallel
        {
            flag = 200;
            #pragma acc loop
            for (j = 0; j < 16; j++)
            {
                C[j] = A[j] + B[j] + flag;
            }
        }
    }
    for (i = 0; i < 16; i++)
    {
        if (C[i] != knownC[i])
        {
            error++;
        }
    }
    if (flag != 100)
    {
        error++;
    }
    return error == 0;
}
</code>
</acctest>
"#;

/// Fig. 7: floating-point addition reduction against the geometric series.
pub const FIG7_REDUCTION_FLOAT: &str = r#"
<acctest name="loop.reduction.add.float" feature="loop.reduction.add.float" cross="remove-clause:kernels_loop.reduction">
<description>Fig. 7: float + reduction summing powf(ft, i), compared with (1-ft^N)/(1-ft) under a rounding tolerance</description>
<code>
int main(void) {
    int error = 0;
    float fsum = 0.0f;
    float ft = 0.5f;
    float fpt = 1.0f;
    float fknown_sum = 0.0f;
    float frounding_error = 0.0001f;
    for (i = 0; i < 20; i++)
    {
        fpt *= ft;
    }
    fknown_sum = (1.0f - fpt) / (1.0f - ft);
    #pragma acc kernels loop reduction(+:fsum)
    for (i = 0; i < 20; i++)
    {
        fsum += powf(ft, i);
    }
    if (fabsf(fsum - fknown_sum) > frounding_error)
    {
        error++;
    }
    return error == 0;
}
</code>
</acctest>
"#;

/// Fig. 9: `num_gangs` with a variable expression (the CAPS §V-B bug).
pub const FIG9_NUM_GANGS: &str = r#"
<acctest name="parallel.num_gangs" feature="parallel.num_gangs" cross="remove-clause:parallel.num_gangs">
<description>Fig. 9: num_gangs with a non-constant expression; a gang-count reduction must equal the requested gang count</description>
<code>
int main(void) {
    int gangs = 8;
    int known_gang_num = 8;
    int gang_num = 0;
    #pragma acc parallel num_gangs(gangs) reduction(+:gang_num)
    {
        gang_num++;
    }
    return gang_num == known_gang_num;
}
</code>
</acctest>
"#;

/// Fig. 10: `acc_async_test` before and after `wait`.
pub const FIG10_ASYNC_TEST: &str = r#"
<acctest name="rt.acc_async_test" feature="rt.acc_async_test" cross="remove-clause:kernels.async">
<description>Fig. 10: immediately after an async launch acc_async_test must report incomplete; after wait it must report complete and the results must be visible</description>
<code>
int main(void) {
    int error = 0;
    int is_sync = -1;
    int A[64];
    int B[64];
    int C[64];
    for (i = 0; i < 64; i++)
    {
        A[i] = i;
        B[i] = 2 * i;
        C[i] = 0;
    }
    #pragma acc kernels copyin(A[0:64], B[0:64]) copy(C[0:64]) async(4)
    {
        #pragma acc loop
        for (i = 0; i < 64; i++)
        {
            C[i] = A[i] + B[i];
        }
    }
    is_sync = acc_async_test(4);
    if (is_sync != 0)
    {
        error++;
    }
    #pragma acc wait(4)
    is_sync = acc_async_test(4);
    if (is_sync == 0)
    {
        error++;
    }
    for (i = 0; i < 64; i++)
    {
        if (C[i] != 3 * i)
        {
            error++;
        }
    }
    return error == 0;
}
</code>
</acctest>
"#;

/// Fig. 11: `copyout` both assigned and unassigned (the Cray dead-region
/// behaviour).
pub const FIG11_COPYOUT: &str = r#"
<acctest name="data.copyout" feature="data.copyout" cross="replace-clause:data.copyout->create">
<description>Fig. 11: assigned copyout must carry the device values out at region exit (a mid-region host write is overwritten); unassigned copyout must transfer device garbage that differs from the host's initial values</description>
<code>
int main(void) {
    int error = 0;
    int eq = 0;
    int B[16];
    int C[16];
    int D[16];
    int C2[16];
    for (i = 0; i < 16; i++)
    {
        B[i] = 0;
        C[i] = 0;
        D[i] = i * 3 + 1;
        C2[i] = 0;
    }
    #pragma acc data copyout(B[0:16], C[0:16])
    {
        #pragma acc parallel
        {
            #pragma acc loop
            for (j = 0; j < 16; j++)
            {
                B[j] = 50 + j;
                C[j] = B[j] + 1;
            }
        }
        B[0] = -9;
        #pragma acc parallel
        {
            #pragma acc loop
            for (j = 0; j < 16; j++)
            {
                B[j] = B[j] + 1;
                C[j] = C[j] + 1;
            }
        }
    }
    for (i = 0; i < 16; i++)
    {
        if (B[i] != 51 + i)
        {
            error++;
        }
        if (C[i] != 52 + i)
        {
            error++;
        }
    }
    #pragma acc parallel copyout(D[0:16])
    {
        #pragma acc loop
        for (j = 0; j < 16; j++)
        {
            C2[j] = D[j];
        }
    }
    for (i = 0; i < 16; i++)
    {
        if (D[i] == i * 3 + 1)
        {
            eq++;
        }
    }
    if (eq == 16)
    {
        error++;
    }
    return error == 0;
}
</code>
</acctest>
"#;

fn one(template: &str) -> TestCase {
    parse_templates(template)
        .expect("corpus template must parse")
        .pop()
        .expect("exactly one case per figure template")
}

/// Fig. 2 `loop` case.
pub fn fig2_loop() -> TestCase {
    one(FIG2_LOOP)
}

/// Fig. 4 `num_workers` case.
pub fn fig4_num_workers() -> TestCase {
    one(FIG4_NUM_WORKERS)
}

/// Fig. 5 `if` case.
pub fn fig5_if() -> TestCase {
    one(FIG5_IF)
}

/// Fig. 6 `data copy` case.
pub fn fig6_data_copy() -> TestCase {
    one(FIG6_DATA_COPY)
}

/// Fig. 7 float reduction case.
pub fn fig7_reduction_float() -> TestCase {
    one(FIG7_REDUCTION_FLOAT)
}

/// Fig. 9 `num_gangs` case.
pub fn fig9_num_gangs() -> TestCase {
    one(FIG9_NUM_GANGS)
}

/// Fig. 10 `acc_async_test` case.
pub fn fig10_async_test() -> TestCase {
    one(FIG10_ASYNC_TEST)
}

/// Fig. 11 `copyout` case.
pub fn fig11_copyout() -> TestCase {
    one(FIG11_COPYOUT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_validation::harness::validate_case;

    #[test]
    fn every_figure_template_validates_against_reference() {
        for case in [
            fig2_loop(),
            fig4_num_workers(),
            fig5_if(),
            fig6_data_copy(),
            fig7_reduction_float(),
            fig9_num_gangs(),
            fig10_async_test(),
            fig11_copyout(),
        ] {
            let problems = validate_case(&case);
            assert!(problems.is_empty(), "{}: {problems:?}", case.name);
        }
    }
}
