//! Shared program-construction helpers for the corpus.
//!
//! Every test program follows the paper's conventions: an `error` counter
//! accumulated by the check section and a final `return (error == 0);`
//! (well-formed tests return 1 on pass).

use acc_ast::builder as b;
use acc_ast::{Expr, Program, ScalarType, Stmt};
use acc_spec::Language;
use acc_validation::{CrossRule, TestCase};

/// Standard array length used by most corpus tests — small enough to keep a
/// 200-program campaign fast, large enough that partitioning effects are
/// unambiguous.
pub const N: i64 = 16;

/// `for (i = 0; i < n; i++) name[i] = f(i);`
pub fn init_array(name: &str, n: i64, f: impl Fn(Expr) -> Expr) -> Stmt {
    b::for_upto(
        "i",
        Expr::int(n),
        vec![b::set1(name, Expr::var("i"), f(Expr::var("i")))],
    )
}

/// `for (i = 0; i < n; i++) if (name[i] != f(i)) error++;`
pub fn check_array(name: &str, n: i64, f: impl Fn(Expr) -> Expr) -> Stmt {
    b::for_upto(
        "i",
        Expr::int(n),
        vec![b::if_then(
            Expr::ne(Expr::idx(name, Expr::var("i")), f(Expr::var("i"))),
            vec![b::bump_error()],
        )],
    )
}

/// `if (lhs != rhs) error++;`
pub fn check_eq(lhs: Expr, rhs: Expr) -> Stmt {
    b::if_then(Expr::ne(lhs, rhs), vec![b::bump_error()])
}

/// `if (lhs == rhs) error++;` — the value must NOT equal `rhs`.
pub fn check_ne(lhs: Expr, rhs: Expr) -> Stmt {
    b::if_then(Expr::eq(lhs, rhs), vec![b::bump_error()])
}

/// Wrap a main body into a [`TestCase`]. The body must declare and maintain
/// `error` itself when it uses the check helpers.
pub fn case(
    name: &str,
    feature: &str,
    body: Vec<Stmt>,
    cross: Option<CrossRule>,
    description: &str,
) -> TestCase {
    let program = Program::simple(name, Language::C, body);
    TestCase::new(name, feature, program, cross, description)
}

/// Declare the standard preamble: `int error = 0;` plus `int` arrays.
pub fn preamble(arrays: &[&str], n: i64) -> Vec<Stmt> {
    let mut body = vec![b::decl_int("error", 0)];
    for a in arrays {
        body.push(b::decl_array(a, ScalarType::Int, n as usize));
    }
    body
}

/// Parse a cross-rule spec string (panics on typos — corpus definitions are
/// static).
pub fn cross(spec: &str) -> Option<CrossRule> {
    Some(spec.parse().unwrap_or_else(|e| panic!("{spec}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_and_check_render() {
        let body = vec![
            b::decl_int("error", 0),
            b::decl_array("A", ScalarType::Int, 8),
            init_array("A", 8, |i| Expr::mul(i, Expr::int(2))),
            check_array("A", 8, |i| Expr::mul(i, Expr::int(2))),
            b::return_error_check(),
        ];
        let t = case("t", "t", body, None, "self-consistent init/check");
        let src = t.source_for(Language::C);
        assert!(src.contains("A[i] = i * 2;"));
        assert!(src.contains("if (A[i] != i * 2)"));
    }

    #[test]
    fn cross_parser_panics_on_typo() {
        assert!(std::panic::catch_unwind(|| cross("remove-diractive:loop")).is_err());
        assert!(cross("remove-directive:loop").is_some());
    }

    #[test]
    fn check_ne_shape() {
        let s = check_ne(Expr::var("x"), Expr::int(3));
        match s {
            Stmt::If { cond, .. } => assert_eq!(cond, Expr::eq(Expr::var("x"), Expr::int(3))),
            other => panic!("{other:?}"),
        }
    }
}
