//! `wait` and `cache` directive tests.

use crate::support::*;
use acc_ast::builder as b;
use acc_ast::{AccClause, DataRef, Expr, ForLoop, Stmt};
use acc_spec::DirectiveKind;
use acc_validation::TestCase;

/// Both misc cases.
pub fn cases() -> Vec<TestCase> {
    vec![wait(), cache()]
}

/// Standalone `wait(tag)` blocks until the async region's deferred effects
/// land.
fn wait() -> TestCase {
    let mut body = preamble(&["A"], N);
    body.push(init_array("A", N, |_| Expr::int(0)));
    body.push(b::parallel_region(
        vec![
            b::copy_sec("A", Expr::int(N)),
            AccClause::Async(Some(Expr::int(3))),
        ],
        vec![b::acc_loop(
            vec![],
            "i",
            Expr::int(N),
            vec![b::add1("A", Expr::var("i"), Expr::int(1))],
        )],
    ));
    body.push(b::wait(Some(Expr::int(3))));
    body.push(check_array("A", N, |_| Expr::int(1)));
    body.push(b::return_error_check());
    case(
        "wait",
        "wait",
        body,
        cross("remove-directive:wait"),
        "wait(tag) releases the async region's deferred copyout",
    )
}

/// `cache` is a performance hint: the annotated computation must still be
/// correct. Functional-only (a hint has no result-level cross signal).
fn cache() -> TestCase {
    let mut body = preamble(&["A"], N);
    body.push(init_array("A", N, |i| i));
    body.push(Stmt::AccLoop {
        dir: b::with_clauses(
            DirectiveKind::ParallelLoop,
            vec![b::copy_sec("A", Expr::int(N))],
        ),
        l: ForLoop::upto(
            "i",
            Expr::int(N),
            vec![
                Stmt::AccStandalone {
                    dir: {
                        let mut d = acc_ast::AccDirective::new(DirectiveKind::Cache);
                        d.cache_args = vec![DataRef::section("A", Expr::int(0), Expr::int(N))];
                        d
                    },
                },
                b::add1("A", Expr::var("i"), Expr::int(1)),
            ],
        ),
    });
    body.push(check_array("A", N, |i| Expr::add(i, Expr::int(1))));
    body.push(b::return_error_check());
    case(
        "cache",
        "cache",
        body,
        None,
        "the cache hint must not change results",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_validation::harness::validate_case;

    #[test]
    fn all_misc_cases_validate_against_reference() {
        for case in cases() {
            let problems = validate_case(&case);
            assert!(problems.is_empty(), "{}: {problems:?}", case.name);
        }
    }
}
