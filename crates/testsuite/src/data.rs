//! Tests for the `data` construct and its clauses (§IV-B).

use crate::support::*;
use crate::templates;
use acc_ast::builder as b;
use acc_ast::{AccClause, DataRef, Expr, LValue, ScalarType, Stmt, Type};
use acc_spec::ClauseKind;
use acc_validation::TestCase;

/// All data-construct cases.
pub fn cases() -> Vec<TestCase> {
    vec![
        base(),
        if_clause(),
        templates::fig6_data_copy(),
        copy_scalar(),
        copyin(),
        templates::fig11_copyout(),
        create(),
        present(),
        pcopy(),
        pcopyin(),
        pcopyout(),
        pcreate(),
        deviceptr(),
    ]
}

/// Base: the data region decouples device data from later host writes.
fn base() -> TestCase {
    let mut body = preamble(&["A", "B"], N);
    body.push(init_array("A", N, |i| i));
    body.push(init_array("B", N, |_| Expr::int(0)));
    body.push(b::data_region(
        vec![b::copyin_sec("A", Expr::int(N))],
        vec![
            // Host-side write after the upload: must not reach the device.
            Stmt::assign(LValue::idx("A", Expr::int(0)), Expr::int(999)),
            b::parallel_region(
                vec![b::copy_sec("B", Expr::int(N))],
                vec![b::acc_loop(
                    vec![],
                    "i",
                    Expr::int(N),
                    vec![b::set1("B", Expr::var("i"), Expr::idx("A", Expr::var("i")))],
                )],
            ),
        ],
    ));
    body.push(check_array("B", N, |i| i));
    body.push(b::return_error_check());
    case(
        "data",
        "data",
        body,
        cross("remove-directive:data"),
        "data uploads at region entry; later host writes stay invisible on the device",
    )
}

/// `if` on data: true means all copies occur; the cross test forces false.
fn if_clause() -> TestCase {
    let mut body = preamble(&["A"], N);
    body.push(init_array("A", N, |i| i));
    body.push(b::data_region(
        vec![
            AccClause::If(Expr::int(1)),
            b::copyin_sec("A", Expr::int(N)),
        ],
        vec![b::parallel_region(
            vec![],
            vec![b::acc_loop(
                vec![],
                "i",
                Expr::int(N),
                vec![b::add1("A", Expr::var("i"), Expr::int(1))],
            )],
        )],
    ));
    // copyin owns the mapping: device increments never come back.
    body.push(check_array("A", N, |i| i));
    body.push(b::return_error_check());
    case(
        "data.if",
        "data.if",
        body,
        cross("force-if:0"),
        "if(true) maps the data; if(false) leaves the compute construct to map (and copy back) \
         by itself",
    )
}

/// Scalar variables in `copy` must transfer both ways (the Cray §V-B bug).
fn copy_scalar() -> TestCase {
    let body = vec![
        b::decl_int("error", 0),
        b::decl_int("s", 5),
        b::data_region(
            vec![b::data_whole(ClauseKind::Copy, &["s"])],
            vec![b::parallel_region(vec![], vec![b::set("s", Expr::int(7))])],
        ),
        check_eq(Expr::var("s"), Expr::int(7)),
        b::return_error_check(),
    ];
    case(
        "data.copy_scalar",
        "data.copy_scalar",
        body,
        cross("remove-directive:data"),
        "a scalar in copy must be transferred back to the host (§V-B Cray)",
    )
}

fn copyin() -> TestCase {
    let mut body = preamble(&["A", "B"], N);
    body.push(init_array("A", N, |i| i));
    body.push(init_array("B", N, |_| Expr::int(0)));
    body.push(b::data_region(
        vec![b::copyin_sec("A", Expr::int(N))],
        vec![b::parallel_region(
            vec![b::copy_sec("B", Expr::int(N))],
            vec![b::acc_loop(
                vec![],
                "i",
                Expr::int(N),
                vec![
                    b::set1(
                        "B",
                        Expr::var("i"),
                        Expr::mul(Expr::idx("A", Expr::var("i")), Expr::int(2)),
                    ),
                    b::set1("A", Expr::var("i"), Expr::int(-1)),
                ],
            )],
        )],
    ));
    body.push(check_array("B", N, |i| Expr::mul(i, Expr::int(2))));
    body.push(check_array("A", N, |i| i));
    body.push(b::return_error_check());
    case(
        "data.copyin",
        "data.copyin",
        body,
        cross("replace-clause:data.copyin->copy"),
        "copyin on data uploads once and never downloads",
    )
}

fn create() -> TestCase {
    let mut body = preamble(&["A", "B", "T"], N);
    body.push(init_array("A", N, |i| i));
    body.push(init_array("B", N, |_| Expr::int(0)));
    body.push(init_array("T", N, |_| Expr::int(-5)));
    body.push(b::data_region(
        vec![b::create_clause("T", Some(Expr::int(N)))],
        vec![
            b::parallel_region(
                vec![b::copyin_sec("A", Expr::int(N))],
                vec![b::acc_loop(
                    vec![],
                    "i",
                    Expr::int(N),
                    vec![b::set1(
                        "T",
                        Expr::var("i"),
                        Expr::mul(Expr::idx("A", Expr::var("i")), Expr::int(2)),
                    )],
                )],
            ),
            b::parallel_region(
                vec![b::copyout_sec("B", Expr::int(N))],
                vec![b::acc_loop(
                    vec![],
                    "i",
                    Expr::int(N),
                    vec![b::set1(
                        "B",
                        Expr::var("i"),
                        Expr::add(Expr::idx("T", Expr::var("i")), Expr::int(1)),
                    )],
                )],
            ),
        ],
    ));
    body.push(check_array("B", N, |i| {
        Expr::add(Expr::mul(i, Expr::int(2)), Expr::int(1))
    }));
    body.push(check_array("T", N, |_| Expr::int(-5)));
    body.push(b::return_error_check());
    case(
        "data.create",
        "data.create",
        body,
        cross("replace-clause:data.create->copy"),
        "create on data carries device-only state across compute regions",
    )
}

fn present() -> TestCase {
    let mut body = preamble(&["A", "B"], N);
    body.push(init_array("A", N, |i| i));
    body.push(init_array("B", N, |_| Expr::int(0)));
    body.push(b::data_region(
        vec![
            AccClause::If(Expr::int(1)),
            b::copyin_sec("A", Expr::int(N)),
        ],
        vec![Stmt::AccBlock {
            dir: b::data(vec![b::data_whole(ClauseKind::Present, &["A"])]),
            body: vec![b::parallel_region(
                vec![b::copy_sec("B", Expr::int(N))],
                vec![b::acc_loop(
                    vec![],
                    "i",
                    Expr::int(N),
                    vec![b::set1(
                        "B",
                        Expr::var("i"),
                        Expr::mul(Expr::idx("A", Expr::var("i")), Expr::int(5)),
                    )],
                )],
            )],
        }],
    ));
    body.push(check_array("B", N, |i| Expr::mul(i, Expr::int(5))));
    body.push(b::return_error_check());
    case(
        "data.present",
        "data.present",
        body,
        cross("force-if:0"),
        "present on a nested data region finds the outer mapping; without it the lookup crashes",
    )
}

fn pcopy() -> TestCase {
    let mut body = preamble(&["A"], N);
    body.push(init_array("A", N, |i| i));
    body.push(b::data_region(
        vec![
            AccClause::If(Expr::int(1)),
            b::copyin_sec("A", Expr::int(N)),
        ],
        vec![Stmt::AccBlock {
            dir: b::data(vec![AccClause::Data(
                ClauseKind::PresentOrCopy,
                vec![DataRef::section("A", Expr::int(0), Expr::int(N))],
            )]),
            body: vec![b::parallel_region(
                vec![],
                vec![b::acc_loop(
                    vec![],
                    "i",
                    Expr::int(N),
                    vec![b::add1("A", Expr::var("i"), Expr::int(1))],
                )],
            )],
        }],
    ));
    body.push(check_array("A", N, |i| i));
    body.push(b::return_error_check());
    case(
        "data.present_or_copy",
        "data.present_or_copy",
        body,
        cross("force-if:0"),
        "pcopy on a nested data region reuses the outer mapping (no copy-back); a miss falls \
         back to full copy",
    )
}

fn pcopyin() -> TestCase {
    let mut body = preamble(&["A", "B", "M"], N);
    body.push(init_array("A", N, |i| i));
    body.push(init_array("B", N, |_| Expr::int(0)));
    body.push(init_array("M", N, |i| Expr::mul(i, Expr::int(2))));
    body.push(b::data_region(
        vec![
            AccClause::If(Expr::int(1)),
            b::copyin_sec("A", Expr::int(N)),
        ],
        vec![
            Stmt::assign(LValue::idx("A", Expr::int(0)), Expr::int(999)),
            Stmt::AccBlock {
                // `A` exercises the present path; `M` the miss path (fresh
                // copyin, no copy-back) — an ignored clause would leave `M`
                // to the implicit rule, which copies it back destroyed.
                dir: b::data(vec![AccClause::Data(
                    ClauseKind::PresentOrCopyin,
                    vec![
                        DataRef::section("A", Expr::int(0), Expr::int(N)),
                        DataRef::section("M", Expr::int(0), Expr::int(N)),
                    ],
                )]),
                body: vec![b::parallel_region(
                    vec![b::copy_sec("B", Expr::int(N))],
                    vec![b::acc_loop(
                        vec![],
                        "i",
                        Expr::int(N),
                        vec![
                            b::set1(
                                "B",
                                Expr::var("i"),
                                Expr::add(
                                    Expr::idx("A", Expr::var("i")),
                                    Expr::idx("M", Expr::var("i")),
                                ),
                            ),
                            b::set1("M", Expr::var("i"), Expr::int(0)),
                        ],
                    )],
                )],
            },
        ],
    ));
    // Hit: the device still holds the original upload (A[0] == 0).
    body.push(check_array("B", N, |i| {
        Expr::add(i.clone(), Expr::mul(i, Expr::int(2)))
    }));
    // Miss path: M uploaded fresh, never copied back.
    body.push(check_array("M", N, |i| Expr::mul(i, Expr::int(2))));
    body.push(b::return_error_check());
    case(
        "data.present_or_copyin",
        "data.present_or_copyin",
        body,
        cross("force-if:0"),
        "pcopyin must not re-upload when the data is already present",
    )
}

fn pcopyout() -> TestCase {
    let mut body = preamble(&["B", "M"], N);
    body.push(init_array("B", N, |_| Expr::int(-5)));
    body.push(init_array("M", N, |_| Expr::int(-5)));
    body.push(b::data_region(
        vec![
            AccClause::If(Expr::int(1)),
            b::copyout_sec("B", Expr::int(N)),
        ],
        vec![
            Stmt::AccBlock {
                // `B` hits the outer mapping; `M` is the miss path — a
                // fresh copyout starts from uninitialized device memory, so
                // the half the kernel does not write must come back as
                // garbage (an ignored clause would leave the implicit rule
                // to upload the host values first).
                dir: b::data(vec![AccClause::Data(
                    ClauseKind::PresentOrCopyout,
                    vec![
                        DataRef::section("B", Expr::int(0), Expr::int(N)),
                        DataRef::section("M", Expr::int(0), Expr::int(N)),
                    ],
                )]),
                body: vec![b::parallel_region(
                    vec![],
                    vec![b::acc_loop(
                        vec![],
                        "i",
                        Expr::int(N),
                        vec![
                            b::set1("B", Expr::var("i"), Expr::int(7)),
                            b::if_then(
                                Expr::lt(Expr::var("i"), Expr::int(N / 2)),
                                vec![b::set1("M", Expr::var("i"), Expr::int(7))],
                            ),
                        ],
                    )],
                )],
            },
            // Host write after the inner region: the outer region's exit
            // download must overwrite it.
            Stmt::assign(LValue::idx("B", Expr::int(0)), Expr::int(1234)),
        ],
    ));
    body.push(check_array("B", N, |_| Expr::int(7)));
    // Written half came through; unwritten half is device garbage, not the
    // host's initial -5.
    body.push(b::for_upto(
        "i",
        Expr::int(N),
        vec![Stmt::If {
            cond: Expr::lt(Expr::var("i"), Expr::int(N / 2)),
            then_body: vec![b::if_then(
                Expr::ne(Expr::idx("M", Expr::var("i")), Expr::int(7)),
                vec![b::bump_error()],
            )],
            else_body: vec![b::if_then(
                Expr::eq(Expr::idx("M", Expr::var("i")), Expr::int(-5)),
                vec![b::bump_error()],
            )],
        }],
    ));
    body.push(b::return_error_check());
    case(
        "data.present_or_copyout",
        "data.present_or_copyout",
        body,
        cross("force-if:0"),
        "pcopyout defers the download to the owning (outermost) region",
    )
}

fn pcreate() -> TestCase {
    let mut body = preamble(&["B", "T", "T2"], N);
    body.push(init_array("B", N, |_| Expr::int(0)));
    body.push(init_array("T", N, |_| Expr::int(-5)));
    body.push(init_array("T2", N, |_| Expr::int(-5)));
    body.push(b::data_region(
        vec![
            AccClause::If(Expr::int(1)),
            b::create_clause("T", Some(Expr::int(N))),
        ],
        vec![
            Stmt::AccBlock {
                // `T` hits the outer mapping; `T2` is the miss path (fresh
                // device-only allocation). An ignored clause would leave
                // `T2` to the implicit rule, which copies it back.
                dir: b::data(vec![AccClause::Data(
                    ClauseKind::PresentOrCreate,
                    vec![
                        DataRef::section("T", Expr::int(0), Expr::int(N)),
                        DataRef::section("T2", Expr::int(0), Expr::int(N)),
                    ],
                )]),
                body: vec![b::parallel_region(
                    vec![],
                    vec![b::acc_loop(
                        vec![],
                        "i",
                        Expr::int(N),
                        vec![
                            b::set1("T", Expr::var("i"), Expr::add(Expr::var("i"), Expr::int(3))),
                            b::set1("T2", Expr::var("i"), Expr::int(1)),
                        ],
                    )],
                )],
            },
            // The device copy must survive the inner region's exit.
            b::parallel_region(
                vec![b::copy_sec("B", Expr::int(N))],
                vec![b::acc_loop(
                    vec![],
                    "i",
                    Expr::int(N),
                    vec![b::set1("B", Expr::var("i"), Expr::idx("T", Expr::var("i")))],
                )],
            ),
        ],
    ));
    body.push(check_array("B", N, |i| Expr::add(i, Expr::int(3))));
    body.push(check_array("T", N, |_| Expr::int(-5)));
    body.push(check_array("T2", N, |_| Expr::int(-5)));
    body.push(b::return_error_check());
    case(
        "data.present_or_create",
        "data.present_or_create",
        body,
        cross("force-if:0"),
        "pcreate keeps the outer region's allocation alive across the inner exit",
    )
}

/// `deviceptr` on data propagates the binding to nested compute regions.
fn deviceptr() -> TestCase {
    let n = N;
    let body = vec![
        b::decl_int("error", 0),
        b::decl_array("A", ScalarType::Float, n as usize),
        b::decl_array("B", ScalarType::Float, n as usize),
        Stmt::DeclScalar {
            name: "p".into(),
            ty: Type::Ptr(ScalarType::Float),
            init: Some(Expr::call(
                "acc_malloc",
                vec![Expr::mul(Expr::int(n), Expr::SizeOf(ScalarType::Float))],
            )),
        },
        init_array("A", n, |i| i),
        init_array("B", n, |_| Expr::int(0)),
        b::data_region(
            vec![
                AccClause::Deviceptr(vec!["p".into()]),
                b::copyin_sec("A", Expr::int(n)),
                b::copyout_sec("B", Expr::int(n)),
            ],
            vec![
                b::parallel_region(
                    vec![],
                    vec![b::acc_loop(
                        vec![],
                        "i",
                        Expr::int(n),
                        vec![b::set1(
                            "p",
                            Expr::var("i"),
                            Expr::add(Expr::idx("A", Expr::var("i")), Expr::int(4)),
                        )],
                    )],
                ),
                b::parallel_region(
                    vec![],
                    vec![b::acc_loop(
                        vec![],
                        "i",
                        Expr::int(n),
                        vec![b::set1("B", Expr::var("i"), Expr::idx("p", Expr::var("i")))],
                    )],
                ),
            ],
        ),
        Stmt::Call {
            name: "acc_free".into(),
            args: vec![Expr::var("p")],
        },
        check_array("B", n, |i| Expr::add(i, Expr::int(4))),
        b::return_error_check(),
    ];
    case(
        "data.deviceptr",
        "data.deviceptr",
        body,
        cross("remove-clause:data.deviceptr"),
        "deviceptr on data makes the pointer usable in every nested compute region",
    )
    .c_only()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_validation::harness::validate_case;

    #[test]
    fn all_data_cases_validate_against_reference() {
        for case in cases() {
            let problems = validate_case(&case);
            assert!(problems.is_empty(), "{}: {problems:?}", case.name);
        }
    }

    #[test]
    fn area_covers_thirteen_features() {
        assert_eq!(cases().len(), 13);
    }
}
