//! Golden snapshots of the generated program text.
//!
//! The template engine's output is a public contract — the paper's generated
//! tests are "complete and standalone C/Fortran code that could be compiled
//! by any OpenACC compiler". These snapshots pin the exact rendering of the
//! Fig. 2 test in both languages plus its cross variant, so accidental
//! code-generator format changes are caught immediately.

use acc_spec::Language;
use acc_testsuite::templates::fig2_loop;

const FIG2_C: &str = r#"/* test program: loop */
#include <openacc.h>
#include <math.h>
#include <stdlib.h>

int main(void) {
    int error = 0;
    int A[16];
    for (i = 0; i < 16; i++)
    {
        A[i] = 0;
    }
    #pragma acc parallel num_gangs(10) copy(A[0:16])
    {
        #pragma acc loop
        for (i = 0; i < 16; i++)
        {
            A[i] = A[i] + 1;
        }
    }
    for (i = 0; i < 16; i++)
    {
        if (A[i] != 1)
        {
            error += 1;
        }
    }
    return error == 0;
}
"#;

const FIG2_FORTRAN: &str = r#"! test program: loop
integer function main()
    implicit none
    integer :: A(0:15)
    integer :: error
    integer :: i
    error = 0
    do i = 0, 15
        A(i) = 0
    end do
    !$acc parallel num_gangs(10) copy(A(0:15))
        !$acc loop
        do i = 0, 15
            A(i) = A(i) + 1
        end do
    !$acc end parallel
    do i = 0, 15
        if (A(i) /= 1) then
            error = error + 1
        end if
    end do
    main = error == 0
    return
end function main
"#;

#[test]
fn fig2_c_rendering_is_pinned() {
    assert_eq!(fig2_loop().source_for(Language::C), FIG2_C);
}

#[test]
fn fig2_fortran_rendering_is_pinned() {
    assert_eq!(fig2_loop().source_for(Language::Fortran), FIG2_FORTRAN);
}

#[test]
fn fig2_cross_differs_only_by_the_loop_directive() {
    let case = fig2_loop();
    let functional = case.source_for(Language::C);
    let cross = case.cross_source_for(Language::C).unwrap();
    // The cross variant is the functional text minus the `#pragma acc loop`
    // line, with the program renamed.
    let reconstructed: String = functional
        .lines()
        .filter(|l| l.trim() != "#pragma acc loop")
        .map(|l| format!("{l}\n"))
        .collect::<String>()
        .replace("test program: loop", "test program: loop_cross");
    assert_eq!(cross, reconstructed);
}

#[test]
fn golden_text_reparses_through_both_frontends() {
    // The pinned text is real input: both front-ends must accept it.
    let p = acc_frontend::parse(FIG2_C, Language::C).unwrap();
    assert_eq!(p.directives().len(), 2);
    let q = acc_frontend::parse(FIG2_FORTRAN, Language::Fortran).unwrap();
    assert_eq!(q.directives().len(), 2);
}
