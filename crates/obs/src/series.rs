//! Time-bucketed pass-rate series.
//!
//! The aggregator folds epoch-stamped outcome records (from the result
//! store or any other source) into per-bucket counts keyed by a grouping
//! dimension — vendor profile, feature scope, tenant, or language. The
//! fold is pure integer accumulation into `BTreeMap`s, so the resulting
//! series is deterministic: independent of insertion order, worker
//! count, store compaction, or restarts.
//!
//! Bucketing is aligned to the absolute epoch (`epoch - epoch % width`),
//! *not* to the query's `since` value — two queries with different
//! windows therefore agree about every bucket they both cover. Records
//! stamped with epoch 0 (rows written before epochs existed) are folded
//! into the first bucket of the queried window rather than dropped, so
//! pre-epoch history remains visible.

use crate::hist::LatencyHist;
use std::collections::BTreeMap;

/// The grouping dimension for a history query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupBy {
    /// Group by vendor profile (e.g. `caps`, `pgi`, `cray`, `reference`).
    Profile,
    /// Group by feature scope prefix (e.g. `data.copy`, `loop`).
    Feature,
    /// Group by submitting tenant.
    Tenant,
    /// Group by source language (`c` / `fortran`).
    Language,
}

impl GroupBy {
    /// Parse the `by=` query value. `None` on unknown names.
    pub fn parse(s: &str) -> Option<GroupBy> {
        match s {
            "profile" => Some(GroupBy::Profile),
            "feature" => Some(GroupBy::Feature),
            "tenant" => Some(GroupBy::Tenant),
            "lang" | "language" => Some(GroupBy::Language),
            _ => None,
        }
    }

    /// The canonical query-string name.
    pub fn as_str(&self) -> &'static str {
        match self {
            GroupBy::Profile => "profile",
            GroupBy::Feature => "feature",
            GroupBy::Tenant => "tenant",
            GroupBy::Language => "lang",
        }
    }
}

/// Outcome counts for one (bucket, key) cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeriesCounts {
    /// Cases that passed outright.
    pub pass: u64,
    /// Cases that passed only after retry.
    pub flaky: u64,
    /// Cases that failed.
    pub fail: u64,
    /// Cases that were skipped.
    pub skip: u64,
}

impl SeriesCounts {
    /// Fold `other` into `self` (plain addition — order-free).
    pub fn merge(&mut self, other: &SeriesCounts) {
        self.pass += other.pass;
        self.flaky += other.flaky;
        self.fail += other.fail;
        self.skip += other.skip;
    }

    /// Cases that count toward the pass rate (skips excluded).
    pub fn counted(&self) -> u64 {
        self.pass + self.flaky + self.fail
    }

    /// Pass rate in percent; flaky counts as a pass, matching report
    /// semantics. 100.0 when nothing counted.
    pub fn pass_rate(&self) -> f64 {
        let counted = self.counted();
        if counted == 0 {
            return 100.0;
        }
        (self.pass + self.flaky) as f64 * 100.0 / counted as f64
    }
}

/// The bucket (start epoch) a record falls into for a window starting at
/// `since` with buckets `width` seconds wide. Buckets are aligned to the
/// absolute epoch; epoch-0 records land in the window's first bucket.
pub fn bucket_of(epoch: u64, since: u64, width: u64) -> u64 {
    let width = width.max(1);
    let effective = if epoch == 0 { since } else { epoch };
    effective - effective % width
}

/// One rendered row of a history series.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesRow {
    /// Bucket start epoch (seconds).
    pub bucket: u64,
    /// Group key (profile name, feature scope, tenant, or language).
    pub key: String,
    /// Outcome counts in this cell.
    pub counts: SeriesCounts,
    /// Merged latency histogram for this cell, when latency was recorded.
    pub latency: LatencyHist,
}

/// Accumulates epoch-stamped outcomes into a deterministic bucketed
/// series. Keys are `(bucket, group-key)`; both maps are `BTreeMap`s, so
/// [`SeriesAgg::rows`] is sorted and insertion-order-free.
#[derive(Debug, Clone, Default)]
pub struct SeriesAgg {
    since: u64,
    width: u64,
    cells: BTreeMap<(u64, String), (SeriesCounts, LatencyHist)>,
}

impl SeriesAgg {
    /// A new aggregator for a window starting at `since` with buckets
    /// `width` seconds wide (`width` is clamped to ≥ 1).
    pub fn new(since: u64, width: u64) -> SeriesAgg {
        SeriesAgg {
            since,
            width: width.max(1),
            cells: BTreeMap::new(),
        }
    }

    /// Fold one outcome record into the series.
    pub fn add(&mut self, epoch: u64, key: &str, counts: &SeriesCounts) {
        let bucket = bucket_of(epoch, self.since, self.width);
        self.cells
            .entry((bucket, key.to_string()))
            .or_default()
            .0
            .merge(counts);
    }

    /// Fold one latency histogram into the record's cell.
    pub fn add_latency(&mut self, epoch: u64, key: &str, hist: &LatencyHist) {
        if hist.is_empty() {
            return;
        }
        let bucket = bucket_of(epoch, self.since, self.width);
        self.cells
            .entry((bucket, key.to_string()))
            .or_default()
            .1
            .merge(hist);
    }

    /// The series, sorted by (bucket, key).
    pub fn rows(&self) -> Vec<SeriesRow> {
        self.cells
            .iter()
            .map(|((bucket, key), (counts, latency))| SeriesRow {
                bucket: *bucket,
                key: key.clone(),
                counts: *counts,
                latency: latency.clone(),
            })
            .collect()
    }

    /// The bucket width in effect (after clamping).
    pub fn width(&self) -> u64 {
        self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_by_parses_canonical_names() {
        for (name, by) in [
            ("profile", GroupBy::Profile),
            ("feature", GroupBy::Feature),
            ("tenant", GroupBy::Tenant),
            ("lang", GroupBy::Language),
            ("language", GroupBy::Language),
        ] {
            assert_eq!(GroupBy::parse(name), Some(by));
        }
        assert_eq!(GroupBy::parse("bogus"), None);
        assert_eq!(GroupBy::parse(GroupBy::Language.as_str()), Some(GroupBy::Language));
    }

    #[test]
    fn buckets_align_to_absolute_epoch() {
        // Alignment must not depend on `since`: the same epoch falls in
        // the same bucket for any window that covers it.
        assert_eq!(bucket_of(7205, 0, 3600), 7200);
        assert_eq!(bucket_of(7205, 7000, 3600), 7200);
        assert_eq!(bucket_of(7200, 0, 3600), 7200); // exact edge: own bucket
        assert_eq!(bucket_of(7199, 0, 3600), 3600); // one below the edge
        assert_eq!(bucket_of(5, 0, 0), 5); // width clamped to 1
    }

    #[test]
    fn epoch_zero_lands_in_first_bucket() {
        assert_eq!(bucket_of(0, 7250, 3600), 7200);
        let mut agg = SeriesAgg::new(7250, 3600);
        agg.add(
            0,
            "caps",
            &SeriesCounts {
                pass: 3,
                ..Default::default()
            },
        );
        let rows = agg.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].bucket, 7200);
        assert_eq!(rows[0].counts.pass, 3);
    }

    #[test]
    fn rows_are_sorted_and_order_free() {
        let records = [
            (9000u64, "pgi", SeriesCounts { pass: 1, ..Default::default() }),
            (100, "caps", SeriesCounts { fail: 2, ..Default::default() }),
            (9100, "caps", SeriesCounts { pass: 4, skip: 1, ..Default::default() }),
            (150, "caps", SeriesCounts { pass: 5, ..Default::default() }),
        ];
        let mut fwd = SeriesAgg::new(0, 3600);
        for (e, k, c) in &records {
            fwd.add(*e, k, c);
        }
        let mut rev = SeriesAgg::new(0, 3600);
        for (e, k, c) in records.iter().rev() {
            rev.add(*e, k, c);
        }
        assert_eq!(fwd.rows(), rev.rows());
        let rows = fwd.rows();
        assert_eq!(rows.len(), 3);
        // (0,"caps") merged two records; then (7200,"caps"), (7200,"pgi").
        assert_eq!(rows[0].counts, SeriesCounts { pass: 5, fail: 2, ..Default::default() });
        assert_eq!((rows[1].bucket, rows[1].key.as_str()), (7200, "caps"));
        assert_eq!((rows[2].bucket, rows[2].key.as_str()), (7200, "pgi"));
    }

    #[test]
    fn pass_rate_counts_flaky_as_pass_and_excludes_skips() {
        let c = SeriesCounts { pass: 7, flaky: 1, fail: 2, skip: 90 };
        assert_eq!(c.counted(), 10);
        assert!((c.pass_rate() - 80.0).abs() < 1e-9);
        assert_eq!(SeriesCounts::default().pass_rate(), 100.0);
    }

    #[test]
    fn latency_folds_per_cell() {
        let mut agg = SeriesAgg::new(0, 3600);
        let mut h = LatencyHist::new();
        h.record(500);
        agg.add(10, "caps", &SeriesCounts { pass: 1, ..Default::default() });
        agg.add_latency(10, "caps", &h);
        agg.add_latency(20, "caps", &h);
        agg.add_latency(20, "pgi", &LatencyHist::new()); // empty: no cell
        let rows = agg.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].latency.count(), 2);
    }
}
