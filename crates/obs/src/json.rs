//! Minimal hand-rolled JSON parser.
//!
//! The build container has no registry access, so there is no serde; this
//! covers the subset the telemetry sinks need — round-tripping our own
//! JSONL traces and validating Chrome trace-event files. Standard JSON
//! (RFC 8259) minus some escape exotica: `\uXXXX` surrogate pairs are
//! decoded pairwise, lone surrogates are replaced with U+FFFD.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always held as f64; the traces only use integers that
    /// fit exactly).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, preserving insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer value, if this is a number representable as i64.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 9.0e18 => Some(*n as i64),
            _ => None,
        }
    }

    /// Array contents, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing whitespace is allowed;
/// trailing garbage is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err("unexpected end of input".into());
    };
    match c {
        b'{' => parse_obj(b, pos),
        b'[' => parse_arr(b, pos),
        b'"' => parse_str(b, pos).map(Json::Str),
        b't' => parse_lit(b, pos, "true", Json::Bool(true)),
        b'f' => parse_lit(b, pos, "false", Json::Bool(false)),
        b'n' => parse_lit(b, pos, "null", Json::Null),
        b'-' | b'0'..=b'9' => parse_num(b, pos),
        _ => Err(format!("unexpected byte {:?} at {}", c as char, *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return Err("unterminated string".into());
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = b.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hi = parse_hex4(b, pos)?;
                        let cp = if (0xD800..0xDC00).contains(&hi) {
                            // High surrogate: expect \uXXXX low surrogate.
                            if b.get(*pos) == Some(&b'\\') && b.get(*pos + 1) == Some(&b'u') {
                                *pos += 2;
                                let lo = parse_hex4(b, pos)?;
                                if (0xDC00..0xE000).contains(&lo) {
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    0xFFFD
                                }
                            } else {
                                0xFFFD
                            }
                        } else if (0xDC00..0xE000).contains(&hi) {
                            0xFFFD
                        } else {
                            hi
                        };
                        out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(format!("bad escape \\{} at {}", esc as char, *pos)),
                }
            }
            _ if c < 0x80 => out.push(c as char),
            _ => {
                // Multibyte UTF-8: back up and validate just this one
                // character (≤ 4 bytes) — validating the whole remaining
                // input here would make string parsing quadratic.
                *pos -= 1;
                let len = match c {
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    0xF0..=0xF7 => 4,
                    _ => return Err(format!("invalid utf-8 at byte {}", *pos)),
                };
                let end = (*pos + len).min(b.len());
                let s = std::str::from_utf8(&b[*pos..end])
                    .map_err(|_| format!("invalid utf-8 at byte {}", *pos))?;
                let ch = s.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_hex4(b: &[u8], pos: &mut usize) -> Result<u32, String> {
    let end = *pos + 4;
    if end > b.len() {
        return Err("truncated \\u escape".into());
    }
    let s = std::str::from_utf8(&b[*pos..end]).map_err(|_| "bad \\u escape")?;
    let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape")?;
    *pos = end;
    Ok(v)
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// JSON-escape a string into `out` (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-42").unwrap(), Json::Num(-42.0));
        assert_eq!(parse("2.5e3").unwrap(), Json::Num(2500.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}], "c": null}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Null));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_i64(), Some(1));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn escape_roundtrips() {
        let nasty = "line1\nline2\t\"quoted\" \\slash\u{0001} καλημέρα";
        let mut doc = String::from("\"");
        escape_into(&mut doc, nasty);
        doc.push('"');
        assert_eq!(parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap().as_str(),
            Some("😀")
        );
        assert_eq!(parse("\"\\ud83dX\"").unwrap().as_str(), Some("\u{FFFD}X"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
