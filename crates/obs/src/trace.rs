//! Deterministic JSONL trace sink: one event per line, schedule-independent.
//!
//! The renderer filters out timing-class events and omits every
//! schedule/clock-dependent field (`worker`, `start_us`, `dur_us`), so the
//! rendered text is a pure function of the merged logical event stream —
//! identical for `--jobs 1` and `--jobs N` on the same seed and suite.
//! Field order is fixed so byte-level comparison works.

use crate::json::{escape_into, parse, Json};
use crate::{AttrVal, Event, Phase};
use std::fmt::Write as _;

/// Render the deterministic JSONL form of a merged snapshot. Timing-class
/// events are excluded; attribute order is preserved.
pub fn render_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events.iter().filter(|e| !e.timing) {
        let _ = write!(
            out,
            "{{\"run\":{},\"part\":{},\"job\":{},\"seq\":{},\"ph\":\"{}\",\"kind\":\"",
            e.run,
            e.part,
            e.job,
            e.seq,
            e.ph.code()
        );
        escape_into(&mut out, &e.kind);
        out.push_str("\",\"name\":\"");
        escape_into(&mut out, &e.name);
        let _ = write!(out, "\",\"depth\":{}", e.depth);
        if !e.attrs.is_empty() {
            out.push_str(",\"attrs\":{");
            for (idx, (k, v)) in e.attrs.iter().enumerate() {
                if idx > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_into(&mut out, k);
                out.push_str("\":");
                match v {
                    AttrVal::Int(n) => {
                        let _ = write!(out, "{n}");
                    }
                    AttrVal::Str(s) => {
                        out.push('"');
                        escape_into(&mut out, s);
                        out.push('"');
                    }
                }
            }
            out.push('}');
        }
        out.push_str("}\n");
    }
    out
}

/// Parse a JSONL trace back into events. The schedule-dependent fields
/// (`worker`, `start_us`, `dur_us`, `timing`) come back zeroed/false —
/// the JSONL form never contained them. Attribute keys are leaked into
/// `&'static str` (bounded: traces have a small closed key vocabulary).
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        events.push(event_from_json(&v).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(events)
}

fn event_from_json(v: &Json) -> Result<Event, String> {
    let int = |key: &str| -> Result<i64, String> {
        v.get(key)
            .and_then(Json::as_i64)
            .ok_or_else(|| format!("missing integer field {key:?}"))
    };
    let st = |key: &str| -> Result<String, String> {
        v.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing string field {key:?}"))
    };
    let ph_s = st("ph")?;
    let ph = ph_s
        .chars()
        .next()
        .and_then(Phase::from_code)
        .ok_or_else(|| format!("bad phase {ph_s:?}"))?;
    let mut attrs = Vec::new();
    if let Some(Json::Obj(fields)) = v.get("attrs") {
        for (k, av) in fields {
            let key: &'static str = Box::leak(k.clone().into_boxed_str());
            let val = match av {
                Json::Num(_) => AttrVal::Int(
                    av.as_i64()
                        .ok_or_else(|| format!("non-integer attr {k:?}"))?,
                ),
                Json::Str(s) => AttrVal::Str(s.clone()),
                _ => return Err(format!("unsupported attr value for {k:?}")),
            };
            attrs.push((key, val));
        }
    }
    Ok(Event {
        run: int("run")? as u32,
        part: int("part")? as u8,
        job: int("job")? as u32,
        seq: int("seq")? as u32,
        worker: 0,
        ph,
        kind: st("kind")?,
        name: st("name")?,
        depth: int("depth")? as u16,
        timing: false,
        start_us: 0,
        dur_us: 0,
        attrs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{i, s, Recorder, PART_JOB};

    fn sample() -> Vec<Event> {
        let r = Recorder::enabled();
        let run = r.begin_run();
        {
            let _g = crate::scope(&r, run, PART_JOB, 0, 5);
            crate::begin("case", "acc_parallel\"1\"", vec![s("lang", "C")]);
            crate::begin_timing("lower", "bytecode", vec![]);
            crate::end(vec![]);
            crate::instant("verify", "wrong\nresult", vec![i("attempt", 2)]);
            crate::end(vec![s("status", "pass")]);
        }
        r.snapshot()
    }

    #[test]
    fn timing_events_are_excluded() {
        let jsonl = render_jsonl(&sample());
        assert!(!jsonl.contains("lower"));
        assert!(jsonl.contains("acc_parallel"));
        assert_eq!(jsonl.lines().count(), 3); // B case, I verify, E case
    }

    #[test]
    fn no_schedule_dependent_fields_leak() {
        let jsonl = render_jsonl(&sample());
        assert!(!jsonl.contains("worker"));
        assert!(!jsonl.contains("start_us"));
        assert!(!jsonl.contains("dur_us"));
    }

    #[test]
    fn roundtrip_preserves_logical_content() {
        let events = sample();
        let jsonl = render_jsonl(&events);
        let parsed = parse_jsonl(&jsonl).unwrap();
        let logical: Vec<&Event> = events.iter().filter(|e| !e.timing).collect();
        assert_eq!(parsed.len(), logical.len());
        for (p, l) in parsed.iter().zip(&logical) {
            assert_eq!((p.run, p.part, p.job, p.seq), (l.run, l.part, l.job, l.seq));
            assert_eq!(p.ph, l.ph);
            assert_eq!(p.kind, l.kind);
            assert_eq!(p.name, l.name);
            assert_eq!(p.depth, l.depth);
            assert_eq!(p.attrs, l.attrs);
        }
        // Re-render of the parse is byte-identical (stable formatting).
        assert_eq!(render_jsonl(&parsed), jsonl);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_jsonl("{\"run\":0}").is_err());
        assert!(parse_jsonl("not json").is_err());
        assert!(parse_jsonl("").unwrap().is_empty());
    }
}
