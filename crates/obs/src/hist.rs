//! Deterministic log-bucketed latency histograms.
//!
//! The histogram is the unit of latency accounting everywhere in the
//! stack: the executor records per-case wall latency into one, the
//! metrics sink folds span durations into one per kind, and the result
//! store persists one per submission. Three properties carry all of that:
//!
//! 1. **Log-linear buckets, integer math.** Values (microseconds) land in
//!    buckets whose width doubles every octave, with [`SUB_PER_OCTAVE`]
//!    sub-buckets per octave (relative error ≤ 1/16 above the linear
//!    range). Bucket selection is pure bit arithmetic — no floats, no
//!    platform drift.
//! 2. **Merge is a commutative, associative bucket-count add.** Merging
//!    per-worker histograms therefore yields the *same* histogram in any
//!    order — the merged encoding is byte-identical across `--jobs 1` and
//!    `--jobs N` partitionings of the same samples.
//! 3. **Canonical encoding.** [`LatencyHist::encode`] walks buckets in
//!    index order, so equal histograms encode to equal bytes; the store
//!    round-trips it through a `J1` frame and compaction re-encodes the
//!    merged histogram without changing a byte.
//!
//! Quantiles ([`LatencyHist::quantile_us`]) are rank-based over the
//! cumulative bucket counts and return the bucket midpoint — an estimate
//! whose error is bounded by the bucket width, computed identically on
//! every platform for the same histogram.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// log2 of the sub-bucket count per octave.
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave; also the size of the exact linear range.
pub const SUB_PER_OCTAVE: u64 = 1 << SUB_BITS;

/// A mergeable log-bucketed histogram of microsecond latencies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHist {
    /// bucket index -> sample count. Sparse; sorted iteration is what
    /// makes the encoding canonical.
    buckets: BTreeMap<u16, u64>,
    count: u64,
    sum_us: u64,
}

/// The bucket index a value lands in.
fn index_of(v: u64) -> u16 {
    if v < SUB_PER_OCTAVE {
        return v as u16;
    }
    let msb = 63 - v.leading_zeros();
    let octave = msb - SUB_BITS;
    let sub = (v >> octave) - SUB_PER_OCTAVE;
    (SUB_PER_OCTAVE as u16) + (octave as u16) * (SUB_PER_OCTAVE as u16) + sub as u16
}

/// Inclusive lower bound of bucket `i` (saturating above `u64::MAX`).
fn lower_bound(i: u16) -> u64 {
    let i = u64::from(i);
    if i < SUB_PER_OCTAVE {
        return i;
    }
    let octave = ((i - SUB_PER_OCTAVE) / SUB_PER_OCTAVE) as u32;
    let sub = (i - SUB_PER_OCTAVE) % SUB_PER_OCTAVE;
    let base = SUB_PER_OCTAVE + sub;
    if base.leading_zeros() < octave {
        return u64::MAX;
    }
    base << octave
}

/// The canonical representative of bucket `i` (midpoint, rounded down).
fn midpoint(i: u16) -> u64 {
    let lo = lower_bound(i);
    if u64::from(i) < SUB_PER_OCTAVE {
        return lo; // exact buckets
    }
    let octave = (u64::from(i) - SUB_PER_OCTAVE) / SUB_PER_OCTAVE;
    lo + (1u64 << octave) / 2
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> LatencyHist {
        LatencyHist::default()
    }

    /// Record one sample (microseconds).
    pub fn record(&mut self, us: u64) {
        *self.buckets.entry(index_of(us)).or_insert(0) += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
    }

    /// Fold `other` into `self`. Bucket-count addition: commutative and
    /// associative, so any merge order over the same samples produces the
    /// same histogram (and therefore the same encoding).
    pub fn merge(&mut self, other: &LatencyHist) {
        for (&i, &c) in &other.buckets {
            *self.buckets.entry(i).or_insert(0) += c;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples, microseconds (saturating).
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `q`-quantile (0 < q ≤ 1) as a bucket-midpoint estimate, in
    /// microseconds. Rank-based over cumulative counts: deterministic for
    /// a given histogram regardless of how it was assembled. 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (&i, &c) in &self.buckets {
            cum += c;
            if cum >= rank {
                return midpoint(i);
            }
        }
        unreachable!("cumulative count covers every rank")
    }

    /// Canonical text encoding: `h1;<count>;<sum_us>;i:c,i:c,…` with
    /// buckets in index order. Contains only digits and `;:,` — safe to
    /// embed in tab-separated `J1` payloads unescaped.
    pub fn encode(&self) -> String {
        let mut out = format!("h1;{};{};", self.count, self.sum_us);
        for (n, (&i, &c)) in self.buckets.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            out.push_str(&format!("{i}:{c}"));
        }
        out
    }

    /// Parse [`LatencyHist::encode`]'s output. `None` on malformed or
    /// inconsistent input (bucket counts must sum to the header count).
    pub fn decode(text: &str) -> Option<LatencyHist> {
        let rest = text.strip_prefix("h1;")?;
        let (count_s, rest) = rest.split_once(';')?;
        let (sum_s, bucket_s) = rest.split_once(';')?;
        let count: u64 = count_s.parse().ok()?;
        let sum_us: u64 = sum_s.parse().ok()?;
        let mut buckets = BTreeMap::new();
        if !bucket_s.is_empty() {
            for pair in bucket_s.split(',') {
                let (i, c) = pair.split_once(':')?;
                let i: u16 = i.parse().ok()?;
                let c: u64 = c.parse().ok()?;
                if i > index_of(u64::MAX) || c == 0 || buckets.insert(i, c).is_some() {
                    return None; // out-of-range index, zero count, or duplicate
                }
            }
        }
        if buckets.values().sum::<u64>() != count {
            return None;
        }
        Some(LatencyHist {
            buckets,
            count,
            sum_us,
        })
    }
}

/// A thread-safe latency collector: the executor's workers record into it
/// concurrently and the driver snapshots the merged histogram afterwards.
/// Because the histogram merge law makes bucket addition order-free, the
/// snapshot is identical across worker counts for the same sample set.
#[derive(Clone, Default)]
pub struct LatencyCollector(Arc<Mutex<LatencyHist>>);

impl LatencyCollector {
    /// A fresh, empty collector.
    pub fn new() -> LatencyCollector {
        LatencyCollector::default()
    }

    /// Record one sample (microseconds).
    pub fn record_us(&self, us: u64) {
        self.0.lock().expect("latency collector poisoned").record(us);
    }

    /// The merged histogram so far.
    pub fn snapshot(&self) -> LatencyHist {
        self.0.lock().expect("latency collector poisoned").clone()
    }
}

impl std::fmt::Debug for LatencyCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyCollector")
            .field("count", &self.snapshot().count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_ordered() {
        // Every value maps into a bucket whose bounds contain it, and
        // bucket indices are monotone in the value.
        let mut prev = 0u16;
        for v in (0..4096u64).chain([1 << 20, u64::MAX / 2, u64::MAX]) {
            let i = index_of(v);
            assert!(lower_bound(i) <= v, "v={v} i={i}");
            if i as u64 >= SUB_PER_OCTAVE && v < u64::MAX {
                assert!(lower_bound(i + 1) > v, "v={v} i={i}");
            }
            assert!(i >= prev || v < 4096, "indices monotone");
            prev = i;
        }
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB_PER_OCTAVE {
            let mut h = LatencyHist::new();
            h.record(v);
            assert_eq!(h.quantile_us(0.5), v);
        }
    }

    #[test]
    fn quantiles_are_order_of_magnitude_right() {
        let mut h = LatencyHist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile_us(0.5);
        let p99 = h.quantile_us(0.99);
        assert!((450..=560).contains(&p50), "p50={p50}");
        assert!((930..=1060).contains(&p99), "p99={p99}");
        assert!(h.quantile_us(1.0) >= p99);
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum_us(), 500_500);
    }

    #[test]
    fn merge_is_order_free_and_byte_identical() {
        // Partition one sample set three different ways; every merge order
        // must produce the same canonical encoding.
        let samples: Vec<u64> = (0..500u64).map(|i| (i * 7919) % 100_000).collect();
        let mut whole = LatencyHist::new();
        for &s in &samples {
            whole.record(s);
        }
        for parts in [2usize, 3, 7] {
            let mut shards = vec![LatencyHist::new(); parts];
            for (i, &s) in samples.iter().enumerate() {
                shards[i % parts].record(s);
            }
            // Forward merge…
            let mut fwd = LatencyHist::new();
            for s in &shards {
                fwd.merge(s);
            }
            // …and reverse merge.
            let mut rev = LatencyHist::new();
            for s in shards.iter().rev() {
                rev.merge(s);
            }
            assert_eq!(fwd, whole, "{parts} shards");
            assert_eq!(fwd.encode(), whole.encode(), "{parts} shards");
            assert_eq!(rev.encode(), whole.encode(), "{parts} shards reversed");
        }
    }

    #[test]
    fn encode_round_trips() {
        let mut h = LatencyHist::new();
        for v in [0, 1, 7, 8, 100, 5_000, 1 << 30] {
            h.record(v);
        }
        let text = h.encode();
        assert_eq!(LatencyHist::decode(&text), Some(h.clone()));
        // Empty histogram too.
        let empty = LatencyHist::new();
        assert_eq!(LatencyHist::decode(&empty.encode()), Some(empty));
        // Encoding stays inside the J1-safe alphabet.
        assert!(text
            .chars()
            .all(|c| c.is_ascii_digit() || matches!(c, 'h' | ';' | ':' | ',')));
    }

    #[test]
    fn decode_rejects_malformed_input() {
        for bad in [
            "",
            "h2;0;0;",
            "h1;1;0;",          // count mismatch (no buckets)
            "h1;2;0;3:1",       // count mismatch
            "h1;1;0;3:0",       // zero-count bucket
            "h1;2;0;3:1,3:1",   // duplicate bucket
            "h1;1;0;x:1",
            "h1;1;0;65535:1", // bucket index beyond any representable value
            "h1;;0;",
        ] {
            assert!(LatencyHist::decode(bad).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn collector_merges_across_threads() {
        let c = LatencyCollector::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..100u64 {
                        c.record_us(t * 1000 + i);
                    }
                });
            }
        });
        let h = c.snapshot();
        assert_eq!(h.count(), 400);
    }
}
