//! Prometheus-style text metrics and the human summary table.
//!
//! Metrics aggregate the *full* snapshot — timing-class events included,
//! since durations and cache attribution are exactly what a metrics
//! snapshot is for. (Only the JSONL trace carries the determinism
//! guarantee.) Series are emitted in sorted label order so two snapshots
//! of the same run diff cleanly.

use crate::hist::LatencyHist;
use crate::{Event, Phase};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Quantiles rendered for every latency summary.
const QUANTILES: &[(&str, f64)] = &[("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)];

/// Duration histogram bucket upper bounds, microseconds.
const BUCKETS_US: &[u64] = &[100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// Compile-cache counters, filled by the caller from the compiler's
/// `CacheStats` — the cache's own atomics stay the single source of truth
/// for hit/miss accounting; this sink only renders them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Front-end (parse + sema) cache hits.
    pub frontend_hits: u64,
    /// Front-end cache misses.
    pub frontend_misses: u64,
    /// Executable-level cache hits.
    pub exec_hits: u64,
    /// Executable-level cache misses.
    pub exec_misses: u64,
}

impl CacheCounters {
    /// Overall hit rate across both levels, 0.0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.frontend_hits + self.exec_hits;
        let total = hits + self.frontend_misses + self.exec_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// Campaign-server gauges and counters, filled by the server from its own
/// atomics (which stay the source of truth — this sink only renders them,
/// mirroring the [`CacheCounters`] split).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Submissions currently queued (gauge).
    pub queue_depth: u64,
    /// Submissions admitted into the queue since start.
    pub admitted_total: u64,
    /// Submissions shed with 429 because the queue was full.
    pub shed_total: u64,
    /// Submissions that ran to completion with a report.
    pub completed_total: u64,
    /// Submissions cancelled before or during execution (deadline expiry,
    /// drain).
    pub cancelled_total: u64,
    /// Submissions degraded to all-Skipped by an open circuit breaker.
    pub degraded_total: u64,
    /// Completed submissions served by sharing an identical in-flight
    /// submission's execution (a subset of `completed_total`).
    pub shared_total: u64,
    /// Vendor circuit breakers currently open (gauge).
    pub breaker_open: u64,
    /// Closed→open breaker transitions since start.
    pub breaker_trips_total: u64,
}

/// Render the campaign server's Prometheus series. Kept separate from
/// [`render_prometheus`] so existing one-shot callers don't change; the
/// server concatenates both.
pub fn render_server_metrics(c: &ServerCounters) -> String {
    let mut out = String::new();
    out.push_str("# HELP accvv_server_queue_depth Submissions currently queued.\n");
    out.push_str("# TYPE accvv_server_queue_depth gauge\n");
    let _ = writeln!(out, "accvv_server_queue_depth {}", c.queue_depth);
    out.push_str("# HELP accvv_server_submissions_total Submission admissions by outcome.\n");
    out.push_str("# TYPE accvv_server_submissions_total counter\n");
    for (outcome, v) in [
        ("admitted", c.admitted_total),
        ("shed", c.shed_total),
        ("completed", c.completed_total),
        ("cancelled", c.cancelled_total),
        ("degraded", c.degraded_total),
        ("shared", c.shared_total),
    ] {
        let _ = writeln!(
            out,
            "accvv_server_submissions_total{{outcome=\"{outcome}\"}} {v}"
        );
    }
    out.push_str("# HELP accvv_server_breaker_open Vendor circuit breakers currently open.\n");
    out.push_str("# TYPE accvv_server_breaker_open gauge\n");
    let _ = writeln!(out, "accvv_server_breaker_open {}", c.breaker_open);
    out.push_str("# HELP accvv_server_breaker_trips_total Closed-to-open breaker transitions.\n");
    out.push_str("# TYPE accvv_server_breaker_trips_total counter\n");
    let _ = writeln!(out, "accvv_server_breaker_trips_total {}", c.breaker_trips_total);
    out
}

/// Render per-profile circuit-breaker series: one enum-style gauge row per
/// (profile, state) — exactly one is 1 — plus a per-profile trip counter.
/// Input rows are `(profile, state-label, trips)` with state labels
/// `closed` / `open` / `half-open`.
pub fn render_breakers(breakers: &[(String, String, u64)]) -> String {
    let mut out = String::new();
    if breakers.is_empty() {
        return out;
    }
    out.push_str(
        "# HELP accvv_server_breaker_state Per-profile breaker state (1 on the active state).\n",
    );
    out.push_str("# TYPE accvv_server_breaker_state gauge\n");
    for (profile, state, _) in breakers {
        for candidate in ["closed", "open", "half-open"] {
            let v = u64::from(state == candidate);
            let _ = writeln!(
                out,
                "accvv_server_breaker_state{{profile=\"{profile}\",state=\"{candidate}\"}} {v}"
            );
        }
    }
    out.push_str(
        "# HELP accvv_server_breaker_profile_trips_total Closed-to-open transitions per profile.\n",
    );
    out.push_str("# TYPE accvv_server_breaker_profile_trips_total counter\n");
    for (profile, _, trips) in breakers {
        let _ = writeln!(
            out,
            "accvv_server_breaker_profile_trips_total{{profile=\"{profile}\"}} {trips}"
        );
    }
    out
}

/// Render per-endpoint HTTP request-latency summaries from the server's
/// normalized-path histograms.
pub fn render_http_latency(paths: &BTreeMap<String, LatencyHist>) -> String {
    let mut out = String::new();
    if paths.is_empty() {
        return out;
    }
    out.push_str(
        "# HELP accvv_http_request_duration_us HTTP request duration by endpoint, \
         microseconds (log-bucketed estimate).\n",
    );
    out.push_str("# TYPE accvv_http_request_duration_us summary\n");
    for (path, hist) in paths {
        for (label, q) in QUANTILES {
            let _ = writeln!(
                out,
                "accvv_http_request_duration_us{{path=\"{path}\",quantile=\"{label}\"}} {}",
                hist.quantile_us(*q)
            );
        }
        let _ = writeln!(
            out,
            "accvv_http_request_duration_us_sum{{path=\"{path}\"}} {}",
            hist.sum_us()
        );
        let _ = writeln!(
            out,
            "accvv_http_request_duration_us_count{{path=\"{path}\"}} {}",
            hist.count()
        );
    }
    out
}

#[derive(Default)]
struct Agg {
    /// kind -> (bucket counts, sum_us, count) over span End durations.
    durations: BTreeMap<String, (Vec<u64>, u64, u64)>,
    /// kind -> log-bucketed histogram of the same durations, for quantile
    /// estimation (compile vs exec vs verify phase attribution).
    hists: BTreeMap<String, LatencyHist>,
    /// status label -> count, from `case` span End `status` attrs.
    case_status: BTreeMap<String, u64>,
    /// counter name -> summed value, from `ctr` instants.
    counters: BTreeMap<String, i64>,
    /// kind -> count of non-counter instants (retry, fault, watchdog...).
    instants: BTreeMap<String, u64>,
}

fn aggregate(events: &[Event]) -> Agg {
    let mut agg = Agg::default();
    for e in events {
        match e.ph {
            Phase::End => {
                let entry = agg
                    .durations
                    .entry(e.kind.clone())
                    .or_insert_with(|| (vec![0; BUCKETS_US.len() + 1], 0, 0));
                let slot = BUCKETS_US
                    .iter()
                    .position(|&b| e.dur_us <= b)
                    .unwrap_or(BUCKETS_US.len());
                entry.0[slot] += 1;
                entry.1 += e.dur_us;
                entry.2 += 1;
                agg.hists.entry(e.kind.clone()).or_default().record(e.dur_us);
                if e.kind == "case" {
                    if let Some(status) = e.attr_str("status") {
                        *agg.case_status.entry(status.to_string()).or_default() += 1;
                    }
                }
            }
            Phase::Instant if e.kind == "ctr" => {
                *agg.counters.entry(e.name.clone()).or_default() +=
                    e.attr_int("v").unwrap_or(0);
            }
            Phase::Instant => {
                *agg.instants.entry(e.kind.clone()).or_default() += 1;
            }
            Phase::Begin => {}
        }
    }
    agg
}

/// Render the Prometheus text exposition for a merged snapshot, plus the
/// compile-cache counters when a cache was attached.
pub fn render_prometheus(events: &[Event], cache: Option<&CacheCounters>) -> String {
    let agg = aggregate(events);
    let mut out = String::new();

    out.push_str("# HELP accvv_phase_duration_us Span durations by kind, microseconds.\n");
    out.push_str("# TYPE accvv_phase_duration_us histogram\n");
    for (kind, (buckets, sum, count)) in &agg.durations {
        let mut cum = 0u64;
        for (i, b) in BUCKETS_US.iter().enumerate() {
            cum += buckets[i];
            let _ = writeln!(
                out,
                "accvv_phase_duration_us_bucket{{kind=\"{kind}\",le=\"{b}\"}} {cum}"
            );
        }
        cum += buckets[BUCKETS_US.len()];
        let _ = writeln!(
            out,
            "accvv_phase_duration_us_bucket{{kind=\"{kind}\",le=\"+Inf\"}} {cum}"
        );
        let _ = writeln!(out, "accvv_phase_duration_us_sum{{kind=\"{kind}\"}} {sum}");
        let _ = writeln!(out, "accvv_phase_duration_us_count{{kind=\"{kind}\"}} {count}");
    }

    out.push_str(
        "# HELP accvv_phase_latency_us Span-duration quantiles by kind, microseconds \
         (log-bucketed estimate).\n",
    );
    out.push_str("# TYPE accvv_phase_latency_us summary\n");
    for (kind, hist) in &agg.hists {
        for (label, q) in QUANTILES {
            let _ = writeln!(
                out,
                "accvv_phase_latency_us{{kind=\"{kind}\",quantile=\"{label}\"}} {}",
                hist.quantile_us(*q)
            );
        }
        let _ = writeln!(out, "accvv_phase_latency_us_sum{{kind=\"{kind}\"}} {}", hist.sum_us());
        let _ = writeln!(out, "accvv_phase_latency_us_count{{kind=\"{kind}\"}} {}", hist.count());
    }

    out.push_str("# HELP accvv_case_status_total Case outcomes by taxonomy label.\n");
    out.push_str("# TYPE accvv_case_status_total counter\n");
    for (status, n) in &agg.case_status {
        let _ = writeln!(out, "accvv_case_status_total{{status=\"{status}\"}} {n}");
    }

    out.push_str("# HELP accvv_events_total Instant events by kind.\n");
    out.push_str("# TYPE accvv_events_total counter\n");
    for (kind, n) in &agg.instants {
        let _ = writeln!(out, "accvv_events_total{{kind=\"{kind}\"}} {n}");
    }

    for (name, v) in &agg.counters {
        let _ = writeln!(out, "# HELP accvv_{name}_total Run counter `{name}`.");
        let _ = writeln!(out, "# TYPE accvv_{name}_total counter");
        let _ = writeln!(out, "accvv_{name}_total {v}");
    }

    if let Some(c) = cache {
        out.push_str(
            "# HELP accvv_compile_cache_lookups_total Compile cache lookups by level and outcome.\n",
        );
        out.push_str("# TYPE accvv_compile_cache_lookups_total counter\n");
        for (level, outcome, v) in [
            ("exec", "hit", c.exec_hits),
            ("exec", "miss", c.exec_misses),
            ("frontend", "hit", c.frontend_hits),
            ("frontend", "miss", c.frontend_misses),
        ] {
            let _ = writeln!(
                out,
                "accvv_compile_cache_lookups_total{{level=\"{level}\",outcome=\"{outcome}\"}} {v}"
            );
        }
        let _ = writeln!(
            out,
            "# HELP accvv_compile_cache_hit_rate Overall compile-cache hit rate across both levels."
        );
        let _ = writeln!(out, "# TYPE accvv_compile_cache_hit_rate gauge");
        let _ = writeln!(out, "accvv_compile_cache_hit_rate {:.4}", c.hit_rate());
    }
    out
}

/// Render the human-readable summary table for a merged snapshot.
pub fn summary_table(events: &[Event], cache: Option<&CacheCounters>) -> String {
    let agg = aggregate(events);
    let mut out = String::new();
    let _ = writeln!(out, "telemetry summary ({} events)", events.len());
    if !agg.durations.is_empty() {
        let _ = writeln!(out, "  {:<12} {:>8} {:>12}", "phase", "spans", "total ms");
        for (kind, (_, sum_us, count)) in &agg.durations {
            let _ = writeln!(
                out,
                "  {:<12} {:>8} {:>12.2}",
                kind,
                count,
                *sum_us as f64 / 1e3
            );
        }
    }
    if !agg.case_status.is_empty() {
        let statuses: Vec<String> = agg
            .case_status
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        let _ = writeln!(out, "  cases: {}", statuses.join(" "));
    }
    if !agg.instants.is_empty() {
        let kinds: Vec<String> = agg
            .instants
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        let _ = writeln!(out, "  events: {}", kinds.join(" "));
    }
    for (name, v) in &agg.counters {
        let _ = writeln!(out, "  {name}: {v}");
    }
    if let Some(c) = cache {
        let _ = writeln!(
            out,
            "  compile cache: frontend {}/{} exec {}/{} hit rate {:.1}%",
            c.frontend_hits,
            c.frontend_hits + c.frontend_misses,
            c.exec_hits,
            c.exec_hits + c.exec_misses,
            c.hit_rate() * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{i, s, Recorder, PART_JOB};

    fn snapshot() -> Vec<Event> {
        let r = Recorder::enabled();
        let run = r.begin_run();
        {
            let _g = crate::scope(&r, run, PART_JOB, 0, 0);
            crate::begin("case", "t0", vec![]);
            crate::begin("exec", "functional", vec![]);
            crate::end(vec![]);
            crate::instant("retry", "attempt", vec![i("attempt", 1)]);
            crate::counter("memcpy_h2d_bytes", 4096);
            crate::counter("memcpy_h2d_bytes", 1024);
            crate::end(vec![s("status", "pass")]);
            crate::begin("case", "t1", vec![]);
            crate::end(vec![s("status", "wrong-result")]);
        }
        r.snapshot()
    }

    #[test]
    fn prometheus_sums_counters_and_statuses() {
        let text = render_prometheus(&snapshot(), None);
        assert!(text.contains("accvv_memcpy_h2d_bytes_total 5120"));
        assert!(text.contains("accvv_case_status_total{status=\"pass\"} 1"));
        assert!(text.contains("accvv_case_status_total{status=\"wrong-result\"} 1"));
        assert!(text.contains("accvv_events_total{kind=\"retry\"} 1"));
        assert!(text.contains("accvv_phase_duration_us_count{kind=\"case\"} 2"));
        assert!(text.contains("accvv_phase_duration_us_count{kind=\"exec\"} 1"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_to_inf() {
        let text = render_prometheus(&snapshot(), None);
        let inf_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("le=\"+Inf\""))
            .collect();
        assert_eq!(inf_lines.len(), 2); // case + exec kinds
        assert!(inf_lines.iter().any(|l| l.ends_with(" 2")));
    }

    #[test]
    fn cache_counters_render_with_hit_rate() {
        let c = CacheCounters {
            frontend_hits: 3,
            frontend_misses: 1,
            exec_hits: 5,
            exec_misses: 3,
        };
        let text = render_prometheus(&[], Some(&c));
        assert!(text.contains(
            "accvv_compile_cache_lookups_total{level=\"frontend\",outcome=\"hit\"} 3"
        ));
        assert!(text.contains("accvv_compile_cache_hit_rate 0.6667"));
        let table = summary_table(&[], Some(&c));
        assert!(table.contains("frontend 3/4 exec 5/8"));
    }

    #[test]
    fn server_counters_render_every_series() {
        let c = ServerCounters {
            queue_depth: 3,
            admitted_total: 10,
            shed_total: 4,
            completed_total: 5,
            cancelled_total: 1,
            degraded_total: 2,
            shared_total: 3,
            breaker_open: 1,
            breaker_trips_total: 6,
        };
        let text = render_server_metrics(&c);
        assert!(text.contains("accvv_server_queue_depth 3"));
        assert!(text.contains("accvv_server_submissions_total{outcome=\"admitted\"} 10"));
        assert!(text.contains("accvv_server_submissions_total{outcome=\"shed\"} 4"));
        assert!(text.contains("accvv_server_submissions_total{outcome=\"completed\"} 5"));
        assert!(text.contains("accvv_server_submissions_total{outcome=\"cancelled\"} 1"));
        assert!(text.contains("accvv_server_submissions_total{outcome=\"degraded\"} 2"));
        assert!(text.contains("accvv_server_submissions_total{outcome=\"shared\"} 3"));
        assert!(text.contains("accvv_server_breaker_open 1"));
        assert!(text.contains("accvv_server_breaker_trips_total 6"));
        // Composable with the event exposition: both are valid standalone
        // text blocks.
        let combined = format!("{}{}", render_prometheus(&[], None), text);
        assert!(combined.contains("accvv_server_queue_depth"));
    }

    #[test]
    fn phase_quantiles_render_as_summary() {
        let text = render_prometheus(&snapshot(), None);
        assert!(text.contains("accvv_phase_latency_us{kind=\"case\",quantile=\"0.5\"}"));
        assert!(text.contains("accvv_phase_latency_us{kind=\"exec\",quantile=\"0.99\"}"));
        assert!(text.contains("accvv_phase_latency_us_count{kind=\"case\"} 2"));
    }

    #[test]
    fn breaker_states_render_one_hot_with_trips() {
        let rows = vec![
            ("CAPS".to_string(), "open".to_string(), 3u64),
            ("PGI".to_string(), "closed".to_string(), 0),
        ];
        let text = render_breakers(&rows);
        assert!(text.contains("accvv_server_breaker_state{profile=\"CAPS\",state=\"open\"} 1"));
        assert!(text.contains("accvv_server_breaker_state{profile=\"CAPS\",state=\"closed\"} 0"));
        assert!(text.contains("accvv_server_breaker_state{profile=\"PGI\",state=\"closed\"} 1"));
        assert!(text.contains("accvv_server_breaker_profile_trips_total{profile=\"CAPS\"} 3"));
        assert!(render_breakers(&[]).is_empty());
    }

    #[test]
    fn http_latency_renders_per_endpoint() {
        let mut paths = BTreeMap::new();
        let mut h = LatencyHist::new();
        h.record(1000);
        h.record(2000);
        paths.insert("/v1/submit".to_string(), h);
        let text = render_http_latency(&paths);
        assert!(text.contains("accvv_http_request_duration_us{path=\"/v1/submit\",quantile=\"0.5\"}"));
        assert!(text.contains("accvv_http_request_duration_us_count{path=\"/v1/submit\"} 2"));
        assert!(render_http_latency(&BTreeMap::new()).is_empty());
    }

    #[test]
    fn every_series_has_help_and_type() {
        // Spec compliance: each metric family in each rendering must carry
        // both a # HELP and a # TYPE line.
        let cache = CacheCounters {
            frontend_hits: 1,
            frontend_misses: 1,
            exec_hits: 1,
            exec_misses: 1,
        };
        let mut paths = BTreeMap::new();
        paths.insert("/metrics".to_string(), LatencyHist::new());
        let breakers = vec![("CAPS".to_string(), "closed".to_string(), 0u64)];
        let combined = format!(
            "{}{}{}{}",
            render_prometheus(&snapshot(), Some(&cache)),
            render_server_metrics(&ServerCounters::default()),
            render_breakers(&breakers),
            render_http_latency(&paths),
        );
        let mut helped = std::collections::BTreeSet::new();
        let mut typed = std::collections::BTreeSet::new();
        for line in combined.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                helped.insert(rest.split(' ').next().unwrap().to_string());
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                typed.insert(rest.split(' ').next().unwrap().to_string());
            }
        }
        assert!(!helped.is_empty());
        assert_eq!(helped, typed, "HELP and TYPE cover the same families");
        for line in combined.lines().filter(|l| !l.starts_with('#')) {
            let name = line
                .split([' ', '{'])
                .next()
                .unwrap()
                .trim_end_matches("_sum")
                .trim_end_matches("_count")
                .trim_end_matches("_bucket");
            assert!(
                helped.contains(name),
                "series `{name}` lacks a # HELP line"
            );
        }
    }

    #[test]
    fn summary_table_mentions_each_section() {
        let t = summary_table(&snapshot(), None);
        assert!(t.contains("phase"));
        assert!(t.contains("cases: pass=1 wrong-result=1"));
        assert!(t.contains("retry=1"));
        assert!(t.contains("memcpy_h2d_bytes: 5120"));
    }
}
