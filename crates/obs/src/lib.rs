//! Campaign telemetry: structured spans and events for the validation stack.
//!
//! The unit of collection is an [`Event`]: a span open (`B`), span close
//! (`E`), or instant (`I`) tagged with a kind, a name, and a small bag of
//! attributes. Events are buffered per *scope* — one logical strand of
//! execution such as "job 3 of executor run 2" — and merged into a single
//! deterministic stream keyed by `(run, part, job, seq)`. Because that key
//! contains no wall-clock component and scopes are indexed by the job's
//! position in the suite (not by which worker thread claimed it), the merged
//! stream is **identical across `--jobs 1` and `--jobs N`** for the same
//! seed and suite.
//!
//! Two classes of event exist:
//!
//! * **logical** events — schedule-independent facts (a case started, a
//!   verification failed, an attempt was retried). These go to every sink,
//!   including the deterministic JSONL trace.
//! * **timing** events (`timing = true`) — facts that depend on the
//!   schedule or the clock (which worker hit the shared compile cache
//!   first, how long a lowering took). These feed the metrics and Chrome
//!   sinks but are *excluded* from the JSONL trace so it stays
//!   byte-identical across worker counts.
//!
//! Instrumented code never threads a recorder through its call graph.
//! Instead the driver installs a scope on the current thread with
//! [`scope`]; the free functions [`begin`], [`end`], [`instant`],
//! [`counter`] and friends write to that thread-local buffer, and are
//! guaranteed no-ops (one `RefCell` borrow + `Option` check) when no scope
//! is installed — which is always the case when telemetry is disabled.
//!
//! Sinks:
//! * [`trace`] — deterministic JSONL (one event per line) + parser,
//! * [`chrome`] — Chrome trace-event JSON loadable in Perfetto,
//! * [`metrics`] — Prometheus-style text exposition + human summary table.
//!
//! History:
//! * [`hist`] — deterministic log-bucketed latency histograms (mergeable,
//!   byte-identical encoding regardless of merge order),
//! * [`series`] — time-bucketed pass-rate series over epoch-stamped records.

#![warn(missing_docs)]

pub mod chrome;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod series;
pub mod trace;

pub use hist::{LatencyCollector, LatencyHist};
pub use series::{GroupBy, SeriesAgg, SeriesCounts, SeriesRow};

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Event phase: span open, span close, or instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span open (Chrome `B`).
    Begin,
    /// Span close (Chrome `E`).
    End,
    /// Instantaneous event (Chrome `i`).
    Instant,
}

impl Phase {
    /// One-character code used by the serialised forms (`B`/`E`/`I`).
    pub fn code(self) -> char {
        match self {
            Phase::Begin => 'B',
            Phase::End => 'E',
            Phase::Instant => 'I',
        }
    }

    /// Parse the one-character code back; `None` for anything else.
    pub fn from_code(c: char) -> Option<Phase> {
        match c {
            'B' => Some(Phase::Begin),
            'E' => Some(Phase::End),
            'I' => Some(Phase::Instant),
            _ => None,
        }
    }
}

/// An attribute value: integers and strings only. No floats — float
/// formatting is locale/precision bait and nothing logical needs one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrVal {
    /// Signed integer attribute.
    Int(i64),
    /// String attribute.
    Str(String),
}

/// Attribute helper: integer value.
pub fn i(key: &'static str, v: i64) -> (&'static str, AttrVal) {
    (key, AttrVal::Int(v))
}

/// Attribute helper: string value.
pub fn s(key: &'static str, v: impl Into<String>) -> (&'static str, AttrVal) {
    (key, AttrVal::Str(v.into()))
}

/// Scope part: orders a run's pre-amble, per-job strands, and post-amble.
pub const PART_PRE: u8 = 0;
/// See [`PART_PRE`].
pub const PART_JOB: u8 = 1;
/// See [`PART_PRE`].
pub const PART_POST: u8 = 2;

/// One telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Recorder-allocated run ordinal (one per executor/campaign run).
    pub run: u32,
    /// [`PART_PRE`] / [`PART_JOB`] / [`PART_POST`] — merge-order band.
    pub part: u8,
    /// Job ordinal inside the run (deterministic: the job's position in
    /// the suite, not the worker that executed it). 0 for pre/post parts.
    pub job: u32,
    /// Monotonic sequence number inside the scope.
    pub seq: u32,
    /// OS worker index that produced the event (informational; excluded
    /// from the deterministic JSONL form).
    pub worker: u32,
    /// Span open / close / instant.
    pub ph: Phase,
    /// Event kind, a small closed vocabulary (`"case"`, `"compile"`,
    /// `"exec"`, `"journal"`, ...). Keys metrics aggregation.
    pub kind: String,
    /// Human-readable name (case name, phase label, ...).
    pub name: String,
    /// Span nesting depth at emission (0 = top of scope).
    pub depth: u16,
    /// Timing-class flag: schedule/clock-dependent events are excluded
    /// from the deterministic JSONL sink.
    pub timing: bool,
    /// Microseconds since the recorder's epoch (timing data; excluded
    /// from the deterministic JSONL form).
    pub start_us: u64,
    /// For `End` events: span duration in microseconds.
    pub dur_us: u64,
    /// Attribute bag, in emission order.
    pub attrs: Vec<(&'static str, AttrVal)>,
}

impl Event {
    /// Look up a string attribute by key.
    pub fn attr_str(&self, key: &str) -> Option<&str> {
        self.attrs.iter().find_map(|(k, v)| match v {
            AttrVal::Str(s) if *k == key => Some(s.as_str()),
            _ => None,
        })
    }

    /// Look up an integer attribute by key.
    pub fn attr_int(&self, key: &str) -> Option<i64> {
        self.attrs.iter().find_map(|(k, v)| match v {
            AttrVal::Int(n) if *k == key => Some(*n),
            _ => None,
        })
    }
}

struct Inner {
    epoch: Instant,
    runs: AtomicU32,
    events: Mutex<Vec<Event>>,
}

/// Shared telemetry collector. Cloning is an `Arc` bump; the disabled
/// recorder is a `None` and costs nothing to clone or query.
#[derive(Clone, Default)]
pub struct Recorder(Option<Arc<Inner>>);

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.0.is_some())
            .finish()
    }
}

impl Recorder {
    /// The no-op recorder: every operation through it is free.
    pub fn disabled() -> Recorder {
        Recorder(None)
    }

    /// A live recorder collecting events.
    pub fn enabled() -> Recorder {
        Recorder(Some(Arc::new(Inner {
            epoch: Instant::now(),
            runs: AtomicU32::new(0),
            events: Mutex::new(Vec::new()),
        })))
    }

    /// Whether this recorder collects anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Allocate the next run ordinal. Callers allocate runs sequentially
    /// from single-threaded driver code, so ordinals are deterministic.
    /// Returns 0 when disabled.
    pub fn begin_run(&self) -> u32 {
        match &self.0 {
            Some(inner) => inner.runs.fetch_add(1, Ordering::Relaxed),
            None => 0,
        }
    }

    /// Merge and return all collected events in the deterministic order:
    /// stable-sorted by `(run, part, job, seq)`. Stable sort keeps each
    /// scope's events in emission order; distinct scopes never share a key.
    pub fn snapshot(&self) -> Vec<Event> {
        let Some(inner) = &self.0 else {
            return Vec::new();
        };
        let mut events = inner.events.lock().expect("obs events poisoned").clone();
        events.sort_by_key(|e| (e.run, e.part, e.job, e.seq));
        events
    }

    fn flush(&self, buffered: Vec<Event>) {
        if let Some(inner) = &self.0 {
            inner
                .events
                .lock()
                .expect("obs events poisoned")
                .extend(buffered);
        }
    }

    fn micros(&self) -> u64 {
        match &self.0 {
            Some(inner) => inner.epoch.elapsed().as_micros() as u64,
            None => 0,
        }
    }
}

/// Thread-local collection context for one scope.
struct Ctx {
    recorder: Recorder,
    run: u32,
    part: u8,
    job: u32,
    worker: u32,
    seq: u32,
    /// Open-span stack: index into `buf` of each un-closed `Begin`.
    stack: Vec<usize>,
    buf: Vec<Event>,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Guard returned by [`scope`]. On drop, closes any spans the scope left
/// open (marking them `aborted`, which makes panics visible in the trace),
/// flushes the buffered events into the recorder, and uninstalls the
/// thread-local context.
pub struct ScopeGuard {
    active: bool,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        CTX.with(|ctx| {
            let Some(mut c) = ctx.borrow_mut().take() else {
                return;
            };
            while !c.stack.is_empty() {
                emit_end(&mut c, vec![s("aborted", "true")]);
            }
            let buf = std::mem::take(&mut c.buf);
            c.recorder.flush(buf);
        });
    }
}

/// Install a collection scope on the current thread. All [`begin`] /
/// [`end`] / [`instant`] / [`counter`] calls on this thread route into it
/// until the returned guard drops. No-op (and near-free) when the recorder
/// is disabled.
///
/// `part` bands the scope in merge order ([`PART_PRE`] / [`PART_JOB`] /
/// [`PART_POST`]); `job` is the deterministic job ordinal within the run;
/// `worker` is the OS worker index (informational only).
pub fn scope(recorder: &Recorder, run: u32, part: u8, job: u32, worker: u32) -> ScopeGuard {
    if !recorder.is_enabled() {
        return ScopeGuard { active: false };
    }
    CTX.with(|ctx| {
        *ctx.borrow_mut() = Some(Ctx {
            recorder: recorder.clone(),
            run,
            part,
            job,
            worker,
            seq: 0,
            stack: Vec::new(),
            buf: Vec::new(),
        });
    });
    ScopeGuard { active: true }
}

/// Whether a scope is installed on this thread (i.e. telemetry is live
/// here). Lets instrumentation skip attribute construction when off.
pub fn active() -> bool {
    CTX.with(|ctx| ctx.borrow().is_some())
}

fn with_ctx(f: impl FnOnce(&mut Ctx)) {
    CTX.with(|ctx| {
        if let Some(c) = ctx.borrow_mut().as_mut() {
            f(c);
        }
    });
}

fn push_event(
    c: &mut Ctx,
    ph: Phase,
    kind: &str,
    name: &str,
    timing: bool,
    attrs: Vec<(&'static str, AttrVal)>,
) {
    let depth = c.stack.len() as u16;
    // Timing-class events share the seq of the next logical event instead
    // of consuming one: whether a schedule-dependent event fired (a cache
    // miss's lower span, a hit/miss instant) must not shift the sequence
    // numbers of the logical events after it, or the deterministic JSONL
    // would differ across worker counts. Ties are safe — a scope's events
    // are flushed as one contiguous block and the merge sort is stable, so
    // emission order is preserved.
    let seq = c.seq;
    if !timing {
        c.seq += 1;
    }
    c.buf.push(Event {
        run: c.run,
        part: c.part,
        job: c.job,
        seq,
        worker: c.worker,
        ph,
        kind: kind.to_string(),
        name: name.to_string(),
        depth,
        timing,
        start_us: c.recorder.micros(),
        dur_us: 0,
        attrs,
    });
}

/// Open a logical span.
pub fn begin(kind: &str, name: &str, attrs: Vec<(&'static str, AttrVal)>) {
    with_ctx(|c| {
        push_event(c, Phase::Begin, kind, name, false, attrs);
        let at = c.buf.len() - 1;
        c.stack.push(at);
    });
}

/// Open a timing-class span (excluded from the deterministic JSONL).
pub fn begin_timing(kind: &str, name: &str, attrs: Vec<(&'static str, AttrVal)>) {
    with_ctx(|c| {
        push_event(c, Phase::Begin, kind, name, true, attrs);
        let at = c.buf.len() - 1;
        c.stack.push(at);
    });
}

fn emit_end(c: &mut Ctx, attrs: Vec<(&'static str, AttrVal)>) {
    let Some(open_at) = c.stack.pop() else {
        return;
    };
    let (kind, name, timing, began_us) = {
        let open = &c.buf[open_at];
        (
            open.kind.clone(),
            open.name.clone(),
            open.timing,
            open.start_us,
        )
    };
    push_event(c, Phase::End, &kind, &name, timing, attrs);
    let now = c.buf.last().expect("just pushed").start_us;
    c.buf.last_mut().expect("just pushed").dur_us = now.saturating_sub(began_us);
}

/// Close the innermost open span, attaching `attrs` to the close event.
/// The close inherits the open's kind, name, and timing class. A stray
/// `end` with no open span is ignored.
pub fn end(attrs: Vec<(&'static str, AttrVal)>) {
    with_ctx(|c| emit_end(c, attrs));
}

/// Emit a logical instant event.
pub fn instant(kind: &str, name: &str, attrs: Vec<(&'static str, AttrVal)>) {
    with_ctx(|c| push_event(c, Phase::Instant, kind, name, false, attrs));
}

/// Emit a timing-class instant event (excluded from deterministic JSONL).
pub fn instant_timing(kind: &str, name: &str, attrs: Vec<(&'static str, AttrVal)>) {
    with_ctx(|c| push_event(c, Phase::Instant, kind, name, true, attrs));
}

/// Emit a logical counter sample: an instant of kind `ctr` whose `v`
/// attribute carries the value. Metrics sums these by name.
pub fn counter(name: &str, v: i64) {
    instant("ctr", name, vec![i("v", v)]);
}

/// Current open-span depth in this thread's scope; 0 when no scope is
/// installed. Pair with [`unwind_to`] around `catch_unwind` boundaries.
pub fn depth() -> u16 {
    CTX.with(|ctx| {
        ctx.borrow()
            .as_ref()
            .map_or(0, |c| c.stack.len() as u16)
    })
}

/// Close open spans until the stack is back down to `depth`, attaching an
/// `aborted` attr to each close. Call after `catch_unwind` catches a panic
/// that unwound through instrumented code, so the span stack stays
/// consistent for the retry.
pub fn unwind_to(depth: u16) {
    with_ctx(|c| {
        while c.stack.len() as u16 > depth {
            emit_end(c, vec![s("aborted", "true")]);
        }
    });
}

/// Emit a stack-bypassing raw event. For driver-level spans (campaign,
/// sweep) whose open and close live in *different* scopes: the `Begin`
/// goes in the run's pre scope and the `End` in its post scope, so the
/// span survives the per-job scope teardown between them. The merge order
/// (pre < job < post) keeps the pair properly nested in the Chrome view.
pub fn mark(ph: Phase, kind: &str, name: &str, attrs: Vec<(&'static str, AttrVal)>) {
    with_ctx(|c| push_event(c, ph, kind, name, false, attrs));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_collects_nothing() {
        let r = Recorder::disabled();
        let _g = scope(&r, 0, PART_JOB, 0, 0);
        begin("case", "x", vec![]);
        instant("note", "y", vec![i("n", 1)]);
        end(vec![]);
        drop(_g);
        assert!(!r.is_enabled());
        assert!(r.snapshot().is_empty());
        assert!(!active());
    }

    #[test]
    fn events_merge_by_scope_key_not_arrival_order() {
        let r = Recorder::enabled();
        let run = r.begin_run();
        // Flush job 2's scope before job 0's: snapshot must still order
        // job 0 first.
        {
            let _g = scope(&r, run, PART_JOB, 2, 7);
            instant("case", "late", vec![]);
        }
        {
            let _g = scope(&r, run, PART_JOB, 0, 3);
            instant("case", "early", vec![]);
        }
        let ev = r.snapshot();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].name, "early");
        assert_eq!(ev[1].name, "late");
        assert_eq!(ev[0].worker, 3);
    }

    #[test]
    fn span_stack_nests_and_ends_inherit_identity() {
        let r = Recorder::enabled();
        let run = r.begin_run();
        {
            let _g = scope(&r, run, PART_JOB, 0, 0);
            begin("case", "t1", vec![s("lang", "C")]);
            begin("compile", "functional", vec![]);
            end(vec![s("status", "ok")]);
            end(vec![]);
        }
        let ev = r.snapshot();
        assert_eq!(ev.len(), 4);
        assert_eq!(
            ev.iter().map(|e| e.ph.code()).collect::<String>(),
            "BBEE"
        );
        assert_eq!(ev[2].kind, "compile");
        assert_eq!(ev[2].name, "functional");
        assert_eq!(ev[2].attr_str("status"), Some("ok"));
        assert_eq!(ev[3].kind, "case");
        assert_eq!(ev[0].depth, 0);
        assert_eq!(ev[1].depth, 1);
    }

    #[test]
    fn dropped_scope_closes_open_spans_as_aborted() {
        let r = Recorder::enabled();
        let run = r.begin_run();
        {
            let _g = scope(&r, run, PART_JOB, 0, 0);
            begin("case", "panicky", vec![]);
            // no end() — simulates a panic unwinding through the scope
        }
        let ev = r.snapshot();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[1].ph, Phase::End);
        assert_eq!(ev[1].attr_str("aborted"), Some("true"));
    }

    #[test]
    fn timing_class_propagates_from_begin_to_end() {
        let r = Recorder::enabled();
        let run = r.begin_run();
        {
            let _g = scope(&r, run, PART_JOB, 0, 0);
            begin_timing("lower", "bytecode", vec![]);
            end(vec![]);
            counter("vm_instructions", 42);
        }
        let ev = r.snapshot();
        assert!(ev[0].timing && ev[1].timing);
        assert!(!ev[2].timing);
        assert_eq!(ev[2].attr_int("v"), Some(42));
    }

    #[test]
    fn timing_events_do_not_consume_logical_seq() {
        // Two scopes with identical logical activity; one of them also saw
        // schedule-dependent timing events. The logical events must carry
        // identical sequence numbers either way, and the merged order must
        // keep each scope's emission order.
        let r = Recorder::enabled();
        let run = r.begin_run();
        {
            let _g = scope(&r, run, PART_JOB, 0, 0);
            instant("case", "a", vec![]);
            instant_timing("cache", "frontend", vec![]);
            begin_timing("lower", "bytecode", vec![]);
            end(vec![]);
            instant("case", "b", vec![]);
        }
        {
            let _g = scope(&r, run, PART_JOB, 1, 0);
            instant("case", "a", vec![]);
            instant("case", "b", vec![]);
        }
        let ev = r.snapshot();
        let logical_0: Vec<u32> = ev
            .iter()
            .filter(|e| e.job == 0 && !e.timing)
            .map(|e| e.seq)
            .collect();
        let logical_1: Vec<u32> = ev
            .iter()
            .filter(|e| e.job == 1 && !e.timing)
            .map(|e| e.seq)
            .collect();
        assert_eq!(logical_0, logical_1);
        // Within job 0, emission order survives the seq ties.
        let names: Vec<&str> = ev
            .iter()
            .filter(|e| e.job == 0)
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(names, ["a", "frontend", "bytecode", "bytecode", "b"]);
    }

    #[test]
    fn run_ordinals_are_sequential() {
        let r = Recorder::enabled();
        assert_eq!(r.begin_run(), 0);
        assert_eq!(r.begin_run(), 1);
        assert_eq!(r.begin_run(), 2);
    }

    #[test]
    fn stray_end_is_ignored() {
        let r = Recorder::enabled();
        let run = r.begin_run();
        {
            let _g = scope(&r, run, PART_JOB, 0, 0);
            end(vec![]);
            instant("note", "still-works", vec![]);
        }
        let ev = r.snapshot();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].name, "still-works");
    }
}
