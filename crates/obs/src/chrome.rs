//! Chrome trace-event sink: renders a merged snapshot as a JSON document
//! loadable in `chrome://tracing` / Perfetto.
//!
//! Timestamps are **logical**: each event's `ts` is its index in the merged
//! deterministic order, in microseconds. That makes the exported file a pure
//! function of the logical stream (so `accvv trace export` of the same JSONL
//! always yields the same bytes) at the cost of proportional rather than
//! wall-clock span widths. Events from a live recorder may carry real
//! durations; the export path used by the CLI goes through JSONL first, so
//! only the logical form matters here.
//!
//! Layout: one process (`pid` 0), one Chrome "thread" per recorder run
//! (`tid` = run ordinal) — runs are the natural lanes since each run's
//! events form a properly nested span forest.

use crate::json::{escape_into, parse, Json};
use crate::{AttrVal, Event, Phase};
use std::fmt::Write as _;

/// Render the Chrome trace-event JSON document for a merged snapshot.
/// Timing-class events are excluded, matching the JSONL sink, so exports
/// from live recorders and from parsed JSONL agree.
pub fn render(events: &[Event]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut runs_seen: Vec<u32> = Vec::new();
    for e in events.iter().filter(|e| !e.timing) {
        if !runs_seen.contains(&e.run) {
            runs_seen.push(e.run);
        }
    }
    for run in &runs_seen {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{run},\"args\":{{\"name\":\"run {run}\"}}}}"
        );
    }
    for (ts, e) in events.iter().filter(|e| !e.timing).enumerate() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let ph = match e.ph {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
        };
        out.push_str("{\"name\":\"");
        escape_into(&mut out, &e.kind);
        out.push(':');
        escape_into(&mut out, &e.name);
        let _ = write!(out, "\",\"ph\":\"{ph}\",\"pid\":0,\"tid\":{},\"ts\":{ts}", e.run);
        if e.ph == Phase::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"args\":{");
        let _ = write!(out, "\"part\":{},\"job\":{},\"seq\":{}", e.part, e.job, e.seq);
        for (k, v) in &e.attrs {
            out.push_str(",\"");
            escape_into(&mut out, k);
            out.push_str("\":");
            match v {
                AttrVal::Int(n) => {
                    let _ = write!(out, "{n}");
                }
                AttrVal::Str(s) => {
                    out.push('"');
                    escape_into(&mut out, s);
                    out.push('"');
                }
            }
        }
        out.push_str("}}");
    }
    out.push_str("\n]}\n");
    out
}

/// Validate a Chrome trace document: it must parse as JSON, expose a
/// `traceEvents` array, and every `tid`'s `B`/`E` events must form a
/// properly nested stack with matching names. Returns the number of
/// complete spans on success.
pub fn validate(doc: &str) -> Result<usize, String> {
    let v = parse(doc).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = v
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    // tid -> stack of open span names
    let mut stacks: Vec<(i64, Vec<String>)> = Vec::new();
    let mut spans = 0usize;
    let mut last_ts: Option<i64> = None;
    for (idx, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {idx}: missing ph"))?;
        if ph == "M" {
            continue;
        }
        let tid = e
            .get("tid")
            .and_then(Json::as_i64)
            .ok_or_else(|| format!("event {idx}: missing tid"))?;
        let ts = e
            .get("ts")
            .and_then(Json::as_i64)
            .ok_or_else(|| format!("event {idx}: missing ts"))?;
        if let Some(prev) = last_ts {
            if ts < prev {
                return Err(format!("event {idx}: ts went backwards ({prev} -> {ts})"));
            }
        }
        last_ts = Some(ts);
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {idx}: missing name"))?;
        let at = match stacks.iter().position(|(t, _)| *t == tid) {
            Some(at) => at,
            None => {
                stacks.push((tid, Vec::new()));
                stacks.len() - 1
            }
        };
        let stack = &mut stacks[at].1;
        match ph {
            "B" => stack.push(name.to_string()),
            "E" => {
                let open = stack
                    .pop()
                    .ok_or_else(|| format!("event {idx}: E \"{name}\" with no open span on tid {tid}"))?;
                if open != name {
                    return Err(format!(
                        "event {idx}: E \"{name}\" closes mismatched span \"{open}\" on tid {tid}"
                    ));
                }
                spans += 1;
            }
            "i" => {}
            other => return Err(format!("event {idx}: unsupported ph {other:?}")),
        }
    }
    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("tid {tid}: span \"{open}\" never closed"));
        }
    }
    Ok(spans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{s, Recorder, PART_JOB, PART_POST, PART_PRE};

    fn snapshot() -> Vec<Event> {
        let r = Recorder::enabled();
        let run = r.begin_run();
        {
            let _g = crate::scope(&r, run, PART_PRE, 0, 0);
            crate::mark(Phase::Begin, "campaign", "fig8", vec![]);
        }
        {
            let _g = crate::scope(&r, run, PART_JOB, 0, 1);
            crate::begin("case", "t0", vec![s("lang", "C")]);
            crate::instant("verify", "ok", vec![]);
            crate::end(vec![]);
        }
        {
            let _g = crate::scope(&r, run, PART_POST, 0, 0);
            crate::mark(Phase::End, "campaign", "fig8", vec![]);
        }
        r.snapshot()
    }

    #[test]
    fn export_validates_and_counts_spans() {
        let doc = render(&snapshot());
        // campaign span + case span
        assert_eq!(validate(&doc), Ok(2));
    }

    #[test]
    fn cross_scope_marks_pair_up_in_merge_order() {
        let doc = render(&snapshot());
        let b = doc.find("\"campaign:fig8\",\"ph\":\"B\"").unwrap();
        let e = doc.find("\"campaign:fig8\",\"ph\":\"E\"").unwrap();
        let case = doc.find("\"case:t0\"").unwrap();
        assert!(b < case && case < e);
    }

    #[test]
    fn validate_catches_bad_nesting() {
        let doc = r#"{"traceEvents":[
            {"name":"a","ph":"B","pid":0,"tid":0,"ts":0},
            {"name":"b","ph":"E","pid":0,"tid":0,"ts":1}
        ]}"#;
        assert!(validate(doc).unwrap_err().contains("mismatched"));
    }

    #[test]
    fn validate_catches_unclosed_span() {
        let doc = r#"{"traceEvents":[
            {"name":"a","ph":"B","pid":0,"tid":0,"ts":0}
        ]}"#;
        assert!(validate(doc).unwrap_err().contains("never closed"));
    }

    #[test]
    fn validate_rejects_non_json() {
        assert!(validate("nope").is_err());
        assert!(validate("{}").is_err());
    }
}
