//! Per-vendor-profile circuit breakers.
//!
//! A campaign whose compiler profile keeps yielding `Infra` verdicts is
//! burning worker time on an environment that is down (license server
//! unreachable, toolchain half-installed). After `threshold` *consecutive*
//! `Infra` verdicts the breaker for that profile opens: new submissions
//! against it are not run at all — every case degrades to
//! `Skipped("circuit open …")` so the submitter gets an immediate, honest
//! answer instead of a slow pile of infrastructure noise. After a cooldown
//! the breaker goes half-open and admits one trial campaign; a clean trial
//! closes it, another `Infra` re-opens it.
//!
//! All time-dependent transitions take an explicit [`Instant`] so tests can
//! drive the state machine deterministically.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use acc_validation::TestStatus;

/// Breaker state for one compiler profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: campaigns run normally. Tracks the current run of
    /// consecutive `Infra` verdicts.
    Closed {
        /// Consecutive `Infra` verdicts observed so far.
        consecutive_infra: u32,
    },
    /// Tripped: campaigns degrade to skipped until the cooldown elapses.
    Open {
        /// When the breaker tripped.
        since: Instant,
    },
    /// Cooldown elapsed: one trial campaign is admitted to probe recovery.
    HalfOpen,
}

impl BreakerState {
    /// Short label for health endpoints.
    pub fn label(&self) -> &'static str {
        match self {
            BreakerState::Closed { .. } => "closed",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Outcome of asking a breaker whether a campaign may run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Run the campaign. `trial` is true when this is the half-open probe.
    Admit {
        /// True when the breaker is half-open and this run decides recovery.
        trial: bool,
    },
    /// Do not run; degrade every case to `Skipped` with this reason.
    Degraded {
        /// Human-readable reason recorded on every skipped case.
        reason: String,
    },
}

/// The set of breakers, keyed by compiler profile label.
#[derive(Debug)]
pub struct BreakerSet {
    threshold: u32,
    cooldown: Duration,
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    states: BTreeMap<String, BreakerState>,
    trips: BTreeMap<String, u64>,
    trips_total: u64,
}

impl Inner {
    fn trip(&mut self, profile: &str) {
        self.trips_total += 1;
        *self.trips.entry(profile.to_string()).or_default() += 1;
    }
}

impl BreakerSet {
    /// A breaker set tripping after `threshold` consecutive `Infra`
    /// verdicts, probing recovery after `cooldown`.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        BreakerSet {
            threshold: threshold.max(1),
            cooldown,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Decide admission for a campaign against `profile`, as of `now`.
    pub fn admit_at(&self, profile: &str, now: Instant) -> BreakerDecision {
        let mut inner = self.inner.lock().unwrap();
        let state = inner
            .states
            .entry(profile.to_string())
            .or_insert(BreakerState::Closed {
                consecutive_infra: 0,
            });
        match *state {
            BreakerState::Closed { .. } => BreakerDecision::Admit { trial: false },
            BreakerState::HalfOpen => BreakerDecision::Admit { trial: true },
            BreakerState::Open { since } => {
                if now.duration_since(since) >= self.cooldown {
                    *state = BreakerState::HalfOpen;
                    BreakerDecision::Admit { trial: true }
                } else {
                    BreakerDecision::Degraded {
                        reason: format!(
                            "circuit open for {profile} after {} consecutive infra failures",
                            self.threshold
                        ),
                    }
                }
            }
        }
    }

    /// Decide admission as of now.
    pub fn admit(&self, profile: &str) -> BreakerDecision {
        self.admit_at(profile, Instant::now())
    }

    /// Feed the verdicts of a finished campaign back into the breaker,
    /// as of `now`. Uncounted verdicts (skips) are ignored.
    pub fn observe_at<'a>(
        &self,
        profile: &str,
        statuses: impl IntoIterator<Item = &'a TestStatus>,
        now: Instant,
    ) {
        let mut inner = self.inner.lock().unwrap();
        let threshold = self.threshold;
        let mut tripped = false;
        let state = inner
            .states
            .entry(profile.to_string())
            .or_insert(BreakerState::Closed {
                consecutive_infra: 0,
            });
        if matches!(state, BreakerState::HalfOpen) {
            // A half-open trial is judged as a unit: ANY infra verdict in
            // the trial campaign re-opens the circuit, however many healthy
            // verdicts surround it. Only a fully clean trial closes it.
            let mut saw_counted = false;
            let mut saw_infra = false;
            for status in statuses {
                if !status.counted() {
                    continue;
                }
                saw_counted = true;
                if matches!(status, TestStatus::Infra(_)) {
                    saw_infra = true;
                    break;
                }
            }
            if saw_infra {
                *state = BreakerState::Open { since: now };
                inner.trip(profile);
            } else if saw_counted {
                *state = BreakerState::Closed {
                    consecutive_infra: 0,
                };
            }
            return;
        }
        for status in statuses {
            if !status.counted() {
                continue;
            }
            let infra = matches!(status, TestStatus::Infra(_));
            match state {
                BreakerState::Closed { consecutive_infra } => {
                    if infra {
                        *consecutive_infra += 1;
                        if *consecutive_infra >= threshold {
                            *state = BreakerState::Open { since: now };
                            tripped = true;
                            break; // the rest of this campaign is history
                        }
                    } else {
                        *consecutive_infra = 0;
                    }
                }
                // Unreachable here: half-open was handled above, and a trip
                // earlier in this loop broke out. Kept defensively for a
                // racing campaign that tripped between lock acquisitions.
                BreakerState::HalfOpen | BreakerState::Open { .. } => break,
            }
        }
        if tripped {
            inner.trip(profile);
        }
    }

    /// Feed verdicts as of now.
    pub fn observe<'a>(&self, profile: &str, statuses: impl IntoIterator<Item = &'a TestStatus>) {
        self.observe_at(profile, statuses, Instant::now());
    }

    /// Current state and lifetime trip count of every profile seen so far.
    pub fn snapshot(&self) -> Vec<(String, BreakerState, u64)> {
        let inner = self.inner.lock().unwrap();
        inner
            .states
            .iter()
            .map(|(k, v)| (k.clone(), *v, inner.trips.get(k).copied().unwrap_or(0)))
            .collect()
    }

    /// Number of profiles whose breaker is currently open.
    pub fn open_count(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        inner
            .states
            .values()
            .filter(|s| matches!(s, BreakerState::Open { .. }))
            .count()
    }

    /// Total number of trips since startup.
    pub fn trips_total(&self) -> u64 {
        self.inner.lock().unwrap().trips_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn infra() -> TestStatus {
        TestStatus::Infra("node down".into())
    }

    #[test]
    fn trips_after_threshold_consecutive_infra() {
        let set = BreakerSet::new(3, Duration::from_secs(60));
        let t0 = Instant::now();
        set.observe_at("caps 3.3.4", &[infra(), infra()], t0);
        assert_eq!(set.admit_at("caps 3.3.4", t0), BreakerDecision::Admit { trial: false });
        set.observe_at("caps 3.3.4", &[infra()], t0);
        match set.admit_at("caps 3.3.4", t0) {
            BreakerDecision::Degraded { reason } => {
                assert!(reason.contains("caps 3.3.4"), "{reason}");
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        assert_eq!(set.trips_total(), 1);
        assert_eq!(set.open_count(), 1);
    }

    #[test]
    fn counted_success_resets_the_streak() {
        let set = BreakerSet::new(3, Duration::from_secs(60));
        let t0 = Instant::now();
        set.observe_at("pgi 13.8", &[infra(), infra(), TestStatus::Pass, infra()], t0);
        assert_eq!(set.admit_at("pgi 13.8", t0), BreakerDecision::Admit { trial: false });
    }

    #[test]
    fn skips_do_not_break_the_streak() {
        let set = BreakerSet::new(2, Duration::from_secs(60));
        let t0 = Instant::now();
        set.observe_at(
            "cray 8.2.0",
            &[infra(), TestStatus::skipped(), infra()],
            t0,
        );
        assert!(matches!(
            set.admit_at("cray 8.2.0", t0),
            BreakerDecision::Degraded { .. }
        ));
    }

    #[test]
    fn half_open_trial_closes_on_success_and_reopens_on_infra() {
        let set = BreakerSet::new(1, Duration::from_millis(100));
        let t0 = Instant::now();
        set.observe_at("caps 3.0.7", &[infra()], t0);
        // Still cooling down.
        assert!(matches!(
            set.admit_at("caps 3.0.7", t0 + Duration::from_millis(50)),
            BreakerDecision::Degraded { .. }
        ));
        // Cooldown elapsed → half-open trial.
        let t1 = t0 + Duration::from_millis(150);
        assert_eq!(set.admit_at("caps 3.0.7", t1), BreakerDecision::Admit { trial: true });
        // Trial fails → open again, second trip counted.
        set.observe_at("caps 3.0.7", &[infra()], t1);
        assert!(matches!(
            set.admit_at("caps 3.0.7", t1),
            BreakerDecision::Degraded { .. }
        ));
        assert_eq!(set.trips_total(), 2);
        // Another cooldown, another trial, this one clean → closed.
        let t2 = t1 + Duration::from_millis(150);
        assert_eq!(set.admit_at("caps 3.0.7", t2), BreakerDecision::Admit { trial: true });
        set.observe_at("caps 3.0.7", &[TestStatus::Pass], t2);
        assert_eq!(set.admit_at("caps 3.0.7", t2), BreakerDecision::Admit { trial: false });
        assert_eq!(set.open_count(), 0);
    }

    #[test]
    fn trial_is_admitted_exactly_at_cooldown_expiry() {
        // The boundary is inclusive: `elapsed >= cooldown` admits. One
        // nanosecond earlier must still degrade — an off-by-one here either
        // hammers a broken profile early or strands a healthy one forever.
        let cooldown = Duration::from_millis(100);
        let set = BreakerSet::new(1, cooldown);
        let t0 = Instant::now();
        set.observe_at("caps 3.3.4", &[infra()], t0);
        assert!(matches!(
            set.admit_at("caps 3.3.4", t0 + cooldown - Duration::from_nanos(1)),
            BreakerDecision::Degraded { .. }
        ));
        assert_eq!(
            set.admit_at("caps 3.3.4", t0 + cooldown),
            BreakerDecision::Admit { trial: true }
        );
    }

    #[test]
    fn infra_racing_an_open_breaker_does_not_double_trip() {
        // A campaign admitted before the trip can finish (during a drain,
        // say) and report Infra verdicts while the circuit is already open.
        // Those verdicts are history: the breaker must neither count a
        // second trip nor restart the cooldown clock.
        let cooldown = Duration::from_millis(100);
        let set = BreakerSet::new(1, cooldown);
        let t0 = Instant::now();
        set.observe_at("pgi 13.8", &[infra()], t0);
        assert_eq!(set.trips_total(), 1);
        // The straggler lands halfway through the cooldown.
        set.observe_at("pgi 13.8", &[infra(), infra()], t0 + cooldown / 2);
        assert_eq!(set.trips_total(), 1, "already-open breaker must not re-trip");
        // The original cooldown clock still governs: the trial is admitted
        // at t0 + cooldown, not pushed out by the straggler.
        assert_eq!(
            set.admit_at("pgi 13.8", t0 + cooldown),
            BreakerDecision::Admit { trial: true }
        );
    }

    #[test]
    fn half_open_trial_ignores_uncounted_stragglers() {
        // A drain can flush a campaign of nothing but skips into a
        // half-open breaker. With no counted verdict the trial is still
        // outstanding: the breaker must stay half-open, not close.
        let set = BreakerSet::new(1, Duration::from_millis(100));
        let t0 = Instant::now();
        set.observe_at("cray 8.2.0", &[infra()], t0);
        let t1 = t0 + Duration::from_millis(150);
        assert_eq!(set.admit_at("cray 8.2.0", t1), BreakerDecision::Admit { trial: true });
        set.observe_at("cray 8.2.0", &[TestStatus::skipped()], t1);
        assert_eq!(
            set.admit_at("cray 8.2.0", t1),
            BreakerDecision::Admit { trial: true },
            "skip-only campaign must leave the trial outstanding"
        );
        assert_eq!(set.open_count(), 0);
        assert_eq!(set.trips_total(), 1);
    }

    #[test]
    fn profiles_are_independent() {
        let set = BreakerSet::new(1, Duration::from_secs(60));
        let t0 = Instant::now();
        set.observe_at("caps 3.3.4", &[infra()], t0);
        assert!(matches!(
            set.admit_at("caps 3.3.4", t0),
            BreakerDecision::Degraded { .. }
        ));
        assert_eq!(set.admit_at("pgi 13.8", t0), BreakerDecision::Admit { trial: false });
    }

    #[test]
    fn snapshot_reports_per_profile_trip_counts() {
        let set = BreakerSet::new(1, Duration::from_millis(100));
        let t0 = Instant::now();
        set.observe_at("caps 3.3.4", &[infra()], t0);
        set.observe_at("pgi 13.8", &[TestStatus::Pass], t0);
        // Re-trip caps via a failed half-open trial: per-profile count 2.
        let t1 = t0 + Duration::from_millis(150);
        assert_eq!(set.admit_at("caps 3.3.4", t1), BreakerDecision::Admit { trial: true });
        set.observe_at("caps 3.3.4", &[infra()], t1);
        let snap = set.snapshot();
        assert_eq!(snap.len(), 2);
        let caps = snap.iter().find(|(p, _, _)| p == "caps 3.3.4").unwrap();
        assert_eq!(caps.1.label(), "open");
        assert_eq!(caps.2, 2, "both trips attributed to caps");
        let pgi = snap.iter().find(|(p, _, _)| p == "pgi 13.8").unwrap();
        assert_eq!((pgi.1.label(), pgi.2), ("closed", 0));
        assert_eq!(set.trips_total(), 2);
    }
}
