//! SIGINT/SIGTERM → [`CancelToken`], with no dependency beyond libc's
//! `signal(2)` (already linked by std).
//!
//! The handler does exactly one async-signal-safe thing: store `true` into
//! the token's atomic. All draining — finishing in-flight work, journaling,
//! flushing telemetry sinks — happens on normal threads that poll the
//! token. After the first signal the default disposition is restored, so a
//! second Ctrl-C kills a wedged process the traditional way.

use std::sync::{Arc, OnceLock};

use acc_validation::CancelToken;

static TOKEN: OnceLock<Arc<CancelToken>> = OnceLock::new();

#[cfg(unix)]
mod sys {
    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;
    pub const SIG_DFL: usize = 0;

    extern "C" {
        pub fn signal(signum: i32, handler: usize) -> usize;
    }
}

#[cfg(unix)]
extern "C" fn on_signal(signum: i32) {
    if let Some(token) = TOKEN.get() {
        token.cancel();
    }
    // One shot: restore the default disposition so a second signal
    // terminates immediately instead of being swallowed.
    unsafe {
        sys::signal(signum, sys::SIG_DFL);
    }
}

#[cfg(unix)]
fn handler_addr() -> usize {
    on_signal as *const () as usize
}

/// Install `token` as the process-wide drain token and register it for
/// SIGINT and SIGTERM. Idempotent; the first installed token wins (later
/// calls return `false` without re-registering a different token).
pub fn install(token: Arc<CancelToken>) -> bool {
    let installed = TOKEN.set(token).is_ok();
    #[cfg(unix)]
    if installed {
        unsafe {
            sys::signal(sys::SIGINT, handler_addr());
            sys::signal(sys::SIGTERM, handler_addr());
        }
    }
    installed
}

/// The installed drain token, if any.
pub fn installed_token() -> Option<Arc<CancelToken>> {
    TOKEN.get().cloned()
}

/// Install a fresh token, or return the one already installed — the
/// one-shot CLI path, where whichever command runs first wins.
pub fn install_default() -> Arc<CancelToken> {
    let token = CancelToken::arc();
    if install(Arc::clone(&token)) {
        token
    } else {
        installed_token().expect("install returned false, so the token is set")
    }
}
