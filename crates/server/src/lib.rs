//! # acc-server — the overload-safe campaign server
//!
//! Promotes the validation suite from a one-shot CLI into a long-running
//! service: campaign submissions arrive over HTTP/JSON, are admitted
//! through a bounded multi-tenant queue ([`acc_harness::FairScheduler`]),
//! run on the existing executor against one process-wide compile cache,
//! and land in an indexed append-only [`acc_harness::ResultStore`].
//!
//! Overload machinery, end to end:
//!
//! * **Admission control** — the queue has a hard capacity; a full queue
//!   sheds the submission with `429 Too Many Requests` + `Retry-After`
//!   instead of buffering without bound.
//! * **Fairness** — per-tenant weighted round-robin, so a bulk sweep
//!   cannot starve an interactive tenant.
//! * **Deadlines** — a submission's `deadline_ms` propagates into
//!   [`ExecutorPolicy::with_run_deadline`]; work whose deadline expired
//!   while queued is cancelled, not run.
//! * **Circuit breakers** — per compiler profile ([`breaker`]); a tripped
//!   profile degrades gracefully: every case reports
//!   `Skipped("circuit open …")` immediately.
//! * **Graceful drain** — SIGINT/SIGTERM ([`signal`]) stops admission,
//!   cancels in-flight work through the executor's [`CancelToken`] (the
//!   per-submission journal makes it resumable), marks queued work
//!   cancelled, and lets the process exit 0.
//!
//! The report a completed submission stores is **byte-identical** to what
//! `accvv run` would have printed for the same parameters — both paths go
//! through [`run_submission`].

#![warn(missing_docs)]

pub mod breaker;
pub mod http;
pub mod signal;

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use acc_compiler::{CompileCache, ExecMode, VendorCompiler, VendorId};
use acc_harness::{history, FairScheduler, HistoryRequest, PushError, QueryFilter, ResultStore};
use acc_obs as obs;
use acc_obs::hist::{LatencyCollector, LatencyHist};
use acc_obs::json::{self, Json};
use acc_obs::metrics::{
    render_breakers, render_http_latency, render_prometheus, render_server_metrics,
    CacheCounters, ServerCounters,
};
use acc_obs::series::GroupBy;
use acc_spec::version::CompilerVersion;
use acc_spec::Language;
use acc_testsuite::full_suite;
use acc_validation::report::{self, ReportFormat};
use acc_validation::{
    Campaign, CancelToken, CaseResult, ExecStats, Executor, ExecutorPolicy, FileJournal,
    SuiteConfig, SuiteRun, TestStatus,
};

pub use breaker::{BreakerDecision, BreakerSet, BreakerState};
use http::{Request, Response};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (`…:0` picks a free port).
    pub addr: String,
    /// Worker threads per campaign run (the executor's `--jobs`).
    pub jobs: usize,
    /// Admission-queue capacity; pushes beyond it shed with 429.
    pub queue_cap: usize,
    /// Directory for the result store (`results.j1`) and per-submission
    /// journals (`journal-<id>.j1`).
    pub store_dir: PathBuf,
    /// Consecutive `Infra` verdicts that trip a profile's breaker.
    pub breaker_threshold: u32,
    /// Cooldown before a tripped breaker admits a half-open trial.
    pub breaker_cooldown: Duration,
    /// `Retry-After` seconds attached to 429 shed responses.
    pub retry_after_secs: u64,
    /// Telemetry recorder shared by every campaign the server runs.
    pub recorder: obs::Recorder,
}

impl ServeConfig {
    /// Defaults: loopback listener, serial executor, small queue.
    pub fn new(store_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            jobs: 1,
            queue_cap: 8,
            store_dir: store_dir.into(),
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_secs(30),
            retry_after_secs: 2,
            recorder: obs::Recorder::disabled(),
        }
    }
}

/// One campaign submission, as parsed from `POST /v1/submit`.
///
/// The fields mirror `accvv run`'s flags one-for-one so a stored report is
/// byte-identical to the CLI's output for the same parameters.
#[derive(Debug, Clone)]
pub struct SubmissionSpec {
    /// Submitting tenant (fair-scheduling key). Defaults to `"anon"`.
    pub tenant: String,
    /// Weighted-round-robin weight (items per rotation visit, ≥ 1).
    pub weight: u32,
    /// Compiler vendor under test.
    pub vendor: VendorId,
    /// Specific release; `None` = the vendor's latest.
    pub version: Option<CompilerVersion>,
    /// Restrict to one language; `None` = both C and Fortran.
    pub language: Option<Language>,
    /// Feature-prefix selection; empty = the whole suite.
    pub features: Vec<String>,
    /// Cross-test repetition override.
    pub repetitions: Option<u32>,
    /// Report format.
    pub format: ReportFormat,
    /// Execution engine.
    pub exec_mode: ExecMode,
    /// Whole-submission deadline in milliseconds from admission; expired
    /// work is cancelled, not run.
    pub deadline_ms: Option<u64>,
    /// Per-case wall-clock deadline in milliseconds.
    pub case_deadline_ms: Option<u64>,
}

impl SubmissionSpec {
    /// A default submission for `vendor`: latest release, both languages,
    /// whole suite, text report.
    pub fn new(vendor: VendorId) -> Self {
        SubmissionSpec {
            tenant: "anon".to_string(),
            weight: 1,
            vendor,
            version: None,
            language: None,
            features: Vec::new(),
            repetitions: None,
            format: ReportFormat::Text,
            exec_mode: ExecMode::default(),
            deadline_ms: None,
            case_deadline_ms: None,
        }
    }

    /// Resolve the compiler under test, validating the version against the
    /// vendor's release history (same check and message as the CLI).
    pub fn compiler(&self) -> Result<VendorCompiler, String> {
        match self.version {
            Some(version) => {
                if self.vendor.version_index(version).is_none() {
                    return Err(format!(
                        "{} never released {version}; releases: {}",
                        self.vendor.name(),
                        self.vendor
                            .versions()
                            .iter()
                            .map(|v| v.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ));
                }
                Ok(VendorCompiler::new(self.vendor, version))
            }
            None => Ok(VendorCompiler::latest(self.vendor)),
        }
    }

    /// The suite configuration this submission selects — the exact
    /// builder-call sequence `accvv run` performs.
    pub fn suite_config(&self) -> SuiteConfig {
        let mut config = SuiteConfig::new();
        if let Some(lang) = self.language {
            config = config.language(lang);
        }
        if !self.features.is_empty() {
            let prefixes: Vec<&str> = self.features.iter().map(String::as_str).collect();
            config = config.select_prefixes(&prefixes);
        }
        if let Some(m) = self.repetitions {
            config = config.with_repetitions(m);
        }
        config.with_exec_mode(self.exec_mode)
    }

    /// True when `other` selects the exact same execution — compiler,
    /// suite selection, repetitions, engine, and per-case deadline — so
    /// one run's results can be recorded under both ids verbatim. Tenant,
    /// weight, report format, and the whole-submission deadline are
    /// scheduling/presentation concerns and deliberately excluded: the
    /// shared run re-renders in each sharer's own format.
    pub fn same_execution(&self, other: &SubmissionSpec) -> bool {
        self.vendor == other.vendor
            && self.version == other.version
            && self.language == other.language
            && self.features == other.features
            && self.repetitions == other.repetitions
            && self.exec_mode == other.exec_mode
            && self.case_deadline_ms == other.case_deadline_ms
    }

    /// The format's CLI name (`text`/`csv`/`html`), as stored.
    pub fn format_name(&self) -> &'static str {
        match self.format {
            ReportFormat::Text => "text",
            ReportFormat::Csv => "csv",
            ReportFormat::Html => "html",
        }
    }

    /// Parse a submission from a request body. Validation mirrors the CLI:
    /// unknown vendors/languages/formats, unreleased versions, zero
    /// deadlines and zero repetitions are all rejected with the reason.
    pub fn from_json(body: &Json) -> Result<Self, String> {
        if !matches!(body, Json::Obj(_)) {
            return Err("submission must be a JSON object".to_string());
        }
        let vendor_name = str_field(body, "vendor")?
            .ok_or("submission requires `vendor` (caps|pgi|cray|reference)")?;
        let vendor = parse_vendor(vendor_name)?;
        let mut spec = SubmissionSpec::new(vendor);
        if let Some(v) = str_field(body, "version")? {
            spec.version = Some(v.parse().map_err(|e| format!("bad `version`: {e}"))?);
        }
        if let Some(t) = str_field(body, "tenant")? {
            if t.is_empty() {
                return Err("`tenant` must not be empty".to_string());
            }
            spec.tenant = t.to_string();
        }
        if let Some(w) = u64_field(body, "weight")? {
            if w == 0 {
                return Err("`weight` must be at least 1".to_string());
            }
            spec.weight = w.min(u64::from(u32::MAX)) as u32;
        }
        if let Some(l) = str_field(body, "lang")? {
            spec.language = Some(parse_lang(l)?);
        }
        spec.features = features_field(body)?;
        if let Some(m) = u64_field(body, "repetitions")? {
            if m == 0 {
                return Err("`repetitions` must be at least 1".to_string());
            }
            spec.repetitions = Some(m.min(u64::from(u32::MAX)) as u32);
        }
        if let Some(f) = str_field(body, "format")? {
            spec.format = match f {
                "text" => ReportFormat::Text,
                "csv" => ReportFormat::Csv,
                "html" => ReportFormat::Html,
                other => return Err(format!("unknown format `{other}` (text|csv|html)")),
            };
        }
        if let Some(m) = str_field(body, "exec_mode")? {
            spec.exec_mode = ExecMode::from_cli(m)
                .ok_or_else(|| format!("unknown exec mode `{m}` (vm|walk|par[:N])"))?;
        }
        if let Some(ms) = u64_field(body, "deadline_ms")? {
            if ms == 0 {
                return Err("`deadline_ms` of 0 is already expired; omit it or give the \
                            submission time to run"
                    .to_string());
            }
            spec.deadline_ms = Some(ms);
        }
        if let Some(ms) = u64_field(body, "case_deadline_ms")? {
            if ms == 0 {
                return Err("`case_deadline_ms` of 0 would time out every case before it \
                            starts"
                    .to_string());
            }
            spec.case_deadline_ms = Some(ms);
        }
        // Validate the version against the release history now, so a bad
        // submission is a 400 at admission instead of a failed run later.
        spec.compiler()?;
        Ok(spec)
    }
}

fn str_field<'a>(obj: &'a Json, key: &str) -> Result<Option<&'a str>, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a string")),
    }
}

fn u64_field(obj: &Json, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => match v.as_i64() {
            Some(n) if n >= 0 => Ok(Some(n as u64)),
            _ => Err(format!("`{key}` must be a non-negative integer")),
        },
    }
}

/// `features` accepts either a JSON array of strings or one
/// comma-separated string (the CLI's `--features` syntax).
fn features_field(obj: &Json) -> Result<Vec<String>, String> {
    match obj.get("features") {
        None | Some(Json::Null) => Ok(Vec::new()),
        Some(Json::Str(s)) => Ok(s
            .split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(str::to_string)
            .collect()),
        Some(v) => {
            let arr = v
                .as_arr()
                .ok_or("`features` must be an array of strings or a comma-separated string")?;
            arr.iter()
                .map(|e| {
                    e.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "`features` entries must be strings".to_string())
                })
                .collect()
        }
    }
}

fn parse_vendor(s: &str) -> Result<VendorId, String> {
    match s.to_ascii_lowercase().as_str() {
        "caps" => Ok(VendorId::Caps),
        "pgi" => Ok(VendorId::Pgi),
        "cray" => Ok(VendorId::Cray),
        "reference" | "ref" => Ok(VendorId::Reference),
        other => Err(format!("unknown vendor `{other}` (caps|pgi|cray|reference)")),
    }
}

fn parse_lang(s: &str) -> Result<Language, String> {
    match s.to_ascii_lowercase().as_str() {
        "c" => Ok(Language::C),
        "f" | "fortran" => Ok(Language::Fortran),
        other => Err(format!("unknown language `{other}` (c|fortran)")),
    }
}

/// Execution knobs the *server* (not the submitter) controls.
#[derive(Clone, Default)]
pub struct RunOptions {
    /// Worker threads (0 is treated as 1).
    pub jobs: usize,
    /// Shared compile cache; `None` compiles cold.
    pub cache: Option<Arc<CompileCache>>,
    /// Durable per-submission journal.
    pub journal: Option<Arc<FileJournal>>,
    /// Cooperative cancellation (server drain / Ctrl-C).
    pub cancel: Option<Arc<CancelToken>>,
    /// Absolute whole-run deadline.
    pub run_deadline: Option<Instant>,
    /// Telemetry recorder.
    pub recorder: obs::Recorder,
    /// Per-case wall-latency collector. Like the recorder, never affects
    /// results, report bytes, or journal bytes.
    pub latency: Option<LatencyCollector>,
}

/// What one executed submission produced.
pub struct RunOutcome {
    /// The suite run (one row per case × language).
    pub run: SuiteRun,
    /// Executor statistics (cancelled/deadlined/halted flags).
    pub stats: ExecStats,
    /// The rendered report — byte-identical to `accvv run`'s output for
    /// the same submission parameters.
    pub report: String,
}

/// Run one submission. This is the **single execution path** shared by the
/// server and (transitively, same builder-call sequence) the `accvv run`
/// CLI, which is what makes served reports byte-identical to one-shot
/// runs.
pub fn run_submission(spec: &SubmissionSpec, opts: &RunOptions) -> Result<RunOutcome, String> {
    let compiler = spec.compiler()?;
    let mut campaign = Campaign::new(full_suite()).with_config(spec.suite_config());
    if let Some(cache) = &opts.cache {
        campaign = campaign.with_cache(Arc::clone(cache));
    }
    let mut policy = ExecutorPolicy::new()
        .with_jobs(opts.jobs.max(1))
        .with_recorder(opts.recorder.clone())
        .with_exec_mode(spec.exec_mode);
    if let Some(ms) = spec.case_deadline_ms {
        policy = policy.with_deadline_ms(ms);
    }
    if let Some(journal) = &opts.journal {
        policy = policy.with_journal(Arc::clone(journal) as _);
    }
    if let Some(cancel) = &opts.cancel {
        policy = policy.with_cancel(Arc::clone(cancel));
    }
    if let Some(deadline) = opts.run_deadline {
        policy = policy.with_run_deadline(deadline);
    }
    if let Some(latency) = &opts.latency {
        policy = policy.with_latency(latency.clone());
    }
    let (run, stats) = Executor::new(policy).run_suite_stats(&campaign, &compiler);
    let report = report::render(&run, spec.format);
    Ok(RunOutcome { run, stats, report })
}

/// Synthesize the run a tripped circuit breaker degrades to: every
/// selected case × language reports `Skipped(reason)` (uncounted, so the
/// degradation never skews pass rates), in the executor's job order.
pub fn degraded_run(spec: &SubmissionSpec, reason: &str) -> Result<SuiteRun, String> {
    let compiler = spec.compiler()?;
    let campaign = Campaign::new(full_suite()).with_config(spec.suite_config());
    let cases = campaign.materialized_cases();
    let mut results = Vec::new();
    for case in &cases {
        for &lang in &campaign.config.languages {
            results.push(CaseResult {
                name: case.name.clone(),
                feature: case.feature.clone(),
                language: lang,
                status: TestStatus::Skipped(Some(reason.to_string())),
                certainty: None,
                functional_source: String::new(),
                attempts: 0,
            });
        }
    }
    Ok(SuiteRun {
        compiler: compiler.label(),
        results,
    })
}

/// Counters accumulated over a server's lifetime, returned by
/// [`Server::run`] after the drain completes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainSummary {
    /// Submissions admitted into the queue.
    pub admitted: u64,
    /// Submissions shed with 429.
    pub shed: u64,
    /// Submissions that ran to completion.
    pub completed: u64,
    /// Submissions cancelled (deadline expiry, drain) before or mid-run.
    pub cancelled: u64,
    /// Submissions degraded by an open circuit breaker.
    pub degraded: u64,
    /// Of the completed submissions, how many were served by sharing
    /// another identical in-flight submission's execution instead of
    /// running their own (a subset of `completed`).
    pub shared: u64,
}

impl std::fmt::Display for DrainSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "admitted {}, completed {} ({} shared), degraded {}, cancelled {}, shed {}",
            self.admitted, self.completed, self.shared, self.degraded, self.cancelled, self.shed
        )
    }
}

#[derive(Debug, Default)]
struct Gauges {
    admitted: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    degraded: AtomicU64,
    shared: AtomicU64,
}

struct QueuedSubmission {
    spec: SubmissionSpec,
    deadline: Option<Instant>,
}

struct ServerInner {
    config: ServeConfig,
    queue: FairScheduler<u64>,
    pending: Mutex<HashMap<u64, QueuedSubmission>>,
    store: ResultStore,
    cache: Arc<CompileCache>,
    breakers: BreakerSet,
    paused: AtomicBool,
    drain: Arc<CancelToken>,
    counters: Gauges,
    /// Request-latency histograms keyed by normalized endpoint path, for
    /// the `/metrics` exposition.
    http_latency: Mutex<BTreeMap<String, LatencyHist>>,
}

impl ServerInner {
    fn summary(&self) -> DrainSummary {
        DrainSummary {
            admitted: self.counters.admitted.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            cancelled: self.counters.cancelled.load(Ordering::Relaxed),
            degraded: self.counters.degraded.load(Ordering::Relaxed),
            shared: self.counters.shared.load(Ordering::Relaxed),
        }
    }

    fn server_counters(&self) -> ServerCounters {
        ServerCounters {
            queue_depth: self.queue.len() as u64,
            admitted_total: self.counters.admitted.load(Ordering::Relaxed),
            shed_total: self.counters.shed.load(Ordering::Relaxed),
            completed_total: self.counters.completed.load(Ordering::Relaxed),
            cancelled_total: self.counters.cancelled.load(Ordering::Relaxed),
            degraded_total: self.counters.degraded.load(Ordering::Relaxed),
            shared_total: self.counters.shared.load(Ordering::Relaxed),
            breaker_open: self.breakers.open_count() as u64,
            breaker_trips_total: self.breakers.trips_total(),
        }
    }
}

/// The campaign server: bound listener plus shared state.
pub struct Server {
    listener: TcpListener,
    inner: Arc<ServerInner>,
}

impl Server {
    /// Bind the listener and open (or create) the result store.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        std::fs::create_dir_all(&config.store_dir)?;
        let store = ResultStore::open(config.store_dir.join("results.j1"))?;
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let inner = Arc::new(ServerInner {
            queue: FairScheduler::new(config.queue_cap),
            pending: Mutex::new(HashMap::new()),
            store,
            cache: CompileCache::shared(),
            breakers: BreakerSet::new(config.breaker_threshold, config.breaker_cooldown),
            paused: AtomicBool::new(false),
            drain: CancelToken::arc(),
            counters: Gauges::default(),
            http_latency: Mutex::new(BTreeMap::new()),
            config,
        });
        Ok(Server { listener, inner })
    }

    /// The bound address (useful with `…:0`).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The drain token: cancel it (from a signal handler, another thread,
    /// or `POST /v1/drain`) to begin a graceful shutdown.
    pub fn drain_token(&self) -> Arc<CancelToken> {
        Arc::clone(&self.inner.drain)
    }

    /// The process-wide compile cache every submission shares — grab it
    /// before [`Server::run`] (which consumes the server) to report cache
    /// counters after the drain.
    pub fn cache(&self) -> Arc<CompileCache> {
        Arc::clone(&self.inner.cache)
    }

    /// Serve until the drain token trips, then shut down cleanly: stop
    /// admitting, cancel the in-flight run (its journal makes it
    /// resumable), mark queued-unstarted submissions cancelled, and return
    /// the lifetime counters.
    pub fn run(self) -> io::Result<DrainSummary> {
        let inner = Arc::clone(&self.inner);
        let sched_inner = Arc::clone(&self.inner);
        let scheduler = thread::Builder::new()
            .name("accvv-sched".to_string())
            .spawn(move || scheduler_loop(&sched_inner))?;
        let mut conns: Vec<thread::JoinHandle<()>> = Vec::new();
        while !inner.drain.is_cancelled() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let conn_inner = Arc::clone(&inner);
                    if let Ok(handle) = thread::Builder::new()
                        .name("accvv-conn".to_string())
                        .spawn(move || handle_connection(stream, &conn_inner))
                    {
                        conns.push(handle);
                    }
                    conns.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(20));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    eprintln!("accvv serve: accept: {e}");
                    thread::sleep(Duration::from_millis(50));
                }
            }
        }
        // Drain: no new admissions, wake the scheduler, let in-flight
        // connections finish their (short) request/response exchanges.
        self.inner.queue.close();
        for handle in conns {
            let _ = handle.join();
        }
        let _ = scheduler.join();
        Ok(self.inner.summary())
    }
}

fn scheduler_loop(inner: &ServerInner) {
    loop {
        if inner.drain.is_cancelled() {
            break;
        }
        if inner.paused.load(Ordering::SeqCst) {
            thread::sleep(Duration::from_millis(10));
            continue;
        }
        // try_pop, not a blocking pop: a blocking pop started before a
        // pause (or drain) flip would still hand over the next item pushed
        // AFTER the flip, running work the operator believed was frozen.
        // Re-checking both flags before every pop closes that window.
        match inner.queue.try_pop() {
            Some(id) => run_one(inner, id),
            None => {
                if inner.queue.is_closed() {
                    break;
                }
                thread::sleep(Duration::from_millis(10));
            }
        }
    }
    // Queued-but-never-started submissions are cancelled, not silently
    // dropped: the store records why each one never produced a report. Ids
    // no longer pending were already resolved by a shared execution — their
    // stored state stands.
    for id in inner.queue.drain() {
        if inner.pending.lock().expect("pending lock").remove(&id).is_none() {
            continue;
        }
        inner.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        let _ = inner
            .store
            .set_state(id, "cancelled", "server drained before execution");
    }
}

fn run_one(inner: &ServerInner, id: u64) {
    let queued = inner.pending.lock().expect("pending lock").remove(&id);
    let Some(QueuedSubmission { spec, deadline }) = queued else {
        return;
    };
    let Ok(compiler) = spec.compiler() else {
        // Validated at admission; cannot fail here.
        return;
    };
    let scope = compiler.label();
    if deadline.is_some_and(|d| Instant::now() >= d) {
        inner.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        let _ = inner
            .store
            .set_state(id, "cancelled", "deadline expired while queued; not run");
        return;
    }
    match inner.breakers.admit(&scope) {
        BreakerDecision::Degraded { reason } => {
            inner.counters.degraded.fetch_add(1, Ordering::Relaxed);
            match degraded_run(&spec, &reason) {
                Ok(run) => {
                    let text = report::render(&run, spec.format);
                    let _ = inner.store.record_cases(id, &run.results);
                    let _ = inner.store.record_report(id, &text);
                    let _ = inner.store.set_state(id, "degraded", &reason);
                }
                Err(e) => {
                    let _ = inner.store.set_state(id, "failed", &e);
                }
            }
            return;
        }
        BreakerDecision::Admit { .. } => {}
    }
    let _ = inner.store.set_state(id, "running", "");
    let journal_path = inner.config.store_dir.join(format!("journal-{id}.j1"));
    let journal = FileJournal::create(&journal_path).ok().map(Arc::new);
    let latency = LatencyCollector::new();
    let opts = RunOptions {
        jobs: inner.config.jobs,
        cache: Some(Arc::clone(&inner.cache)),
        journal,
        cancel: Some(Arc::clone(&inner.drain)),
        run_deadline: deadline,
        recorder: inner.config.recorder.clone(),
        latency: Some(latency.clone()),
    };
    match run_submission(&spec, &opts) {
        Ok(outcome) => {
            inner
                .breakers
                .observe(&scope, outcome.run.results.iter().map(|r| &r.status));
            let _ = inner.store.record_cases(id, &outcome.run.results);
            // Sharers (below) never record latency — they did not run.
            let _ = inner.store.record_latency(id, &latency.snapshot());
            if outcome.stats.cancelled {
                inner.counters.cancelled.fetch_add(1, Ordering::Relaxed);
                let _ = inner.store.set_state(
                    id,
                    "interrupted",
                    &format!(
                        "server drained mid-run; resume with `accvv run --resume {}`",
                        journal_path.display()
                    ),
                );
            } else if outcome.stats.deadlined {
                inner.counters.cancelled.fetch_add(1, Ordering::Relaxed);
                let _ = inner.store.set_state(
                    id,
                    "cancelled",
                    "deadline expired mid-run; partial verdicts stored",
                );
            } else {
                inner.counters.completed.fetch_add(1, Ordering::Relaxed);
                let _ = inner.store.record_report(id, &outcome.report);
                let _ = inner.store.set_state(id, "done", "");
                share_result(inner, id, &spec, &outcome.run);
            }
        }
        Err(e) => {
            let _ = inner.store.set_state(id, "failed", &e);
        }
    }
}

/// Execution dedup: after `leader`'s run completed cleanly, resolve every
/// still-queued submission that selects the identical execution with the
/// results just produced. The suite is deterministic, so an identical spec
/// yields byte-identical results — each sharer's report is re-rendered in
/// its own format from the shared `SuiteRun`. Sharers stay in the fair
/// queue; when their id is eventually popped, the pending-map miss makes
/// `run_one` a no-op. A sharer whose whole-submission deadline lapsed while
/// queued is cancelled, exactly as if it had been popped.
fn share_result(inner: &ServerInner, leader: u64, spec: &SubmissionSpec, run: &SuiteRun) {
    let sharers: Vec<(u64, QueuedSubmission)> = {
        let mut pending = inner.pending.lock().expect("pending lock");
        let ids: Vec<u64> = pending
            .iter()
            .filter(|(_, q)| q.spec.same_execution(spec))
            .map(|(&sid, _)| sid)
            .collect();
        ids.into_iter()
            .filter_map(|sid| pending.remove(&sid).map(|q| (sid, q)))
            .collect()
    };
    for (sid, q) in sharers {
        if q.deadline.is_some_and(|d| Instant::now() >= d) {
            inner.counters.cancelled.fetch_add(1, Ordering::Relaxed);
            let _ = inner
                .store
                .set_state(sid, "cancelled", "deadline expired while queued; not run");
            continue;
        }
        let text = report::render(run, q.spec.format);
        let _ = inner.store.record_cases(sid, &run.results);
        let _ = inner.store.record_report(sid, &text);
        inner.counters.completed.fetch_add(1, Ordering::Relaxed);
        inner.counters.shared.fetch_add(1, Ordering::Relaxed);
        let _ = inner.store.set_state(
            sid,
            "done",
            &format!("shared execution with submission {leader}"),
        );
    }
}

fn handle_connection(mut stream: TcpStream, inner: &ServerInner) {
    let req = match http::read_request(&mut stream) {
        Ok(r) => r,
        Err(http::RequestError::Bad(msg)) => {
            let _ = error_response(400, &msg).write_to(&mut stream);
            return;
        }
        Err(http::RequestError::TooLarge(msg)) => {
            let _ = error_response(413, &msg).write_to(&mut stream);
            return;
        }
        Err(http::RequestError::Io(_)) => return,
    };
    let started = Instant::now();
    let resp = route(inner, &req);
    let elapsed_us = started.elapsed().as_micros() as u64;
    let label = endpoint_label(&req.path);
    if let Ok(mut map) = inner.http_latency.lock() {
        map.entry(label.to_string()).or_default().record(elapsed_us);
    }
    let _ = resp.write_to(&mut stream);
}

/// Collapse per-id paths into one label per endpoint so the metric's
/// cardinality stays bounded no matter how many submissions exist.
fn endpoint_label(path: &str) -> &str {
    if path.starts_with("/v1/status/") {
        "/v1/status"
    } else if path.starts_with("/v1/report/") {
        "/v1/report"
    } else {
        path
    }
}

const KNOWN_PATHS: [&str; 9] = [
    "/v1/submit",
    "/v1/query",
    "/v1/history",
    "/v1/healthz",
    "/v1/pause",
    "/v1/resume",
    "/v1/drain",
    "/v1/compact",
    "/metrics",
];

fn route(inner: &ServerInner, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/submit") => handle_submit(inner, req),
        ("GET", "/v1/query") => handle_query(inner, req),
        ("GET", "/v1/history") => handle_history(inner, req),
        ("GET", "/v1/healthz") => handle_health(inner),
        ("GET", "/metrics") => handle_metrics(inner),
        ("POST", "/v1/pause") => {
            inner.paused.store(true, Ordering::SeqCst);
            Response::json(200, "{\"state\":\"paused\"}".to_string())
        }
        ("POST", "/v1/resume") => {
            inner.paused.store(false, Ordering::SeqCst);
            Response::json(200, "{\"state\":\"serving\"}".to_string())
        }
        ("POST", "/v1/drain") => {
            inner.drain.cancel();
            Response::json(202, "{\"state\":\"draining\"}".to_string())
        }
        ("POST", "/v1/compact") => handle_compact(inner),
        ("GET", path) if path.starts_with("/v1/status/") => {
            handle_status(inner, &path["/v1/status/".len()..])
        }
        ("GET", path) if path.starts_with("/v1/report/") => {
            handle_report(inner, &path["/v1/report/".len()..])
        }
        (_, path)
            if KNOWN_PATHS.contains(&path)
                || path.starts_with("/v1/status/")
                || path.starts_with("/v1/report/") =>
        {
            error_response(405, &format!("{} not allowed on {path}", req.method))
        }
        (_, path) => error_response(404, &format!("no such endpoint `{path}`")),
    }
}

fn handle_submit(inner: &ServerInner, req: &Request) -> Response {
    if inner.drain.is_cancelled() {
        return error_response(503, "server is draining; not accepting submissions");
    }
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return error_response(400, "body is not UTF-8"),
    };
    let parsed = match json::parse(body) {
        Ok(j) => j,
        Err(e) => return error_response(400, &format!("bad JSON: {e}")),
    };
    let spec = match SubmissionSpec::from_json(&parsed) {
        Ok(s) => s,
        Err(e) => return error_response(400, &e),
    };
    let scope = match spec.compiler() {
        Ok(c) => c.label(),
        Err(e) => return error_response(400, &e),
    };
    let deadline = spec
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let id = match inner.store.begin(&spec.tenant, &scope, spec.format_name()) {
        Ok(id) => id,
        Err(e) => return error_response(500, &format!("result store: {e}")),
    };
    let tenant = spec.tenant.clone();
    let weight = spec.weight;
    inner
        .pending
        .lock()
        .expect("pending lock")
        .insert(id, QueuedSubmission { spec, deadline });
    match inner.queue.push(&tenant, weight, id) {
        Ok(depth) => {
            inner.counters.admitted.fetch_add(1, Ordering::Relaxed);
            Response::json(
                202,
                format!("{{\"id\":{id},\"state\":\"queued\",\"queue_depth\":{depth}}}"),
            )
        }
        Err(PushError::Full(depth)) => {
            inner.pending.lock().expect("pending lock").remove(&id);
            inner.counters.shed.fetch_add(1, Ordering::Relaxed);
            let _ = inner
                .store
                .set_state(id, "shed", &format!("queue full at depth {depth}"));
            error_response(429, &format!("queue full at depth {depth}; retry later"))
                .with_header("Retry-After", inner.config.retry_after_secs.to_string())
        }
        Err(PushError::Closed) => {
            inner.pending.lock().expect("pending lock").remove(&id);
            let _ = inner
                .store
                .set_state(id, "cancelled", "server draining before admission");
            error_response(503, "server is draining; not accepting submissions")
        }
    }
}

fn handle_status(inner: &ServerInner, id_str: &str) -> Response {
    let Ok(id) = id_str.parse::<u64>() else {
        return error_response(400, "submission id must be an integer");
    };
    let Some(sub) = inner.store.submission(id) else {
        return error_response(404, &format!("no submission {id}"));
    };
    Response::json(
        200,
        format!(
            "{{\"id\":{},\"tenant\":{},\"scope\":{},\"format\":{},\"epoch\":{},\"state\":{},\
             \"detail\":{},\"cases\":{},\"report_ready\":{}}}",
            sub.id,
            jstr(&sub.tenant),
            jstr(&sub.scope),
            jstr(&sub.format),
            sub.epoch,
            jstr(&sub.state),
            jstr(&sub.detail),
            sub.cases.len(),
            sub.report.is_some(),
        ),
    )
}

fn handle_report(inner: &ServerInner, id_str: &str) -> Response {
    let Ok(id) = id_str.parse::<u64>() else {
        return error_response(400, "submission id must be an integer");
    };
    let Some(sub) = inner.store.submission(id) else {
        return error_response(404, &format!("no submission {id}"));
    };
    match sub.report {
        Some(text) => {
            let content_type = match sub.format.as_str() {
                "csv" => "text/csv; charset=utf-8",
                "html" => "text/html; charset=utf-8",
                _ => "text/plain; charset=utf-8",
            };
            Response::text(200, text).with_content_type(content_type)
        }
        None => Response::json(
            409,
            format!(
                "{{\"error\":\"report not ready\",\"id\":{id},\"state\":{}}}",
                jstr(&sub.state)
            ),
        ),
    }
}

/// Parse an epoch-seconds bound query parameter; `Err` carries the 400.
fn epoch_param(req: &Request, name: &str, default: u64) -> Result<u64, Response> {
    match req.query_param(name) {
        None | Some("") => Ok(default),
        Some(raw) => raw.parse().map_err(|_| {
            error_response(
                400,
                &format!("`{name}` must be a non-negative epoch-seconds integer, got {raw:?}"),
            )
        }),
    }
}

fn handle_query(inner: &ServerInner, req: &Request) -> Response {
    let since = match epoch_param(req, "since", 0) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let until = match epoch_param(req, "until", u64::MAX) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    if since > until {
        return error_response(400, "`since` is after `until`: the window is empty");
    }
    let filter = QueryFilter {
        scope: req.query_param("scope").unwrap_or("").to_string(),
        feature: req.query_param("feature").unwrap_or("").to_string(),
        language: req.query_param("lang").unwrap_or("").to_string(),
        tenant: req.query_param("tenant").unwrap_or("").to_string(),
        since,
        until,
    };
    let rows = inner.store.query(&filter);
    let mut body = String::from("{\"rows\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"scope\":{},\"lang\":{},\"feature\":{},\"total\":{},\"passed\":{},\
             \"pass_rate\":{:.2}}}",
            jstr(&row.scope),
            jstr(&row.language),
            jstr(&row.feature),
            row.total,
            row.passed,
            row.pass_rate(),
        ));
    }
    body.push_str("]}");
    Response::json(200, body)
}

/// `GET /v1/history`: fold the store into a time-bucketed pass-rate
/// series. `bucket` is the width in seconds (default 3600), `by` the
/// grouping dimension (`profile`|`feature`|`tenant`|`lang`, default
/// `profile`), `since`/`until` the inclusive epoch window, `tenant` and
/// `scope` the usual filters. The series depends only on store contents:
/// it is identical across worker counts, compaction, and restarts.
fn handle_history(inner: &ServerInner, req: &Request) -> Response {
    let since = match epoch_param(req, "since", 0) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let until = match epoch_param(req, "until", u64::MAX) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    if since > until {
        return error_response(400, "`since` is after `until`: the window is empty");
    }
    let bucket = match epoch_param(req, "bucket", 3600) {
        Ok(0) => return error_response(400, "`bucket` must be a positive number of seconds"),
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let by = match req.query_param("by") {
        None | Some("") => GroupBy::Profile,
        Some(raw) => match GroupBy::parse(raw) {
            Some(by) => by,
            None => {
                return error_response(
                    400,
                    &format!("`by` must be profile|feature|tenant|lang, got {raw:?}"),
                )
            }
        },
    };
    let hreq = HistoryRequest {
        bucket,
        since,
        until,
        by,
        tenant: req.query_param("tenant").unwrap_or("").to_string(),
        scope: req.query_param("scope").unwrap_or("").to_string(),
    };
    let rows = history(&inner.store, &hreq);
    let mut body = format!("{{\"bucket\":{bucket},\"by\":\"{}\",\"series\":[", by.as_str());
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let c = &row.counts;
        body.push_str(&format!(
            "{{\"bucket\":{},\"key\":{},\"pass\":{},\"flaky\":{},\"fail\":{},\
             \"skip\":{},\"pass_rate\":{:.2}",
            row.bucket,
            jstr(&row.key),
            c.pass,
            c.flaky,
            c.fail,
            c.skip,
            c.pass_rate(),
        ));
        if !row.latency.is_empty() {
            body.push_str(&format!(
                ",\"p50_us\":{},\"p90_us\":{},\"p99_us\":{}",
                row.latency.quantile_us(0.5),
                row.latency.quantile_us(0.9),
                row.latency.quantile_us(0.99),
            ));
        }
        body.push('}');
    }
    body.push_str("]}");
    Response::json(200, body)
}

/// `POST /v1/compact`: rewrite the live result store into a fresh
/// generation and reclaim the dead bytes. Safe at any time — the store
/// lock serializes compaction against in-flight appends, queries are
/// answered from the index and are byte-identical before and after, and a
/// draining server may compact as its last act before shutdown.
fn handle_compact(inner: &ServerInner) -> Response {
    match inner.store.compact() {
        Ok(stats) => Response::json(
            200,
            format!(
                "{{\"generation\":{},\"old_bytes\":{},\"new_bytes\":{},\
                 \"reclaimed_bytes\":{},\"live_submissions\":{}}}",
                stats.generation,
                stats.old_bytes,
                stats.new_bytes,
                stats.old_bytes.saturating_sub(stats.new_bytes),
                stats.live_submissions,
            ),
        ),
        Err(e) => error_response(500, &format!("compaction failed: {e}")),
    }
}

fn handle_health(inner: &ServerInner) -> Response {
    let state = if inner.drain.is_cancelled() {
        "draining"
    } else if inner.paused.load(Ordering::SeqCst) {
        "paused"
    } else {
        "serving"
    };
    let s = inner.summary();
    let mut breakers = String::from("[");
    for (i, (profile, bstate, trips)) in inner.breakers.snapshot().iter().enumerate() {
        if i > 0 {
            breakers.push(',');
        }
        breakers.push_str(&format!(
            "{{\"profile\":{},\"state\":{},\"trips\":{trips}}}",
            jstr(profile),
            jstr(bstate.label())
        ));
    }
    breakers.push(']');
    Response::json(
        200,
        format!(
            "{{\"state\":\"{state}\",\"queue_depth\":{},\"admitted\":{},\"shed\":{},\
             \"completed\":{},\"shared\":{},\"cancelled\":{},\"degraded\":{},\
             \"breakers\":{breakers}}}",
            inner.queue.len(),
            s.admitted,
            s.shed,
            s.completed,
            s.shared,
            s.cancelled,
            s.degraded,
        ),
    )
}

fn handle_metrics(inner: &ServerInner) -> Response {
    let events = inner.config.recorder.snapshot();
    let stats = inner.cache.stats();
    let cache = CacheCounters {
        frontend_hits: stats.frontend_hits,
        frontend_misses: stats.frontend_misses,
        exec_hits: stats.exec_hits,
        exec_misses: stats.exec_misses,
    };
    let mut text = render_prometheus(&events, Some(&cache));
    text.push_str(&render_server_metrics(&inner.server_counters()));
    let breakers: Vec<(String, String, u64)> = inner
        .breakers
        .snapshot()
        .into_iter()
        .map(|(profile, state, trips)| (profile, state.label().to_string(), trips))
        .collect();
    text.push_str(&render_breakers(&breakers));
    if let Ok(map) = inner.http_latency.lock() {
        text.push_str(&render_http_latency(&map));
    }
    Response::text(200, text).with_content_type("text/plain; version=0.0.4")
}

fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    json::escape_into(&mut out, s);
    out.push('"');
    out
}

fn error_response(status: u16, message: &str) -> Response {
    Response::json(status, format!("{{\"error\":{}}}", jstr(message)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_spec(body: &str) -> Result<SubmissionSpec, String> {
        SubmissionSpec::from_json(&json::parse(body).expect("valid JSON"))
    }

    #[test]
    fn from_json_parses_a_full_submission() {
        let spec = parse_spec(
            r#"{"vendor":"pgi","version":"13.4","tenant":"alice","weight":3,
                "lang":"c","features":["data.","loop"],"repetitions":5,
                "format":"csv","exec_mode":"walk","deadline_ms":60000,
                "case_deadline_ms":2000}"#,
        )
        .unwrap();
        assert_eq!(spec.vendor, VendorId::Pgi);
        assert_eq!(spec.tenant, "alice");
        assert_eq!(spec.weight, 3);
        assert_eq!(spec.language, Some(Language::C));
        assert_eq!(spec.features, vec!["data.".to_string(), "loop".to_string()]);
        assert_eq!(spec.repetitions, Some(5));
        assert_eq!(spec.format, ReportFormat::Csv);
        assert_eq!(spec.deadline_ms, Some(60_000));
        assert_eq!(spec.case_deadline_ms, Some(2_000));
        assert_eq!(spec.compiler().unwrap().label(), "PGI 13.4");
    }

    #[test]
    fn from_json_accepts_comma_separated_features() {
        let spec = parse_spec(r#"{"vendor":"caps","features":"data., loop"}"#).unwrap();
        assert_eq!(spec.features, vec!["data.".to_string(), "loop".to_string()]);
    }

    #[test]
    fn from_json_rejects_bad_inputs_with_reasons() {
        for (body, needle) in [
            (r#"{}"#, "requires `vendor`"),
            (r#"{"vendor":"intel"}"#, "unknown vendor"),
            (r#"{"vendor":"pgi","version":"99.9"}"#, "never released"),
            (r#"{"vendor":"pgi","lang":"cobol"}"#, "unknown language"),
            (r#"{"vendor":"pgi","format":"pdf"}"#, "unknown format"),
            (r#"{"vendor":"pgi","weight":0}"#, "`weight`"),
            (r#"{"vendor":"pgi","deadline_ms":0}"#, "`deadline_ms`"),
            (
                r#"{"vendor":"pgi","case_deadline_ms":0}"#,
                "`case_deadline_ms`",
            ),
            (r#"{"vendor":"pgi","repetitions":0}"#, "`repetitions`"),
            (r#"[1,2]"#, "JSON object"),
        ] {
            let err = parse_spec(body).expect_err(body);
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn same_execution_ignores_scheduling_and_presentation_fields() {
        let a = parse_spec(
            r#"{"vendor":"pgi","version":"13.4","lang":"c","features":["loop"],
                "repetitions":3,"exec_mode":"par:2","case_deadline_ms":500,
                "tenant":"alice","weight":9,"format":"csv","deadline_ms":1000}"#,
        )
        .unwrap();
        let mut b = a.clone();
        b.tenant = "bob".to_string();
        b.weight = 1;
        b.format = ReportFormat::Html;
        b.deadline_ms = None;
        assert!(
            a.same_execution(&b) && b.same_execution(&a),
            "tenant, weight, format and whole-submission deadline must not defeat dedup"
        );
        // Every execution-relevant field breaks the match on its own.
        let mut c = a.clone();
        c.version = None;
        assert!(!a.same_execution(&c), "version is execution-relevant");
        let mut c = a.clone();
        c.language = None;
        assert!(!a.same_execution(&c), "language is execution-relevant");
        let mut c = a.clone();
        c.features = vec!["data.".to_string()];
        assert!(!a.same_execution(&c), "feature selection is execution-relevant");
        let mut c = a.clone();
        c.repetitions = None;
        assert!(!a.same_execution(&c), "repetitions are execution-relevant");
        let mut c = a.clone();
        c.exec_mode = ExecMode::Walk;
        assert!(!a.same_execution(&c), "engine choice is execution-relevant");
        let mut c = a.clone();
        c.case_deadline_ms = None;
        assert!(!a.same_execution(&c), "per-case deadline is execution-relevant");
    }

    #[test]
    fn degraded_run_skips_every_selected_case() {
        let suite = full_suite();
        let prefix = suite[0].feature.as_str().to_string();
        let mut spec = SubmissionSpec::new(VendorId::Reference);
        spec.features = vec![prefix];
        spec.language = Some(Language::C);
        let run = degraded_run(&spec, "circuit open for test").unwrap();
        assert!(!run.results.is_empty());
        for r in &run.results {
            assert_eq!(
                r.status,
                TestStatus::Skipped(Some("circuit open for test".to_string()))
            );
            assert!(!r.status.counted());
        }
    }

    #[test]
    fn run_submission_reports_are_cache_independent() {
        let suite = full_suite();
        let prefix = suite[0].feature.as_str().to_string();
        let mut spec = SubmissionSpec::new(VendorId::Reference);
        spec.features = vec![prefix];
        spec.language = Some(Language::C);
        let warm = run_submission(
            &spec,
            &RunOptions {
                cache: Some(CompileCache::shared()),
                ..RunOptions::default()
            },
        )
        .unwrap();
        let cold = run_submission(&spec, &RunOptions::default()).unwrap();
        assert_eq!(warm.report, cold.report, "cache must not change report bytes");
        assert!(!warm.stats.stopped_early());
    }
}
