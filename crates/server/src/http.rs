//! Minimal HTTP/1.1 over `std::net` — just enough for the campaign API.
//!
//! The build container has no registry access, so there is no hyper/axum;
//! this is the same philosophy as the stubs/ crates: a small, correct
//! subset. One request per connection (`Connection: close` on every
//! response), bounded header and body sizes (oversized requests are
//! rejected, not buffered — the server's first overload defence is refusing
//! to read without bound), and a plain response writer.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest accepted request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Per-connection socket read timeout.
pub const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path without the query string, e.g. `/v1/submit`.
    pub path: String,
    /// Decoded `key=value` query pairs, in order. (No percent-decoding —
    /// the campaign API's values are plain identifiers.)
    pub query: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First query value for `key`.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed; maps to the response the caller
/// should send.
#[derive(Debug)]
pub enum RequestError {
    /// Malformed request line or headers → 400.
    Bad(String),
    /// Head or body over the size caps → 413.
    TooLarge(String),
    /// Socket error / timeout / early close → drop the connection.
    Io(io::Error),
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        RequestError::Io(e)
    }
}

/// Read and parse one request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, RequestError> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    // Read until the blank line ending the head, never past MAX_HEAD_BYTES.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(RequestError::TooLarge(format!(
                "request head over {MAX_HEAD_BYTES} bytes"
            )));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(RequestError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before request head",
            )));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| RequestError::Bad("request head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RequestError::Bad("empty request line".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| RequestError::Bad("request line has no target".into()))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };
    let mut content_length = 0usize;
    for line in lines {
        if let Some((key, value)) = line.split_once(':') {
            if key.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| RequestError::Bad("bad Content-Length".into()))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(RequestError::TooLarge(format!(
            "body of {content_length} bytes over the {MAX_BODY_BYTES} cap"
        )));
    }
    // Body bytes already read past the head, then the remainder.
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(RequestError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            )));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect()
}

/// A response under construction.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the standard set.
    pub headers: Vec<(String, String)>,
    /// Content type.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            headers: Vec::new(),
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            headers: Vec::new(),
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
        }
    }

    /// Add a header.
    pub fn with_header(mut self, key: &str, value: String) -> Self {
        self.headers.push((key.to_string(), value));
        self
    }

    /// Override the content type.
    pub fn with_content_type(mut self, ct: &'static str) -> Self {
        self.content_type = ct;
        self
    }

    /// Serialize and write the response; the connection always closes.
    pub fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        let reason = reason_phrase(self.status);
        let mut head = format!(
            "HTTP/1.1 {} {reason}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            self.content_type,
            self.body.len()
        );
        for (k, v) in &self.headers {
            head.push_str(k);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn round_trip(raw: &[u8]) -> Result<Request, RequestError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            s.flush().unwrap();
            s // keep alive until reader is done
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream);
        drop(writer.join().unwrap());
        req
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let req = round_trip(
            b"POST /v1/submit?tenant=alice&dry= HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/submit");
        assert_eq!(req.query_param("tenant"), Some("alice"));
        assert_eq!(req.query_param("dry"), Some(""));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(req.body, b"{\"a\":1}");
    }

    #[test]
    fn parses_get_without_body() {
        let req = round_trip(b"GET /v1/healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn oversized_body_is_rejected_not_buffered() {
        let raw = format!(
            "POST /v1/submit HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        match round_trip(raw.as_bytes()) {
            Err(RequestError::TooLarge(_)) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn garbage_request_line_is_bad() {
        match round_trip(b"\r\n\r\n") {
            Err(RequestError::Bad(_)) => {}
            other => panic!("expected Bad, got {other:?}"),
        }
    }

    #[test]
    fn response_serializes_with_connection_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            Response::json(429, "{\"error\":\"queue full\"}".to_string())
                .with_header("Retry-After", "2".to_string())
                .write_to(&mut stream)
                .unwrap();
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        server.join().unwrap();
        assert!(out.starts_with("HTTP/1.1 429 Too Many Requests\r\n"), "{out}");
        assert!(out.contains("Connection: close\r\n"));
        assert!(out.contains("Retry-After: 2\r\n"));
        assert!(out.ends_with("{\"error\":\"queue full\"}"));
    }
}
