//! The statistical certainty model of §III.
//!
//! "if `nf` is the number of failed cross tests and `M` the total number of
//! iterations, the probability that the test will fail is `p = nf/M`. Thus
//! the probability that an incorrect implementation passes the test is
//! `pa = (1 − p)^M`, and the certainty of test is `pc = 1 − pa`. … if the
//! probability is 100%, we conclude that the test passed."

use std::fmt;

/// The certainty computation for one feature's repeated cross runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Certainty {
    /// Total cross-test iterations (M).
    pub m: u32,
    /// Failed (i.e. correctly-discriminating) cross iterations (nf).
    pub nf: u32,
}

impl Certainty {
    /// Build from iteration counts. Panics when `nf > m` or `m == 0`.
    pub fn new(m: u32, nf: u32) -> Self {
        assert!(m > 0, "certainty requires at least one iteration");
        assert!(nf <= m, "cannot fail more iterations than were run");
        Certainty { m, nf }
    }

    /// `p = nf / M` — per-iteration cross failure probability.
    pub fn p(&self) -> f64 {
        self.nf as f64 / self.m as f64
    }

    /// `pa = (1 - p)^M` — probability an incorrect implementation passes
    /// accidentally.
    pub fn pa(&self) -> f64 {
        (1.0 - self.p()).powi(self.m as i32)
    }

    /// `pc = 1 - pa` — certainty that the directive is validated.
    pub fn pc(&self) -> f64 {
        1.0 - self.pa()
    }

    /// The paper's acceptance criterion: certainty is exactly 100%, i.e.
    /// every cross iteration produced an incorrect result.
    pub fn validated(&self) -> bool {
        self.nf == self.m
    }

    /// Fold an executor retry series into the same machinery: `attempts`
    /// plays M and `failures` plays nf, so [`Certainty::p`] becomes the
    /// observed flake rate of the case. Panics under the same bounds as
    /// [`Certainty::new`].
    pub fn from_attempts(attempts: u32, failures: u32) -> Self {
        Certainty::new(attempts, failures)
    }

    /// Observed flake rate for an attempt-series certainty — an alias of
    /// [`Certainty::p`] with retry-flavoured naming.
    pub fn flake_rate(&self) -> f64 {
        self.p()
    }
}

impl fmt::Display for Certainty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "M={}, nf={}, p={:.3}, pa={:.3}, pc={:.1}%",
            self.m,
            self.nf,
            self.p(),
            self.pa(),
            self.pc() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cross_failures_give_full_certainty() {
        let c = Certainty::new(5, 5);
        assert_eq!(c.p(), 1.0);
        assert_eq!(c.pa(), 0.0);
        assert_eq!(c.pc(), 1.0);
        assert!(c.validated());
    }

    #[test]
    fn no_cross_failures_give_zero_certainty() {
        let c = Certainty::new(5, 0);
        assert_eq!(c.p(), 0.0);
        assert_eq!(c.pa(), 1.0);
        assert_eq!(c.pc(), 0.0);
        assert!(!c.validated());
    }

    #[test]
    fn partial_failures_are_not_validated() {
        // Even high certainty below 100% does not validate (the paper
        // requires exactly 100%).
        let c = Certainty::new(10, 9);
        assert!(c.pc() > 0.99);
        assert!(!c.validated());
    }

    #[test]
    fn formula_matches_paper() {
        let c = Certainty::new(4, 2);
        assert!((c.p() - 0.5).abs() < 1e-12);
        assert!((c.pa() - 0.0625).abs() < 1e-12); // (1-0.5)^4
        assert!((c.pc() - 0.9375).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_panic() {
        Certainty::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "cannot fail more")]
    fn nf_bounded_by_m() {
        Certainty::new(3, 4);
    }

    #[test]
    fn attempt_series_flake_rate() {
        // 1 failing attempt out of 3 → flake rate 1/3; never "validated"
        // in the cross-test sense unless every attempt failed.
        let c = Certainty::from_attempts(3, 1);
        assert!((c.flake_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!(!c.validated());
    }

    #[test]
    fn display_format() {
        let s = Certainty::new(3, 3).to_string();
        assert!(s.contains("pc=100.0%"), "{s}");
    }
}
