//! Result analysis: attribute observed test failures to catalogued bugs.
//!
//! The paper's result analyzer does more than count failures — it reports
//! "the possible reasons of failure" (§III). This module closes the loop
//! between a campaign run and the bug catalog: every failing feature is
//! matched against the catalog records active for the release under test,
//! either directly (a record names that feature) or as *collateral* of a
//! broader defect (e.g. one broken async runtime fails a dozen async
//! tests). Failures with no catalogued explanation are flagged — on the
//! simulated vendors that set is empty, which is itself a strong
//! consistency check between the catalog and the corpus.

use crate::campaign::SuiteRun;
use acc_compiler::bugs::{BugCatalog, BugRecord};
use acc_compiler::VendorId;
use acc_spec::version::CompilerVersion;
use acc_spec::{FeatureId, Language};
use std::fmt::Write as _;

/// How a failing feature relates to the catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Attribution {
    /// A catalog record names exactly this feature.
    Direct {
        /// Record id.
        bug_id: String,
        /// Record description.
        description: String,
    },
    /// No record names the feature, but an active record's defect plausibly
    /// covers it (same defect family — async, reduction operator, directive
    /// rejection…).
    Collateral {
        /// Record id of the broader defect.
        bug_id: String,
        /// Record description.
        description: String,
    },
    /// No catalogued explanation — either a corpus bug or a genuinely new
    /// compiler defect (what the paper would file upstream).
    Unexplained,
}

/// One failing feature with its attribution.
#[derive(Debug, Clone)]
pub struct AttributedFailure {
    /// Feature that failed.
    pub feature: FeatureId,
    /// Language variant.
    pub language: Language,
    /// Attribution.
    pub attribution: Attribution,
}

/// Attribute every failure in `run` against the catalog entries active for
/// `vendor`/`version`.
pub fn attribute(
    run: &SuiteRun,
    catalog: &BugCatalog,
    vendor: VendorId,
    version: CompilerVersion,
) -> Vec<AttributedFailure> {
    let mut out = Vec::new();
    for lang in [Language::C, Language::Fortran] {
        let active = catalog.active(vendor, version, lang);
        for feature in run.failing_features(lang) {
            let attribution = attribute_one(&feature, &active);
            out.push(AttributedFailure {
                feature,
                language: lang,
                attribution,
            });
        }
    }
    out
}

fn attribute_one(feature: &FeatureId, active: &[&BugRecord]) -> Attribution {
    // Direct: a record names this feature.
    if let Some(r) = active.iter().find(|r| r.feature == *feature) {
        return Attribution::Direct {
            bug_id: r.id.clone(),
            description: r.description.clone(),
        };
    }
    // Collateral: an active record's defect family covers the feature.
    if let Some(r) = active.iter().find(|r| covers(r, feature)) {
        return Attribution::Collateral {
            bug_id: r.id.clone(),
            description: r.description.clone(),
        };
    }
    Attribution::Unexplained
}

/// Does an active record's defect plausibly explain a failure of `feature`?
fn covers(record: &BugRecord, feature: &FeatureId) -> bool {
    use acc_device::Defect;
    let f = feature.as_str();
    match &record.defect {
        // A broken async runtime fails anything async-flavoured.
        Defect::AsyncFamilyBroken => {
            f.contains("async") || f == "wait" || f.starts_with("combo.async")
        }
        // A wrong reduction combiner fails every operand-type variant of the
        // operator, plus reduction-bearing combination tests.
        Defect::WrongReduction(op) => {
            f.starts_with(&format!("loop.reduction.{}.", op.ident())) || f.contains("reduction")
        }
        // A rejected or ignored directive fails every feature under it.
        Defect::CompileError(dir, None) | Defect::IgnoreDirective(dir) => {
            f.starts_with(&dir.name().replace(' ', "_"))
        }
        // A rejected clause fails any test whose program uses that pair —
        // approximated by the feature prefix.
        Defect::CompileError(dir, Some(clause)) => {
            let dir_prefix = dir.name().replace(' ', "_");
            f.starts_with(&dir_prefix) || f.contains(clause.name())
        }
        Defect::IgnoreClause(dir, clause) => {
            let dir_prefix = dir.name().replace(' ', "_");
            (f.starts_with(&dir_prefix) && f.contains(clause.name())) || f.contains(clause.name())
        }
        Defect::ScalarCopyOmitted => f.contains("scalar") || f.contains("copy"),
        Defect::EliminateDeadComputeRegions => f.contains("copyout"),
        Defect::UpdateNoop => f.starts_with("update") || f.contains("update"),
        Defect::FirstprivateUninitialized => f.contains("firstprivate"),
        Defect::PrivateAliasesShared => f.contains("private"),
        Defect::RejectVariableSizingExpr => {
            f.contains("num_gangs") || f.contains("num_workers") || f.contains("vector_length")
        }
        Defect::RoutineReturnsConstant(r, _) | Defect::RejectRoutine(r) => {
            f.contains(r.symbol()) || f.starts_with("rt.")
        }
        Defect::HangOnClause(dir, clause) => {
            let dir_prefix = dir.name().replace(' ', "_");
            f.starts_with(&dir_prefix) || f.contains(clause.name())
        }
        Defect::CollapseIgnoresInner => f.contains("collapse"),
        // Transient infrastructure faults are not compiler bugs: they can
        // hit any feature, so they never *explain* a deterministic failure.
        Defect::TransientMemcpyFault { .. } | Defect::IntermittentAsyncStall { .. } => false,
    }
}

/// Render an attribution report.
pub fn render_attribution(failures: &[AttributedFailure]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "FAILURE ATTRIBUTION ({} failing feature variants)",
        failures.len()
    );
    for f in failures {
        match &f.attribution {
            Attribution::Direct {
                bug_id,
                description,
            } => {
                let _ = writeln!(
                    s,
                    "  {:<38} [{}] {bug_id}: {description}",
                    f.feature.as_str(),
                    f.language.letter()
                );
            }
            Attribution::Collateral {
                bug_id,
                description,
            } => {
                let _ = writeln!(
                    s,
                    "  {:<38} [{}] collateral of {bug_id}: {description}",
                    f.feature.as_str(),
                    f.language.letter()
                );
            }
            Attribution::Unexplained => {
                let _ = writeln!(
                    s,
                    "  {:<38} [{}] UNEXPLAINED — candidate new bug report",
                    f.feature.as_str(),
                    f.language.letter()
                );
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use acc_compiler::VendorCompiler;

    fn mini_suite() -> Vec<crate::case::TestCase> {
        // Reuse a couple of corpus-shaped cases built inline (avoiding a
        // dev-dependency cycle on acc-testsuite).
        use crate::cross::CrossRule;
        use acc_ast::builder as b;
        use acc_ast::{Expr, Program};
        let async_base = Program::simple(
            "rt.acc_async_test",
            Language::C,
            vec![
                b::decl_int("error", 0),
                b::decl_int("t", -1),
                b::decl_array("A", acc_ast::ScalarType::Int, 32),
                b::for_upto(
                    "i",
                    Expr::int(32),
                    vec![b::set1("A", Expr::var("i"), Expr::int(0))],
                ),
                b::parallel_region(
                    vec![
                        b::copy_sec("A", Expr::int(32)),
                        acc_ast::AccClause::Async(Some(Expr::int(4))),
                    ],
                    vec![b::acc_loop(
                        vec![],
                        "i",
                        Expr::int(32),
                        vec![b::add1("A", Expr::var("i"), Expr::int(1))],
                    )],
                ),
                b::set("t", Expr::call("acc_async_test", vec![Expr::int(4)])),
                b::if_then(
                    Expr::ne(Expr::var("t"), Expr::int(0)),
                    vec![b::bump_error()],
                ),
                b::wait(Some(Expr::int(4))),
                b::return_error_check(),
            ],
        );
        vec![crate::case::TestCase::new(
            "rt.acc_async_test",
            "rt.acc_async_test",
            async_base,
            Some(CrossRule::RemoveClause(
                acc_spec::DirectiveKind::Parallel,
                acc_spec::ClauseKind::Async,
            )),
            "async test",
        )]
    }

    #[test]
    fn pgi_async_failure_attributes_directly() {
        let catalog = BugCatalog::paper();
        let version: CompilerVersion = "13.8".parse().unwrap();
        let compiler = VendorCompiler::new(VendorId::Pgi, version);
        let run = Campaign::new(mini_suite()).run_one(&compiler);
        let failures = attribute(&run, &catalog, VendorId::Pgi, version);
        assert!(!failures.is_empty());
        for f in &failures {
            assert!(matches!(f.attribution, Attribution::Direct { .. }), "{f:?}");
        }
        let text = render_attribution(&failures);
        assert!(text.contains("rt.acc_async_test"), "{text}");
        assert!(!text.contains("UNEXPLAINED"), "{text}");
    }

    #[test]
    fn clean_compiler_has_no_failures_to_attribute() {
        let catalog = BugCatalog::paper();
        let compiler = VendorCompiler::reference();
        let run = Campaign::new(mini_suite()).run_one(&compiler);
        let failures = attribute(
            &run,
            &catalog,
            VendorId::Reference,
            "1.0.0".parse().unwrap(),
        );
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn unexplained_failures_are_flagged() {
        // Run the async test against a compiler with a defect the catalog
        // does NOT list for it (an extra harness-style defect).
        let catalog = BugCatalog::paper();
        let version: CompilerVersion = "3.3.4".parse().unwrap();
        let compiler = VendorCompiler::new(VendorId::Caps, version)
            .with_extra_defect(acc_device::Defect::AsyncFamilyBroken);
        let run = Campaign::new(mini_suite()).run_one(&compiler);
        let failures = attribute(&run, &catalog, VendorId::Caps, version);
        assert!(!failures.is_empty());
        assert!(
            failures
                .iter()
                .all(|f| f.attribution == Attribution::Unexplained),
            "{failures:?}"
        );
        let text = render_attribution(&failures);
        assert!(text.contains("UNEXPLAINED"));
    }
}
