//! Result analysis and report generation.
//!
//! §III: "After all the tests are executed, a full report will be generated
//! demonstrating the result for each of the features. We append the bug
//! reports with code snippets for vendors' convenience. We can generate the
//! validation results in any of the formats such as plain text, HTML and
//! CSV."

use crate::campaign::SuiteRun;
use crate::case::TestStatus;
use acc_spec::Language;
use std::fmt::Write;

/// Output format of a generated report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFormat {
    /// Plain text.
    Text,
    /// Comma-separated values.
    Csv,
    /// Self-contained HTML.
    Html,
}

/// Render a suite run in the requested format.
pub fn render(run: &SuiteRun, format: ReportFormat) -> String {
    match format {
        ReportFormat::Text => render_text(run),
        ReportFormat::Csv => render_csv(run),
        ReportFormat::Html => render_html(run),
    }
}

/// Render a suite run and write it to `path` atomically (temp file + rename
/// via [`crate::journal::atomic_write`]), so a crash mid-write can never
/// leave a torn half-report on disk.
pub fn write_file(
    run: &SuiteRun,
    format: ReportFormat,
    path: impl AsRef<std::path::Path>,
) -> std::io::Result<()> {
    crate::journal::atomic_write(path, render(run, format).as_bytes())
}

fn render_text(run: &SuiteRun) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "OpenACC Validation Suite — report for {}", run.compiler);
    let _ = writeln!(s, "{}", "=".repeat(60));
    for lang in [Language::C, Language::Fortran] {
        let counted = run.counted(lang);
        if counted.is_empty() {
            continue;
        }
        let breakdown = run.failure_breakdown(lang);
        let _ = writeln!(
            s,
            "\n[{lang}] {} tests, pass rate {:.1}%  ({breakdown})",
            counted.len(),
            run.pass_rate(lang),
        );
        for r in &counted {
            let cert = match r.certainty {
                Some(c) => format!("  [{c}]"),
                None => String::new(),
            };
            let _ = writeln!(s, "  {:<40} {}{}", r.feature.as_str(), r.status, cert);
        }
        let inconclusive = run.inconclusive(lang);
        if !inconclusive.is_empty() {
            let _ = writeln!(s, "\n  Cross tests needing re-design ({lang}):");
            for r in inconclusive {
                let _ = writeln!(s, "    {}", r.feature);
            }
        }
    }
    // Bug-report appendix with code snippets.
    let failures: Vec<_> = run
        .results
        .iter()
        .filter(|r| r.status.counted() && !r.passed())
        .collect();
    if !failures.is_empty() {
        let _ = writeln!(s, "\nBUG REPORT APPENDIX (code snippets for the vendor)");
        let _ = writeln!(s, "{}", "-".repeat(60));
        for r in failures {
            let _ = writeln!(s, "\n* {} ({}) — {}", r.feature, r.language, r.status);
            for line in r.functional_source.lines() {
                let _ = writeln!(s, "    {line}");
            }
        }
    }
    s
}

fn render_csv(run: &SuiteRun) -> String {
    let mut s = String::from("compiler,language,feature,status,certainty_pc\n");
    for r in &run.results {
        if !r.status.counted() {
            continue;
        }
        let pc = r
            .certainty
            .map(|c| format!("{:.4}", c.pc()))
            .unwrap_or_default();
        let _ = writeln!(
            s,
            "{},{},{},{},{}",
            run.compiler,
            r.language,
            r.feature,
            r.status.label(),
            pc
        );
    }
    s
}

fn render_html(run: &SuiteRun) -> String {
    let mut s = String::new();
    s.push_str(
        "<!DOCTYPE html>\n<html><head><title>OpenACC Validation Report</title></head><body>\n",
    );
    let _ = writeln!(
        s,
        "<h1>OpenACC Validation Suite — {}</h1>",
        escape(&run.compiler)
    );
    for lang in [Language::C, Language::Fortran] {
        if run.counted(lang).is_empty() {
            continue;
        }
        let _ = writeln!(
            s,
            "<h2>{lang} — pass rate {:.1}%</h2>\n<table border=\"1\">\n\
             <tr><th>feature</th><th>status</th><th>certainty</th></tr>",
            run.pass_rate(lang)
        );
        for r in run.counted(lang) {
            let cert = r
                .certainty
                .map(|c| format!("{:.1}%", c.pc() * 100.0))
                .unwrap_or_else(|| "—".to_string());
            let _ = writeln!(
                s,
                "<tr><td>{}</td><td>{}</td><td>{}</td></tr>",
                escape(r.feature.as_str()),
                escape(r.status.label()),
                cert
            );
        }
        s.push_str("</table>\n");
    }
    // Snippets for failures.
    for r in run
        .results
        .iter()
        .filter(|r| r.status.counted() && !r.passed())
    {
        let _ = writeln!(
            s,
            "<h3>{} ({})</h3><pre>{}</pre>",
            escape(r.feature.as_str()),
            r.language,
            escape(&r.functional_source)
        );
    }
    s.push_str("</body></html>\n");
    s
}

/// The paper's §VI "large table" it could not print for space: a pass/fail
/// matrix of every feature against every compiler run, one column per run.
///
/// Cell legend: `+` pass, `*` pass with an inconclusive cross test,
/// `C` compile error, `W` wrong result, `X` crash, `T` timeout, `I` infra
/// failure, `F` flaky, `.` not applicable to the language.
pub fn feature_matrix(runs: &[&SuiteRun], lang: Language) -> String {
    use std::collections::BTreeMap;
    let mut features: BTreeMap<String, Vec<char>> = BTreeMap::new();
    for (col, run) in runs.iter().enumerate() {
        for r in &run.results {
            if r.language != lang {
                continue;
            }
            let cell = match &r.status {
                TestStatus::Pass => '+',
                TestStatus::PassInconclusive => '*',
                TestStatus::CompileError(_) => 'C',
                TestStatus::WrongResult => 'W',
                TestStatus::Crash(_) => 'X',
                TestStatus::Timeout => 'T',
                TestStatus::Infra(_) => 'I',
                TestStatus::Flaky => 'F',
                TestStatus::Skipped(_) => '.',
            };
            features
                .entry(r.feature.as_str().to_string())
                .or_insert_with(|| vec![' '; runs.len()])[col] = cell;
        }
    }
    let mut s = String::new();
    let _ = writeln!(
        s,
        "PASS/FAIL MATRIX ({lang})  [+ pass, * inconclusive cross, C compile error, W wrong \
         result, X crash, T timeout, I infra, F flaky, . n/a]\n"
    );
    let _ = write!(s, "{:<38}", "feature");
    for run in runs {
        let _ = write!(s, " {:>12}", truncate(&run.compiler, 12));
    }
    let _ = writeln!(s);
    for (feature, cells) in &features {
        let _ = write!(s, "{feature:<38}");
        for c in cells {
            let _ = write!(s, " {c:>12}");
        }
        let _ = writeln!(s);
    }
    s
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        s[..n].to_string()
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Summarize a test status for quick console lines.
pub fn one_line(status: &TestStatus) -> String {
    status.label().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use crate::case::TestCase;
    use crate::cross::CrossRule;
    use acc_ast::builder as b;
    use acc_ast::{Expr, Program};
    use acc_compiler::{VendorCompiler, VendorId};
    use acc_spec::DirectiveKind;

    fn run_for(vendor: Option<(VendorId, &str)>) -> SuiteRun {
        let base = Program::simple(
            "loop",
            Language::C,
            vec![
                b::decl_int("error", 0),
                b::decl_array("A", acc_ast::ScalarType::Int, 8),
                b::for_upto(
                    "i",
                    Expr::int(8),
                    vec![b::set1("A", Expr::var("i"), Expr::int(0))],
                ),
                b::parallel_region(
                    vec![
                        acc_ast::AccClause::NumGangs(Expr::int(4)),
                        b::copy_sec("A", Expr::int(8)),
                    ],
                    vec![b::acc_loop(
                        vec![],
                        "i",
                        Expr::int(8),
                        vec![b::add1("A", Expr::var("i"), Expr::int(1))],
                    )],
                ),
                b::for_upto(
                    "i",
                    Expr::int(8),
                    vec![b::if_then(
                        Expr::ne(Expr::idx("A", Expr::var("i")), Expr::int(1)),
                        vec![b::bump_error()],
                    )],
                ),
                b::return_error_check(),
            ],
        );
        let suite = vec![TestCase::new(
            "loop",
            "loop",
            base,
            Some(CrossRule::RemoveDirective(DirectiveKind::Loop)),
            "loop test",
        )];
        let compiler = match vendor {
            Some((v, ver)) => VendorCompiler::new(v, ver.parse().unwrap()),
            None => VendorCompiler::reference(),
        };
        Campaign::new(suite).run_one(&compiler)
    }

    #[test]
    fn feature_matrix_renders_cells() {
        let clean = run_for(None);
        let buggy = run_for(Some((VendorId::Caps, "3.0.8")));
        let m = feature_matrix(&[&clean, &buggy], Language::Fortran);
        assert!(m.contains("loop"), "{m}");
        assert!(m.contains('+'), "clean run passes: {m}");
        // CAPS 3.0.8 Fortran drops loop directives: wrong result.
        assert!(m.contains('W'), "buggy run fails: {m}");
    }

    #[test]
    fn text_report_contains_summary_and_statuses() {
        let run = run_for(None);
        let text = render(&run, ReportFormat::Text);
        assert!(text.contains("pass rate 100.0%"), "{text}");
        assert!(text.contains("[C]"));
        assert!(text.contains("[Fortran]"));
        assert!(text.contains("PASS"));
        assert!(
            !text.contains("BUG REPORT"),
            "clean run has no bug appendix"
        );
    }

    #[test]
    fn csv_report_has_rows_per_result() {
        let run = run_for(None);
        let csv = render(&run, ReportFormat::Csv);
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines[0], "compiler,language,feature,status,certainty_pc");
        assert_eq!(lines.len(), 3, "{csv}"); // header + C + Fortran
        assert!(lines[1].contains("loop,PASS"));
    }

    #[test]
    fn html_report_is_wellformed_enough() {
        let run = run_for(None);
        let html = render(&run, ReportFormat::Html);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<table"));
        assert!(html.ends_with("</body></html>\n"));
    }

    #[test]
    fn failures_append_code_snippets() {
        // CAPS 3.0.7 ignores seq and other clauses but passes the loop test;
        // to force a failure, run under a broken profile via an early
        // release with a relevant bug — use the Fortran 3.0.8 regression
        // which rejects `loop` entirely.
        let run = run_for(Some((VendorId::Caps, "3.0.8")));
        let text = render(&run, ReportFormat::Text);
        // The Fortran variant fails to compile under the 3.0.8 regression.
        assert!(text.contains("COMPILE-ERROR"), "{text}");
        assert!(text.contains("BUG REPORT APPENDIX"));
        assert!(text.contains("int main(void)") || text.contains("integer function main"));
    }

    #[test]
    fn html_escapes_source() {
        let run = run_for(Some((VendorId::Caps, "3.0.8")));
        let html = render(&run, ReportFormat::Html);
        assert!(!html.contains("#include <openacc.h>"), "must be escaped");
        assert!(html.contains("&lt;openacc.h&gt;") || !html.contains("openacc.h"));
    }
}
