//! The test-template format and expansion engine.
//!
//! §III: "The test code is written based on template, i.e., a test code is
//! written following an html syntax structure that includes the OpenACC
//! directive/clause to be tested. The test infrastructure … will then be
//! used to parse the template and automatically generate the associated
//! test codes" — both functional and cross, in C and Fortran, from one base.
//!
//! A template looks like:
//!
//! ```text
//! <acctest name="loop" feature="loop" cross="remove-directive:loop"
//!          languages="c,fortran" repetitions="3">
//! <description>loop directive shares iterations across gangs</description>
//! <env ACC_DEVICE_TYPE="NVIDIA"/>
//! <code>
//! int main(void) {
//!     ...
//! }
//! </code>
//! </acctest>
//! ```
//!
//! The `<code>` body is the test base in C syntax; the expansion engine
//! parses it with the reference front-end into the shared AST, from which
//! the four generated programs (functional/cross × C/Fortran) are rendered.
//! One file may contain any number of `<acctest>` elements.

use crate::case::{TestCase, DEFAULT_REPETITIONS};
use crate::cross::CrossRule;
use acc_spec::envvar::EnvConfig;
use acc_spec::Language;
use std::fmt;

/// Template parse/expansion failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateError {
    /// Offending template (if identified).
    pub template: String,
    /// Message.
    pub message: String,
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.template.is_empty() {
            write!(f, "template error: {}", self.message)
        } else {
            write!(f, "template `{}`: {}", self.template, self.message)
        }
    }
}

impl std::error::Error for TemplateError {}

fn err(template: &str, message: impl Into<String>) -> TemplateError {
    TemplateError {
        template: template.to_string(),
        message: message.into(),
    }
}

/// Parse every `<acctest>` element in `input` into test cases.
pub fn parse_templates(input: &str) -> Result<Vec<TestCase>, TemplateError> {
    let mut cases = Vec::new();
    let mut rest = input;
    while let Some(start) = rest.find("<acctest") {
        let after = &rest[start..];
        let close = after
            .find("</acctest>")
            .ok_or_else(|| err("", "unterminated <acctest> element"))?;
        let element = &after[..close];
        cases.push(parse_one(element)?);
        rest = &after[close + "</acctest>".len()..];
    }
    if cases.is_empty() {
        return Err(err("", "no <acctest> elements found"));
    }
    Ok(cases)
}

fn parse_one(element: &str) -> Result<TestCase, TemplateError> {
    // Attribute head: up to the first '>' OUTSIDE quoted attribute values
    // (cross specs like `replace-clause:a.b->c` legitimately contain '>').
    let head_end = tag_close(element).ok_or_else(|| err("", "malformed <acctest> opening tag"))?;
    let head = &element["<acctest".len()..head_end];
    let body = &element[head_end + 1..];

    let attrs = parse_attrs(head);
    let name = attr(&attrs, "name").ok_or_else(|| err("", "<acctest> requires name=\"…\""))?;
    let feature = attr(&attrs, "feature").unwrap_or_else(|| name.clone());
    let cross = match attr(&attrs, "cross") {
        None => None,
        Some(s) if s == "none" => None,
        Some(s) => Some(
            s.parse::<CrossRule>()
                .map_err(|e| err(&name, e.to_string()))?,
        ),
    };
    let languages = match attr(&attrs, "languages") {
        None => vec![Language::C, Language::Fortran],
        Some(s) => {
            let mut langs = Vec::new();
            for part in s.split(',') {
                match part.trim() {
                    "c" | "C" => langs.push(Language::C),
                    "fortran" | "Fortran" | "f" | "F" => langs.push(Language::Fortran),
                    other => return Err(err(&name, format!("unknown language {other:?}"))),
                }
            }
            langs
        }
    };
    let repetitions = match attr(&attrs, "repetitions") {
        None => DEFAULT_REPETITIONS,
        Some(s) => s
            .parse::<u32>()
            .ok()
            .filter(|m| *m >= 1)
            .ok_or_else(|| err(&name, "repetitions must be a positive integer"))?,
    };

    let description = tag_body(body, "description").unwrap_or_default();
    // The test base may be authored in either language: `<code>` is C
    // syntax, `<code lang="fortran">` is the Fortran dialect. Both lower to
    // the same AST, from which all four programs are generated.
    let (code, code_lang) = match tag_body(body, "code") {
        Some(c) => (c, Language::C),
        None => match tag_body_with_attr(body, "code", "lang", "fortran") {
            Some(c) => (c, Language::Fortran),
            None => return Err(err(&name, "<acctest> requires a <code> body")),
        },
    };
    let env = match empty_tag_attrs(body, "env") {
        Some(pairs) => EnvConfig::from_pairs(pairs.iter().map(|(k, v)| (k.as_str(), v.as_str()))),
        None => EnvConfig::empty(),
    };

    // Parse the test base with the reference front-end for its language.
    let mut program = acc_frontend::parse(&code, code_lang)
        .map_err(|e| err(&name, format!("in <code>: {e}")))?;
    // Normalize to the canonical (C-flavoured) AST carrier; rendering per
    // target language happens at generation time.
    program.language = Language::C;
    if program.name == "unnamed" {
        program.name = name.clone();
    }

    let mut case = TestCase::new(name.clone(), feature, program, cross, description);
    case.languages = languages;
    case.env = env;
    case.repetitions = repetitions;
    Ok(case)
}

/// Render a test case back into template text (the canonical archival
/// form). `parse_templates ∘ render_template` preserves the generated
/// programs.
pub fn render_template(case: &TestCase) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "<acctest name=\"{}\" feature=\"{}\"",
        case.name, case.feature
    ));
    match &case.cross {
        Some(rule) => s.push_str(&format!(" cross=\"{rule}\"")),
        None => s.push_str(" cross=\"none\""),
    }
    let langs: Vec<&str> = case
        .languages
        .iter()
        .map(|l| match l {
            Language::C => "c",
            Language::Fortran => "fortran",
        })
        .collect();
    s.push_str(&format!(" languages=\"{}\"", langs.join(",")));
    s.push_str(&format!(" repetitions=\"{}\">\n", case.repetitions));
    if !case.description.is_empty() {
        s.push_str(&format!(
            "<description>{}</description>\n",
            case.description
        ));
    }
    if case.env.device_type.is_some() || case.env.device_num.is_some() {
        s.push_str("<env");
        if let Some(t) = case.env.device_type {
            s.push_str(&format!(" ACC_DEVICE_TYPE=\"{}\"", t.symbol()));
        }
        if let Some(n) = case.env.device_num {
            s.push_str(&format!(" ACC_DEVICE_NUM=\"{n}\""));
        }
        s.push_str("/>\n");
    }
    s.push_str("<code>\n");
    s.push_str(&case.source_for(Language::C));
    s.push_str("</code>\n</acctest>\n");
    s
}

/// Position of the first '>' outside double quotes.
fn tag_close(s: &str) -> Option<usize> {
    let mut in_quotes = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_quotes = !in_quotes,
            '>' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

fn parse_attrs(head: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut rest = head.trim();
    while let Some(eq) = rest.find('=') {
        let key = rest[..eq].trim().to_string();
        let after = rest[eq + 1..].trim_start();
        if let Some(stripped) = after.strip_prefix('"') {
            if let Some(end) = stripped.find('"') {
                out.push((key, stripped[..end].to_string()));
                rest = &stripped[end + 1..];
                continue;
            }
        }
        break;
    }
    out
}

fn attr(attrs: &[(String, String)], key: &str) -> Option<String> {
    attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
}

/// Find `<tag key="value">…</tag>` and return the body.
fn tag_body_with_attr(body: &str, tag: &str, key: &str, value: &str) -> Option<String> {
    let open = format!("<{tag} {key}=\"{value}\">");
    let close = format!("</{tag}>");
    let start = body.find(&open)? + open.len();
    let end = body[start..].find(&close)? + start;
    Some(body[start..end].trim_start_matches('\n').to_string())
}

fn tag_body(body: &str, tag: &str) -> Option<String> {
    let open = format!("<{tag}>");
    let close = format!("</{tag}>");
    let start = body.find(&open)? + open.len();
    let end = body[start..].find(&close)? + start;
    Some(body[start..end].trim_start_matches('\n').to_string())
}

fn empty_tag_attrs(body: &str, tag: &str) -> Option<Vec<(String, String)>> {
    let open = format!("<{tag}");
    let start = body.find(&open)? + open.len();
    let end = body[start..].find("/>")? + start;
    Some(parse_attrs(&body[start..end]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_spec::DirectiveKind;

    const LOOP_TEMPLATE: &str = r#"
<acctest name="loop" feature="loop" cross="remove-directive:loop" repetitions="4">
<description>loop directive shares iterations across gangs</description>
<code>
int main(void) {
    int error = 0;
    int A[16];
    for (i = 0; i < 16; i++)
    {
        A[i] = 0;
    }
    #pragma acc parallel num_gangs(4) copy(A[0:16])
    {
        #pragma acc loop
        for (i = 0; i < 16; i++)
        {
            A[i] = A[i] + 1;
        }
    }
    for (i = 0; i < 16; i++)
    {
        if (A[i] != 1)
        {
            error = error + 1;
        }
    }
    return error == 0;
}
</code>
</acctest>
"#;

    #[test]
    fn parses_single_template() {
        let cases = parse_templates(LOOP_TEMPLATE).unwrap();
        assert_eq!(cases.len(), 1);
        let c = &cases[0];
        assert_eq!(c.name, "loop");
        assert_eq!(c.feature, acc_spec::FeatureId::from("loop"));
        assert_eq!(c.repetitions, 4);
        assert_eq!(
            c.cross,
            Some(CrossRule::RemoveDirective(DirectiveKind::Loop))
        );
        assert_eq!(c.languages.len(), 2);
        assert!(c.description.contains("shares iterations"));
    }

    #[test]
    fn generates_all_four_programs() {
        let cases = parse_templates(LOOP_TEMPLATE).unwrap();
        let c = &cases[0];
        let fc = c.source_for(Language::C);
        let ff = c.source_for(Language::Fortran);
        let xc = c.cross_source_for(Language::C).unwrap();
        let xf = c.cross_source_for(Language::Fortran).unwrap();
        assert!(fc.contains("#pragma acc loop"));
        assert!(ff.contains("!$acc loop"));
        assert!(!xc.contains("#pragma acc loop"));
        assert!(!xf.contains("!$acc loop"));
        assert!(xf.contains("!$acc parallel"));
    }

    #[test]
    fn expanded_test_validates_against_reference() {
        let cases = parse_templates(LOOP_TEMPLATE).unwrap();
        let problems = crate::harness::validate_case(&cases[0]);
        assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn multiple_templates_in_one_file() {
        let two = format!(
            "{LOOP_TEMPLATE}\n{}",
            LOOP_TEMPLATE.replace("\"loop\"", "\"loop2\"")
        );
        let cases = parse_templates(&two).unwrap();
        assert_eq!(cases.len(), 2);
        assert_eq!(cases[1].name, "loop2");
    }

    #[test]
    fn env_and_language_attributes() {
        let t = r#"
<acctest name="env.ACC_DEVICE_TYPE" cross="none" languages="c">
<env ACC_DEVICE_TYPE="HOST"/>
<code>
int main(void) {
    int t = 0;
    t = acc_get_device_type();
    return t == acc_device_host;
}
</code>
</acctest>
"#;
        let cases = parse_templates(t).unwrap();
        let c = &cases[0];
        assert_eq!(c.env.device_type, Some(acc_spec::DeviceType::Host));
        assert_eq!(c.languages, vec![Language::C]);
        assert!(c.cross.is_none());
    }

    #[test]
    fn render_round_trips() {
        let cases = parse_templates(LOOP_TEMPLATE).unwrap();
        let rendered = render_template(&cases[0]);
        let reparsed = parse_templates(&rendered).unwrap();
        assert_eq!(reparsed[0].name, cases[0].name);
        assert_eq!(reparsed[0].cross, cases[0].cross);
        assert_eq!(
            reparsed[0].source_for(Language::C),
            cases[0].source_for(Language::C),
            "generated programs must be preserved"
        );
        assert_eq!(
            reparsed[0].source_for(Language::Fortran),
            cases[0].source_for(Language::Fortran)
        );
    }

    #[test]
    fn cross_spec_with_arrow_survives_tag_parsing() {
        // Regression: `->` inside the cross attribute must not terminate the
        // opening tag early (and silently drop the cross rule).
        let t = r#"<acctest name="x" cross="replace-clause:parallel.copy->create">
<code>
int main(void) {
    int A[4];
    #pragma acc parallel copy(A[0:4])
    {
        #pragma acc loop
        for (i = 0; i < 4; i++)
        {
            A[i] = i;
        }
    }
    return 1;
}
</code>
</acctest>"#;
        let case = &parse_templates(t).unwrap()[0];
        assert!(case.cross.is_some(), "cross rule must survive");
        let xs = case.cross_source_for(Language::C).unwrap();
        assert!(xs.contains("create(A[0:4])"), "{xs}");
    }

    #[test]
    fn fortran_authored_template() {
        // The same test base, written in the Fortran dialect: the engine
        // parses it with the Fortran front-end and still generates both
        // language variants.
        let t = r#"
<acctest name="f_authored" feature="loop" cross="remove-directive:loop">
<code lang="fortran">
! test program: f_authored
integer function main()
    implicit none
    integer :: A(0:15)
    integer :: error
    integer :: i
    error = 0
    do i = 0, 15
        A(i) = 0
    end do
    !$acc parallel num_gangs(4) copy(A(0:15))
        !$acc loop
        do i = 0, 15
            A(i) = A(i) + 1
        end do
    !$acc end parallel
    do i = 0, 15
        if (A(i) /= 1) then
            error = error + 1
        end if
    end do
    main = error == 0
    return
end function main
</code>
</acctest>
"#;
        let case = &parse_templates(t).unwrap()[0];
        // Both variants generate, and the case is healthy.
        assert!(case.source_for(Language::C).contains("#pragma acc parallel"));
        assert!(case.source_for(Language::Fortran).contains("!$acc parallel"));
        let problems = crate::harness::validate_case(case);
        assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse_templates("nothing here").is_err());
        let bad_code = r#"<acctest name="x"><code>@@@</code></acctest>"#;
        let e = parse_templates(bad_code).unwrap_err();
        assert!(e.message.contains("in <code>"), "{e}");
        let bad_cross =
            r#"<acctest name="x" cross="frob"><code>int main(void) { return 1; }</code></acctest>"#;
        assert!(parse_templates(bad_cross).is_err());
        let no_code = r#"<acctest name="x"></acctest>"#;
        assert!(parse_templates(no_code).is_err());
    }
}
