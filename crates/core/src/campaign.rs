//! Campaigns: run a suite against one or many compiler releases and
//! aggregate the results — the machinery behind the paper's Fig. 8 pass-rate
//! plots and the discovered-bug inventories of Table I.

use crate::case::{TestCase, TestStatus};
use crate::config::SuiteConfig;
use crate::harness::{run_case_with, CasePolicy, CaseResult};
use acc_compiler::{CompileCache, VendorCompiler, VendorId};
use acc_obs as obs;
use acc_spec::{FeatureId, Language};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Failure counts grouped by the taxonomy: the paper's four classes (§V:
/// compile-time errors; runtime errors: incorrect result, crash, executes
/// forever) extended with the executor's two infrastructure classes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailureBreakdown {
    /// Compilation failed.
    pub compile_errors: usize,
    /// Ran but produced an incorrect result.
    pub wrong_results: usize,
    /// Crashed at runtime.
    pub crashes: usize,
    /// Exceeded the step budget or wall-clock deadline.
    pub timeouts: usize,
    /// Harness-side failures (panics caught by the executor).
    pub infra: usize,
    /// Verdict changed across retry attempts (not a hard failure).
    pub flaky: usize,
}

impl FailureBreakdown {
    /// Total hard failures (flaky results are not hard failures).
    pub fn total_failures(&self) -> usize {
        self.compile_errors + self.wrong_results + self.crashes + self.timeouts + self.infra
    }
}

impl fmt::Display for FailureBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "compile errors {}, wrong results {}, crashes {}, timeouts {}, infra {}, flaky {}",
            self.compile_errors, self.wrong_results, self.crashes, self.timeouts, self.infra,
            self.flaky
        )
    }
}

/// Results of one suite run against one compiler release.
#[derive(Debug, Clone)]
pub struct SuiteRun {
    /// Compiler label ("PGI 13.4").
    pub compiler: String,
    /// Every case result (both languages when configured).
    pub results: Vec<CaseResult>,
}

impl SuiteRun {
    /// Executed (non-skipped) results for a language.
    pub fn counted(&self, lang: Language) -> Vec<&CaseResult> {
        self.results
            .iter()
            .filter(|r| r.language == lang && r.status.counted())
            .collect()
    }

    /// Pass rate percentage for a language (the Fig. 8 y-axis).
    pub fn pass_rate(&self, lang: Language) -> f64 {
        let counted = self.counted(lang);
        if counted.is_empty() {
            return 100.0;
        }
        let passed = counted.iter().filter(|r| r.passed()).count();
        passed as f64 / counted.len() as f64 * 100.0
    }

    /// Features that failed for a language — the observable footprint of the
    /// release's bugs.
    pub fn failing_features(&self, lang: Language) -> BTreeSet<FeatureId> {
        self.counted(lang)
            .iter()
            .filter(|r| !r.passed())
            .map(|r| r.feature.clone())
            .collect()
    }

    /// Failures grouped by the taxonomy (compile / wrong-result / crash /
    /// timeout / infra / flaky) for a language.
    pub fn failure_breakdown(&self, lang: Language) -> FailureBreakdown {
        let mut b = FailureBreakdown::default();
        for r in self.counted(lang) {
            match r.status {
                TestStatus::CompileError(_) => b.compile_errors += 1,
                TestStatus::WrongResult => b.wrong_results += 1,
                TestStatus::Crash(_) => b.crashes += 1,
                TestStatus::Timeout => b.timeouts += 1,
                TestStatus::Infra(_) => b.infra += 1,
                TestStatus::Flaky => b.flaky += 1,
                _ => {}
            }
        }
        b
    }

    /// Tests whose cross variant failed to discriminate (suite-quality
    /// signal: "the directive being tested does not take any effect …
    /// the functional test will be re-designed", §III).
    pub fn inconclusive(&self, lang: Language) -> Vec<&CaseResult> {
        self.counted(lang)
            .iter()
            .filter(|r| matches!(r.status, TestStatus::PassInconclusive))
            .copied()
            .collect()
    }
}

/// A campaign: a suite, a configuration, and the compilers to sweep.
#[derive(Debug)]
pub struct Campaign {
    /// The test corpus.
    pub suite: Vec<TestCase>,
    /// Run configuration.
    pub config: SuiteConfig,
    /// Compilation cache shared by every compiler the campaign drives
    /// (`None` = compile from scratch every time, the pre-cache behaviour).
    pub cache: Option<Arc<CompileCache>>,
    /// Telemetry collector (disabled by default). When enabled, the direct
    /// run paths emit campaign/case spans; results and report bytes are
    /// unaffected either way.
    pub recorder: obs::Recorder,
}

/// Results of a campaign across compiler releases.
#[derive(Debug)]
pub struct CampaignResult {
    /// One entry per compiler release, in sweep order.
    pub runs: Vec<SuiteRun>,
}

impl Campaign {
    /// Create a campaign over a suite with the default configuration.
    pub fn new(suite: Vec<TestCase>) -> Self {
        Campaign {
            suite,
            config: SuiteConfig::default(),
            cache: None,
            recorder: obs::Recorder::disabled(),
        }
    }

    /// Replace the configuration.
    pub fn with_config(mut self, config: SuiteConfig) -> Self {
        self.config = config;
        self
    }

    /// Share a compilation cache across every run of this campaign. All
    /// compilers the campaign touches (including every version in a vendor
    /// sweep) are attached to it, so identical sources compile once.
    pub fn with_cache(mut self, cache: Arc<CompileCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attach a telemetry recorder to the campaign's direct run paths.
    pub fn with_recorder(mut self, recorder: obs::Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The compiler to actually drive: the caller's, with the campaign's
    /// cache attached when one is configured (an already-attached cache on
    /// the compiler wins — the caller chose it deliberately).
    pub(crate) fn effective_compiler(&self, compiler: &VendorCompiler) -> VendorCompiler {
        match (&self.cache, compiler.cache()) {
            (Some(cache), None) => compiler.clone().with_cache(Arc::clone(cache)),
            _ => compiler.clone(),
        }
    }

    /// The cases selected by the configuration's feature filter.
    pub fn selected_cases(&self) -> Vec<&TestCase> {
        self.suite
            .iter()
            .filter(|c| self.config.filter.selects(&c.feature))
            .collect()
    }

    /// The selected cases with every configuration override (today: the
    /// cross-test repetition count) applied — the exact per-case inputs all
    /// run paths (serial, chunked-parallel, fault-tolerant executor) feed to
    /// the harness, so their job lists are identical by construction.
    pub fn materialized_cases(&self) -> Vec<TestCase> {
        self.selected_cases()
            .into_iter()
            .map(|case| match self.config.repetitions {
                Some(m) => {
                    let mut c = case.clone();
                    c.repetitions = m;
                    c
                }
                None => case.clone(),
            })
            .collect()
    }

    /// The per-case policy every direct run path uses (the executor builds
    /// its own, folding in retries): default knobs plus the configured
    /// execution engine.
    fn case_policy(&self) -> CasePolicy {
        CasePolicy {
            exec_mode: self.config.exec_mode,
            // Campaign sweeps re-run the same executable (shared through
            // the compile cache across vendor versions) under identical
            // knobs; the run memo replays those results.
            memo: true,
            ..CasePolicy::default()
        }
    }

    /// Run against a single compiler release.
    pub fn run_one(&self, compiler: &VendorCompiler) -> SuiteRun {
        let compiler = self.effective_compiler(compiler);
        let policy = self.case_policy();
        let cases = self.materialized_cases();
        let langs = self.config.languages.len().max(1);
        let run = self.recorder.begin_run();
        {
            let _pre = obs::scope(&self.recorder, run, obs::PART_PRE, 0, 0);
            obs::mark(
                obs::Phase::Begin,
                "campaign",
                &compiler.label(),
                vec![obs::i("jobs", (cases.len() * self.config.languages.len()) as i64)],
            );
        }
        let mut results = Vec::new();
        for (ci, case) in cases.iter().enumerate() {
            for (li, &lang) in self.config.languages.iter().enumerate() {
                let job = (ci * langs + li) as u32;
                let _g = obs::scope(&self.recorder, run, obs::PART_JOB, job, 0);
                obs::begin("case", &case.name, vec![obs::s("lang", lang.to_string())]);
                let r = run_case_with(case, &compiler, lang, &policy);
                obs::end(vec![obs::s("status", r.status.label())]);
                results.push(r);
            }
        }
        {
            let _post = obs::scope(&self.recorder, run, obs::PART_POST, 0, 0);
            obs::mark(
                obs::Phase::End,
                "campaign",
                &compiler.label(),
                vec![obs::i(
                    "passed",
                    results.iter().filter(|r| r.passed()).count() as i64,
                )],
            );
        }
        SuiteRun {
            compiler: compiler.label(),
            results,
        }
    }

    /// Run against a single compiler release with worker threads: the suite
    /// fans test cases out over a crossbeam scope (test executions are
    /// independent — each runs in its own simulated world), preserving the
    /// deterministic per-test results while cutting campaign wall time.
    pub fn run_one_parallel(&self, compiler: &VendorCompiler, threads: usize) -> SuiteRun {
        let cases = self.materialized_cases();
        let threads = threads.max(1).min(cases.len().max(1));
        if threads <= 1 {
            return self.run_one(compiler);
        }
        let compiler = &self.effective_compiler(compiler);
        let policy = self.case_policy();
        // One result slot per (case, language), filled by disjoint chunks.
        let langs = self.config.languages.clone();
        let run = self.recorder.begin_run();
        {
            let _pre = obs::scope(&self.recorder, run, obs::PART_PRE, 0, 0);
            obs::mark(
                obs::Phase::Begin,
                "campaign",
                &compiler.label(),
                vec![obs::i("jobs", (cases.len() * langs.len()) as i64)],
            );
        }
        let mut slots: Vec<Vec<CaseResult>> = Vec::new();
        slots.resize_with(cases.len(), Vec::new);
        let chunk = cases.len().div_ceil(threads);
        let recorder = &self.recorder;
        crossbeam::scope(|scope| {
            for (chunk_index, (case_chunk, slot_chunk)) in
                cases.chunks(chunk).zip(slots.chunks_mut(chunk)).enumerate()
            {
                let langs = langs.clone();
                scope.spawn(move |_| {
                    for (offset, (case, slot)) in
                        case_chunk.iter().zip(slot_chunk.iter_mut()).enumerate()
                    {
                        let case_index = chunk_index * chunk + offset;
                        for (li, &lang) in langs.iter().enumerate() {
                            // Job ordinal = the case's suite position, so
                            // merged traces match the serial path exactly.
                            let job = (case_index * langs.len() + li) as u32;
                            let _g = obs::scope(
                                recorder,
                                run,
                                obs::PART_JOB,
                                job,
                                chunk_index as u32,
                            );
                            obs::begin(
                                "case",
                                &case.name,
                                vec![obs::s("lang", lang.to_string())],
                            );
                            let r = run_case_with(case, compiler, lang, &policy);
                            obs::end(vec![obs::s("status", r.status.label())]);
                            slot.push(r);
                        }
                    }
                });
            }
        })
        .expect("campaign worker panicked");
        let results: Vec<CaseResult> = slots.into_iter().flatten().collect();
        {
            let _post = obs::scope(&self.recorder, run, obs::PART_POST, 0, 0);
            obs::mark(
                obs::Phase::End,
                "campaign",
                &compiler.label(),
                vec![obs::i(
                    "passed",
                    results.iter().filter(|r| r.passed()).count() as i64,
                )],
            );
        }
        SuiteRun {
            compiler: compiler.label(),
            results,
        }
    }

    /// Sweep every released version of a vendor (the Fig. 8 x-axis). With a
    /// campaign cache attached, the sweep's front-end work (parse, sema,
    /// resolution) runs once per distinct source for the *whole line* — only
    /// the per-version defect walk repeats.
    pub fn run_vendor_line(&self, vendor: VendorId) -> CampaignResult {
        let runs = vendor
            .versions()
            .into_iter()
            .map(|v| self.run_one(&VendorCompiler::new(vendor, v)))
            .collect();
        CampaignResult { runs }
    }
}

impl CampaignResult {
    /// Pass-rate series for a language across the sweep (the Fig. 8 bars).
    pub fn pass_rates(&self, lang: Language) -> Vec<(String, f64)> {
        self.runs
            .iter()
            .map(|r| (r.compiler.clone(), r.pass_rate(lang)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cross::CrossRule;
    use acc_ast::builder as b;
    use acc_ast::{Expr, Program, Stmt};
    use acc_spec::DirectiveKind;

    fn tiny_suite() -> Vec<TestCase> {
        let loop_base = Program::simple(
            "loop",
            Language::C,
            vec![
                b::decl_int("error", 0),
                b::decl_array("A", acc_ast::ScalarType::Int, 8),
                b::for_upto(
                    "i",
                    Expr::int(8),
                    vec![b::set1("A", Expr::var("i"), Expr::int(0))],
                ),
                b::parallel_region(
                    vec![
                        acc_ast::AccClause::NumGangs(Expr::int(4)),
                        b::copy_sec("A", Expr::int(8)),
                    ],
                    vec![b::acc_loop(
                        vec![],
                        "i",
                        Expr::int(8),
                        vec![b::add1("A", Expr::var("i"), Expr::int(1))],
                    )],
                ),
                b::for_upto(
                    "i",
                    Expr::int(8),
                    vec![b::if_then(
                        Expr::ne(Expr::idx("A", Expr::var("i")), Expr::int(1)),
                        vec![b::bump_error()],
                    )],
                ),
                b::return_error_check(),
            ],
        );
        // A num_gangs test using a VARIABLE expression — trips the CAPS
        // §V-B bug in early releases.
        let gangs_base = Program::simple(
            "num_gangs_var",
            Language::C,
            vec![
                b::decl_int("gangs", 8),
                b::decl_int("gang_num", 0),
                b::parallel_region(
                    vec![
                        acc_ast::AccClause::NumGangs(Expr::var("gangs")),
                        acc_ast::AccClause::Reduction(
                            acc_spec::ReductionOp::Add,
                            vec!["gang_num".into()],
                        ),
                    ],
                    vec![b::add("gang_num", Expr::int(1))],
                ),
                Stmt::Return(Expr::eq(Expr::var("gang_num"), Expr::int(8))),
            ],
        );
        vec![
            TestCase::new(
                "loop",
                "loop",
                loop_base,
                Some(CrossRule::RemoveDirective(DirectiveKind::Loop)),
                "loop shares iterations",
            ),
            TestCase::new(
                "parallel.num_gangs",
                "parallel.num_gangs",
                gangs_base,
                Some(CrossRule::RemoveClause(
                    DirectiveKind::Parallel,
                    acc_spec::ClauseKind::NumGangs,
                )),
                "num_gangs with a variable expression (Fig. 9)",
            ),
        ]
    }

    #[test]
    fn reference_run_is_clean() {
        let campaign = Campaign::new(tiny_suite());
        let run = campaign.run_one(&VendorCompiler::reference());
        assert_eq!(run.pass_rate(Language::C), 100.0);
        assert_eq!(run.pass_rate(Language::Fortran), 100.0);
        assert!(run.failing_features(Language::C).is_empty());
    }

    #[test]
    fn caps_early_release_fails_variable_num_gangs() {
        let campaign = Campaign::new(tiny_suite());
        let early = VendorCompiler::new(VendorId::Caps, "3.0.7".parse().unwrap());
        let run = campaign.run_one(&early);
        let failing = run.failing_features(Language::C);
        assert!(
            failing.contains(&FeatureId::from("parallel.num_gangs")),
            "{failing:?}"
        );
        let breakdown = run.failure_breakdown(Language::C);
        assert!(
            breakdown.compile_errors >= 1,
            "variable sizing expr is a compile-time rejection"
        );
        // The fixed release passes.
        let fixed = VendorCompiler::new(VendorId::Caps, "3.3.4".parse().unwrap());
        let run = campaign.run_one(&fixed);
        assert_eq!(run.pass_rate(Language::C), 100.0);
    }

    #[test]
    fn vendor_line_sweep_improves_over_time() {
        let campaign = Campaign::new(tiny_suite());
        let result = campaign.run_vendor_line(VendorId::Caps);
        assert_eq!(result.runs.len(), 8);
        let rates = result.pass_rates(Language::C);
        assert!(rates.first().unwrap().1 < rates.last().unwrap().1);
        assert_eq!(rates.last().unwrap().1, 100.0);
    }

    #[test]
    fn feature_filter_limits_cases() {
        let campaign = Campaign::new(tiny_suite())
            .with_config(SuiteConfig::new().select_prefixes(&["parallel"]));
        assert_eq!(campaign.selected_cases().len(), 1);
        let run = campaign.run_one(&VendorCompiler::reference());
        assert!(run
            .results
            .iter()
            .all(|r| r.feature.as_str().starts_with("parallel")));
    }

    #[test]
    fn parallel_run_matches_serial() {
        let campaign = Campaign::new(tiny_suite());
        let compiler = VendorCompiler::new(VendorId::Caps, "3.0.7".parse().unwrap());
        let serial = campaign.run_one(&compiler);
        let parallel = campaign.run_one_parallel(&compiler, 4);
        assert_eq!(serial.results.len(), parallel.results.len());
        for (a, b) in serial.results.iter().zip(&parallel.results) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.language, b.language);
            assert_eq!(a.status, b.status, "{} ({})", a.name, a.language);
        }
        assert_eq!(
            serial.pass_rate(acc_spec::Language::C),
            parallel.pass_rate(acc_spec::Language::C)
        );
    }

    #[test]
    fn repetition_override_applies() {
        let campaign =
            Campaign::new(tiny_suite()).with_config(SuiteConfig::new().with_repetitions(5));
        let run = campaign.run_one(&VendorCompiler::reference());
        let with_cert = run
            .results
            .iter()
            .find_map(|r| r.certainty)
            .expect("cross tests ran");
        assert_eq!(with_cert.m, 5);
    }
}
