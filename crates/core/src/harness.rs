//! The test harness: compile, run, check, cross-validate (§III Fig. 3).
//!
//! "A test harness will then compile the program, run the executable, check
//! for the results and generate reports. … first we perform the functional
//! test. If the feature passes the test, the feature will need to undergo a
//! deeper test, i.e. the cross test. If the feature did not pass the
//! functional test, a 'failure' will be directly reported to the result
//! analyzer bypassing the necessity to do the cross test."

use crate::case::{TestCase, TestStatus};
use crate::stats::Certainty;
use acc_compiler::exec::{ExecMode, RunKnobs, RunOutcome};
use acc_compiler::VendorCompiler;
use acc_obs as obs;
use acc_spec::Language;

/// Per-attempt execution policy the fault-tolerant executor threads into a
/// case run.
#[derive(Debug, Clone, Copy, Default)]
pub struct CasePolicy {
    /// Interpreter step-budget override (`None` = the machine default).
    pub step_limit: Option<u64>,
    /// Base run index for this attempt. The functional run uses the base
    /// itself and cross repetition `k` uses `base + 1 + k`, so every
    /// execution inside one attempt — and across attempts when the caller
    /// strides the base — draws decorrelated transient faults while staying
    /// fully deterministic.
    pub run_index_base: u64,
    /// Which engine executes compiled programs (bytecode VM by default,
    /// `--exec-mode=walk` for the tree-walking reference oracle,
    /// `--exec-mode=par[:N]` for the parallel gang engine).
    pub exec_mode: ExecMode,
    /// Allow the executable's run-result memo to serve repeated identical
    /// executions (campaign paths set this; benches that measure raw
    /// engine speed leave it off).
    pub memo: bool,
}

/// The full record of one test executed against one compiler+language.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseResult {
    /// Test name.
    pub name: String,
    /// Feature id.
    pub feature: acc_spec::FeatureId,
    /// Language variant.
    pub language: Language,
    /// Classification.
    pub status: TestStatus,
    /// Certainty statistics when a cross test ran. For a
    /// [`TestStatus::Flaky`] verdict this instead carries the attempt-series
    /// statistics (M = attempts, nf = failing attempts).
    pub certainty: Option<Certainty>,
    /// The generated functional source (appended to bug reports "for
    /// vendors' convenience").
    pub functional_source: String,
    /// How many times the executor ran this case (1 unless retried).
    pub attempts: u32,
}

impl CaseResult {
    /// Did the compiler pass?
    pub fn passed(&self) -> bool {
        self.status.passed()
    }

    /// The certainty column for reports: renders "—" when no cross test ran
    /// instead of forcing callers through `unwrap()`.
    pub fn certainty_label(&self) -> String {
        match self.certainty {
            Some(c) => c.to_string(),
            None => "—".to_string(),
        }
    }
}

/// Run one test case against a compiler for one language.
pub fn run_case(case: &TestCase, compiler: &VendorCompiler, language: Language) -> CaseResult {
    run_case_with(case, compiler, language, &CasePolicy::default())
}

/// Run one test case under an explicit execution policy (step budget and
/// attempt-index base) — the entry point the fault-tolerant executor uses.
pub fn run_case_with(
    case: &TestCase,
    compiler: &VendorCompiler,
    language: Language,
    policy: &CasePolicy,
) -> CaseResult {
    let mk = |status: TestStatus, certainty: Option<Certainty>, src: String| CaseResult {
        name: case.name.clone(),
        feature: case.feature.clone(),
        language,
        status,
        certainty,
        functional_source: src,
        attempts: 1,
    };
    let knobs = |offset: u64| RunKnobs {
        step_limit: policy.step_limit,
        run_index: policy.run_index_base + offset,
        exec_mode: policy.exec_mode,
        memo: policy.memo,
    };
    if !case.supports(language) {
        return mk(TestStatus::skipped(), None, String::new());
    }
    let source = case.source_for(language);
    // 1. Compile the functional test (through the compiler's compilation
    //    cache when one is attached — retries, repetitions and version
    //    sweeps then reuse one lowered artifact).
    obs::begin("compile", "functional", vec![]);
    let compiled = compiler.compile_shared(&source, language);
    obs::end(vec![obs::s(
        "outcome",
        if compiled.is_ok() { "ok" } else { "error" },
    )]);
    let exe = match compiled {
        Ok(exe) => exe,
        Err(e) => return mk(TestStatus::CompileError(e.to_string()), None, source),
    };
    // 2. Run it.
    obs::begin("exec", "functional", vec![]);
    let functional = exe.run_with_knobs(&case.env, knobs(0)).outcome;
    obs::end(vec![]);
    match functional {
        RunOutcome::Completed(v) if v != 0 => {
            obs::instant("verify", "functional", vec![obs::s("outcome", "pass")]);
        }
        RunOutcome::Completed(_) => {
            obs::instant("verify", "functional", vec![obs::s("outcome", "wrong_result")]);
            return mk(TestStatus::WrongResult, None, source);
        }
        RunOutcome::Crash(m) => {
            obs::instant("verify", "functional", vec![obs::s("outcome", "crash")]);
            return mk(TestStatus::Crash(m), None, source);
        }
        RunOutcome::Timeout => {
            obs::instant("verify", "functional", vec![obs::s("outcome", "timeout")]);
            return mk(TestStatus::Timeout, None, source);
        }
    }
    // 3. Functional passed: deepen with the cross test.
    let cross_source = match case.cross_source_for(language) {
        Some(s) => s,
        None => return mk(TestStatus::Pass, None, source),
    };
    obs::begin("compile", "cross", vec![]);
    let cross_compiled = compiler.compile_shared(&cross_source, language);
    obs::end(vec![obs::s(
        "outcome",
        if cross_compiled.is_ok() { "ok" } else { "error" },
    )]);
    let cross_exe = match cross_compiled {
        // A cross test that does not compile cannot raise confidence; the
        // functional pass stands but is flagged inconclusive.
        Err(_) => return mk(TestStatus::PassInconclusive, None, source),
        Ok(exe) => exe,
    };
    // 4. Repeat the cross run M times; nf = runs yielding an incorrect
    //    result (which is what the cross test SHOULD yield). Run-once fast
    //    path: the attempt index only feeds transient-fault draws, so with
    //    no transient defect configured every repetition is provably
    //    identical — one execution stands in for all M, bit-for-bit.
    let m = case.repetitions.max(1);
    let mut nf = 0;
    if cross_exe.profile.has_transient_faults() {
        obs::begin("exec", "cross", vec![obs::i("reps", m as i64)]);
        for k in 0..m {
            let outcome = cross_exe.run_with_knobs(&case.env, knobs(1 + k as u64)).outcome;
            let incorrect = !matches!(outcome, RunOutcome::Completed(v) if v != 0);
            if incorrect {
                nf += 1;
            }
        }
        obs::end(vec![]);
    } else {
        obs::begin("exec", "cross", vec![obs::i("reps", 1)]);
        let outcome = cross_exe.run_with_knobs(&case.env, knobs(1)).outcome;
        obs::end(vec![]);
        if !matches!(outcome, RunOutcome::Completed(v) if v != 0) {
            nf = m;
        }
    }
    let cert = Certainty::new(m, nf);
    obs::instant(
        "verify",
        "cross",
        vec![
            obs::i("m", m as i64),
            obs::i("nf", nf as i64),
            obs::i("validated", cert.validated() as i64),
        ],
    );
    if cert.validated() {
        mk(TestStatus::Pass, Some(cert), source)
    } else {
        mk(TestStatus::PassInconclusive, Some(cert), source)
    }
}

/// Self-check a case against the defect-free reference implementation:
/// the functional test must pass and the cross test must discriminate.
/// Returns a list of problems (empty = healthy test).
pub fn validate_case(case: &TestCase) -> Vec<String> {
    let reference = VendorCompiler::reference();
    let mut problems = Vec::new();
    for lang in [Language::C, Language::Fortran] {
        if !case.supports(lang) {
            continue;
        }
        let r = run_case(case, &reference, lang);
        match &r.status {
            TestStatus::Pass => {}
            TestStatus::PassInconclusive => problems.push(format!(
                "{} ({lang}): cross test does not discriminate under the reference \
                 implementation ({})",
                case.name,
                r.certainty_label()
            )),
            other => problems.push(format!(
                "{} ({lang}): functional test fails under the reference implementation: {other}",
                case.name
            )),
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cross::CrossRule;
    use acc_ast::builder as b;
    use acc_ast::{Expr, Program};
    use acc_compiler::VendorId;
    use acc_spec::DirectiveKind;

    /// The Fig. 2 loop test: functional expects each element incremented
    /// once; the cross variant (directive removed) increments 10×.
    fn loop_case() -> TestCase {
        let n = 32;
        let base = Program::simple(
            "loop",
            Language::C,
            vec![
                b::decl_int("error", 0),
                b::decl_array("A", acc_ast::ScalarType::Int, n),
                b::for_upto(
                    "i",
                    Expr::int(n as i64),
                    vec![b::set1("A", Expr::var("i"), Expr::int(0))],
                ),
                b::parallel_region(
                    vec![
                        acc_ast::AccClause::NumGangs(Expr::int(10)),
                        b::copy_sec("A", Expr::int(n as i64)),
                    ],
                    vec![b::acc_loop(
                        vec![],
                        "i",
                        Expr::int(n as i64),
                        vec![b::add1("A", Expr::var("i"), Expr::int(1))],
                    )],
                ),
                b::for_upto(
                    "i",
                    Expr::int(n as i64),
                    vec![b::if_then(
                        Expr::ne(Expr::idx("A", Expr::var("i")), Expr::int(1)),
                        vec![b::bump_error()],
                    )],
                ),
                b::return_error_check(),
            ],
        );
        TestCase::new(
            "loop",
            "loop",
            base,
            Some(CrossRule::RemoveDirective(DirectiveKind::Loop)),
            "loop directive shares iterations across gangs",
        )
    }

    #[test]
    fn reference_passes_with_full_certainty() {
        let case = loop_case();
        for lang in [Language::C, Language::Fortran] {
            let r = run_case(&case, &VendorCompiler::reference(), lang);
            assert_eq!(r.status, TestStatus::Pass, "{lang}: {:?}", r.status);
            let c = r.certainty.unwrap();
            assert!(c.validated());
            assert_eq!(c.pc(), 1.0);
        }
    }

    #[test]
    fn validate_case_accepts_healthy_test() {
        assert!(validate_case(&loop_case()).is_empty());
    }

    #[test]
    fn broken_compiler_fails_functionally() {
        // A compiler that ignores the loop directive produces 10x increments
        // in the functional test → wrong result.
        let mut profile = acc_device::ExecProfile::reference();
        profile.inject(acc_device::Defect::IgnoreDirective(DirectiveKind::Loop));
        let case = loop_case();
        let src = case.source_for(Language::C);
        let exe = acc_compiler::driver::compile_with_profile(
            &src,
            Language::C,
            profile,
            acc_spec::DeviceType::Nvidia,
        )
        .unwrap();
        assert!(matches!(exe.run().outcome, RunOutcome::Completed(0)));
    }

    #[test]
    fn caps_oldest_vs_latest() {
        // The latest CAPS release passes the loop test; the loop test itself
        // exercises no catalogued CAPS bug, so both should pass — but a
        // num_gangs variable-expression test distinguishes them.
        let case = loop_case();
        let latest = VendorCompiler::latest(VendorId::Caps);
        let r = run_case(&case, &latest, Language::C);
        assert_eq!(r.status, TestStatus::Pass, "{:?}", r.status);
    }

    #[test]
    fn skipped_language() {
        let case = loop_case().c_only();
        let r = run_case(&case, &VendorCompiler::reference(), Language::Fortran);
        assert_eq!(r.status, TestStatus::skipped());
        assert!(!r.status.counted());
    }
}
