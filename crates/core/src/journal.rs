//! Durable campaign journal: a crash-safe, append-only write-ahead log of
//! per-case attempt records.
//!
//! The paper runs its suite as batch campaigns on Titan, where preemption
//! and node failure are routine. An interrupted campaign must not lose the
//! work it already did: every attempt and every finished case is appended to
//! a line-oriented journal *before* the campaign proceeds, each line
//! carrying a checksum so that a torn or corrupted tail (the signature of a
//! crash mid-write) is detected and cleanly discarded on replay.
//!
//! Format — one record per line:
//!
//! ```text
//! J1 <fnv1a64-hex16> <kind>\t<field>\t<field>…
//! ```
//!
//! * `J1` is the format magic/version.
//! * The checksum is FNV-1a 64 over the payload (everything after the
//!   second space), rendered as 16 lowercase hex digits.
//! * Fields are tab-separated; free-text fields are escaped (`\\`, `\t`,
//!   `\n`, `\r`) so every record stays on one line.
//!
//! Replay applies a strict **tail rule**: the first line that is torn (no
//! trailing newline), fails its checksum, or does not decode invalidates
//! itself and everything after it — a crash corrupts only the tail of an
//! append-only file, so everything before the damage is trustworthy.
//! Duplicate completion records (e.g. from a double-resumed campaign) keep
//! the first occurrence and count the rest as discarded.
//!
//! The module also provides [`atomic_write`], the temp-file + rename helper
//! every report/journal-adjacent file write in the workspace goes through so
//! a crash can never leave a half-written artifact at the destination path.

use crate::case::TestStatus;
use crate::harness::CaseResult;
use crate::stats::Certainty;
use acc_spec::{FeatureId, Language};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Format magic + version prefix of every journal line.
pub const MAGIC: &str = "J1";

/// FNV-1a 64-bit checksum over a payload string — cheap, dependency-free,
/// and more than strong enough to detect torn writes and bit flips in a
/// line-oriented log (this is corruption *detection*, not cryptography).
pub fn checksum(payload: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in payload.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Escape a free-text field so it survives the tab-separated, line-oriented
/// format: `\` → `\\`, tab → `\t`, newline → `\n`, CR → `\r`.
///
/// Public because the harness result store writes its own record kinds in
/// the same `J1` framing and must stay byte-compatible with journal rows.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

/// Inverse of [`escape`]; `None` on a malformed escape sequence (which the
/// replay tail rule treats as corruption).
pub fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

/// Single-letter language code used in journal and store frames.
pub fn encode_language(lang: Language) -> &'static str {
    match lang {
        Language::C => "C",
        Language::Fortran => "F",
    }
}

/// Inverse of [`encode_language`].
pub fn decode_language(s: &str) -> Option<Language> {
    match s {
        "C" => Some(Language::C),
        "F" => Some(Language::Fortran),
        _ => None,
    }
}

/// Compact status code used in journal and store frames. A reason-less
/// skip stays the bare `SK` of the v1 format; a degradation reason rides
/// as `SK:<reason>`, mirroring the other message-carrying statuses.
pub fn encode_status(status: &TestStatus) -> String {
    match status {
        TestStatus::Pass => "P".to_string(),
        TestStatus::PassInconclusive => "P*".to_string(),
        TestStatus::CompileError(m) => format!("CE:{m}"),
        TestStatus::WrongResult => "WR".to_string(),
        TestStatus::Crash(m) => format!("X:{m}"),
        TestStatus::Timeout => "TO".to_string(),
        TestStatus::Infra(m) => format!("IN:{m}"),
        TestStatus::Flaky => "FL".to_string(),
        TestStatus::Skipped(None) => "SK".to_string(),
        TestStatus::Skipped(Some(m)) => format!("SK:{m}"),
    }
}

/// Inverse of [`encode_status`]; `None` means corruption (tail rule).
pub fn decode_status(s: &str) -> Option<TestStatus> {
    if let Some((kind, msg)) = s.split_once(':') {
        return match kind {
            "CE" => Some(TestStatus::CompileError(msg.to_string())),
            "X" => Some(TestStatus::Crash(msg.to_string())),
            "IN" => Some(TestStatus::Infra(msg.to_string())),
            "SK" => Some(TestStatus::Skipped(Some(msg.to_string()))),
            _ => None,
        };
    }
    match s {
        "P" => Some(TestStatus::Pass),
        "P*" => Some(TestStatus::PassInconclusive),
        "WR" => Some(TestStatus::WrongResult),
        "TO" => Some(TestStatus::Timeout),
        "FL" => Some(TestStatus::Flaky),
        "SK" => Some(TestStatus::Skipped(None)),
        _ => None,
    }
}

/// Certainty as `m:nf`, or `-` when absent.
pub fn encode_certainty(c: &Option<Certainty>) -> String {
    match c {
        Some(c) => format!("{}:{}", c.m, c.nf),
        None => "-".to_string(),
    }
}

/// Inverse of [`encode_certainty`]; `None` means corruption (tail rule).
pub fn decode_certainty(s: &str) -> Option<Option<Certainty>> {
    if s == "-" {
        return Some(None);
    }
    let (m, nf) = s.split_once(':')?;
    let m: u32 = m.parse().ok()?;
    let nf: u32 = nf.parse().ok()?;
    if m == 0 || nf > m {
        return None;
    }
    Some(Some(Certainty::new(m, nf)))
}

fn encode_node(node: &Option<u32>) -> String {
    match node {
        Some(n) => n.to_string(),
        None => "-".to_string(),
    }
}

fn decode_node(s: &str) -> Option<Option<u32>> {
    if s == "-" {
        return Some(None);
    }
    s.parse().ok().map(Some)
}

/// One journal record. The variants cover the executor's per-case lifecycle
/// (start / attempt verdict / case completion) and the cluster sweep's
/// node-level events (loss, quarantine).
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// Identity of the run that wrote the journal — used by `--resume` to
    /// refuse a journal recorded for a different target.
    Meta {
        /// What was being validated (a compiler label or a sweep scope).
        scope: String,
        /// Total number of jobs the run schedules.
        total_jobs: usize,
        /// Languages in play, `+`-joined.
        languages: String,
    },
    /// An attempt is about to run. A start without a matching
    /// [`JournalRecord::CaseDone`] marks an in-flight case the crash
    /// interrupted; resume re-runs it.
    AttemptStart {
        /// Case name.
        name: String,
        /// Language variant.
        language: Language,
        /// Attempt ordinal (0-based).
        attempt: u32,
    },
    /// An attempt finished with a verdict (the per-attempt taxonomy row).
    Attempt {
        /// Case name.
        name: String,
        /// Language variant.
        language: Language,
        /// Attempt ordinal (0-based).
        attempt: u32,
        /// The attempt's classification.
        status: TestStatus,
        /// Wall-clock duration of the attempt in milliseconds.
        duration_ms: u64,
    },
    /// A case reached its final verdict; carries the complete result so
    /// resume can reproduce the report row without re-running the case.
    CaseDone {
        /// The final result row.
        result: CaseResult,
        /// Node that executed the case (cluster sweeps only).
        node: Option<u32>,
        /// Wall-clock duration across all attempts in milliseconds.
        duration_ms: u64,
    },
    /// A node went offline mid-run; its queued cases were reassigned.
    NodeLost {
        /// Node id.
        node: u32,
        /// Units the node had completed before dying.
        completed: usize,
        /// Queued units drained onto surviving nodes.
        reassigned: usize,
    },
    /// A node died often enough to be excluded from future scheduling.
    NodeQuarantined {
        /// Node id.
        node: u32,
        /// Total deaths observed across the journal's lifetime.
        deaths: u32,
    },
}

impl JournalRecord {
    /// The tab-separated payload (no magic, no checksum, no newline).
    fn payload(&self) -> String {
        match self {
            JournalRecord::Meta {
                scope,
                total_jobs,
                languages,
            } => format!("meta\t{}\t{}\t{}", escape(scope), total_jobs, escape(languages)),
            JournalRecord::AttemptStart {
                name,
                language,
                attempt,
            } => format!(
                "start\t{}\t{}\t{}",
                escape(name),
                encode_language(*language),
                attempt
            ),
            JournalRecord::Attempt {
                name,
                language,
                attempt,
                status,
                duration_ms,
            } => format!(
                "attempt\t{}\t{}\t{}\t{}\t{}",
                escape(name),
                encode_language(*language),
                attempt,
                escape(&encode_status(status)),
                duration_ms
            ),
            JournalRecord::CaseDone {
                result,
                node,
                duration_ms,
            } => format!(
                "done\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                escape(&result.name),
                escape(result.feature.as_str()),
                encode_language(result.language),
                escape(&encode_status(&result.status)),
                encode_certainty(&result.certainty),
                result.attempts,
                duration_ms,
                encode_node(node),
                escape(&result.functional_source)
            ),
            JournalRecord::NodeLost {
                node,
                completed,
                reassigned,
            } => format!("node-lost\t{node}\t{completed}\t{reassigned}"),
            JournalRecord::NodeQuarantined { node, deaths } => {
                format!("node-quarantined\t{node}\t{deaths}")
            }
        }
    }

    /// Encode as one complete journal line (magic, checksum, payload,
    /// trailing newline).
    pub fn encode(&self) -> String {
        let payload = self.payload();
        format!("{MAGIC} {:016x} {payload}\n", checksum(&payload))
    }

    /// Decode one line (without its trailing newline). `None` means the
    /// line is corrupt — wrong magic, checksum mismatch, or a payload that
    /// does not parse — and the replay tail rule applies.
    pub fn decode(line: &str) -> Option<Self> {
        let rest = line.strip_prefix(MAGIC)?.strip_prefix(' ')?;
        let (crc_hex, payload) = rest.split_once(' ')?;
        let crc = u64::from_str_radix(crc_hex, 16).ok()?;
        if crc != checksum(payload) {
            return None;
        }
        let mut fields = payload.split('\t');
        let kind = fields.next()?;
        let fields: Vec<&str> = fields.collect();
        match kind {
            "meta" => {
                let [scope, total, languages] = fields.as_slice() else {
                    return None;
                };
                Some(JournalRecord::Meta {
                    scope: unescape(scope)?,
                    total_jobs: total.parse().ok()?,
                    languages: unescape(languages)?,
                })
            }
            "start" => {
                let [name, lang, attempt] = fields.as_slice() else {
                    return None;
                };
                Some(JournalRecord::AttemptStart {
                    name: unescape(name)?,
                    language: decode_language(lang)?,
                    attempt: attempt.parse().ok()?,
                })
            }
            "attempt" => {
                let [name, lang, attempt, status, duration] = fields.as_slice() else {
                    return None;
                };
                Some(JournalRecord::Attempt {
                    name: unescape(name)?,
                    language: decode_language(lang)?,
                    attempt: attempt.parse().ok()?,
                    status: decode_status(&unescape(status)?)?,
                    duration_ms: duration.parse().ok()?,
                })
            }
            "done" => {
                let [name, feature, lang, status, cert, attempts, duration, node, source] =
                    fields.as_slice()
                else {
                    return None;
                };
                Some(JournalRecord::CaseDone {
                    result: CaseResult {
                        name: unescape(name)?,
                        feature: FeatureId::new(unescape(feature)?),
                        language: decode_language(lang)?,
                        status: decode_status(&unescape(status)?)?,
                        certainty: decode_certainty(cert)?,
                        functional_source: unescape(source)?,
                        attempts: attempts.parse().ok()?,
                    },
                    node: decode_node(node)?,
                    duration_ms: duration.parse().ok()?,
                })
            }
            "node-lost" => {
                let [node, completed, reassigned] = fields.as_slice() else {
                    return None;
                };
                Some(JournalRecord::NodeLost {
                    node: node.parse().ok()?,
                    completed: completed.parse().ok()?,
                    reassigned: reassigned.parse().ok()?,
                })
            }
            "node-quarantined" => {
                let [node, deaths] = fields.as_slice() else {
                    return None;
                };
                Some(JournalRecord::NodeQuarantined {
                    node: node.parse().ok()?,
                    deaths: deaths.parse().ok()?,
                })
            }
            _ => None,
        }
    }
}

/// Where the executor sends journal records. Implementations must be safe
/// to call from worker threads; append order across concurrent workers is
/// whatever the scheduler produced (replay keys records by case identity,
/// not position, so interleaving is harmless).
pub trait JournalSink: Send + Sync {
    /// Append one record. Best-effort: sinks swallow I/O errors (a
    /// campaign must not die because its journal disk filled up) but should
    /// retain the first error for the operator — see
    /// [`FileJournal::take_error`].
    fn append(&self, record: &JournalRecord);
}

struct FileJournalInner {
    file: File,
    error: Option<String>,
}

/// A file-backed journal sink: every record is appended and flushed so the
/// on-disk journal is never more than one in-flight line behind reality.
pub struct FileJournal {
    path: PathBuf,
    inner: Mutex<FileJournalInner>,
}

impl FileJournal {
    /// Create (truncating) a fresh journal at `path`. The containing
    /// directory is fsynced so the journal's *existence* is as durable as
    /// its records.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        fsync_dir(containing_dir(&path))?;
        Ok(FileJournal {
            path,
            inner: Mutex::new(FileJournalInner { file, error: None }),
        })
    }

    /// Open `path` for appending (creating it if missing) — the resume
    /// path: replay first, then keep appending to the same journal.
    pub fn append_to(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        fsync_dir(containing_dir(&path))?;
        Ok(FileJournal {
            path,
            inner: Mutex::new(FileJournalInner { file, error: None }),
        })
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The first append error, if any occurred (and clears it).
    pub fn take_error(&self) -> Option<String> {
        self.inner.lock().expect("journal lock").error.take()
    }
}

impl JournalSink for FileJournal {
    fn append(&self, record: &JournalRecord) {
        let line = record.encode();
        let mut inner = self.inner.lock().expect("journal lock");
        let result = inner
            .file
            .write_all(line.as_bytes())
            .and_then(|()| inner.file.flush());
        if let (Err(e), None) = (result, &inner.error) {
            inner.error = Some(format!("{}: {e}", self.path.display()));
        }
    }
}

/// An in-memory journal sink for tests: accumulates encoded lines exactly
/// as a [`FileJournal`] would write them.
#[derive(Default)]
pub struct MemoryJournal {
    text: Mutex<String>,
}

impl MemoryJournal {
    /// Empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated journal text.
    pub fn text(&self) -> String {
        self.text.lock().expect("journal lock").clone()
    }
}

impl JournalSink for MemoryJournal {
    fn append(&self, record: &JournalRecord) {
        self.text
            .lock()
            .expect("journal lock")
            .push_str(&record.encode());
    }
}

/// A completed case recovered from a journal: the final result row plus the
/// node that executed it (cluster sweeps only).
#[derive(Debug, Clone)]
pub struct CompletedCase {
    /// The recovered result.
    pub result: CaseResult,
    /// Executing node, when the journal came from a cluster sweep.
    pub node: Option<u32>,
}

/// The distilled state of a replayed journal: what completed, what was
/// in flight, which nodes died, and what had to be discarded.
#[derive(Debug, Default)]
pub struct Replay {
    /// First `meta` record: (scope, total jobs, languages).
    pub meta: Option<(String, usize, String)>,
    /// Completed cases keyed by (name, language) — these are skipped on
    /// resume and their journaled rows reused verbatim.
    pub completed: HashMap<(String, Language), CompletedCase>,
    /// Cases with a start record but no completion — interrupted in flight;
    /// resume re-runs them from scratch.
    pub in_flight: BTreeSet<(String, Language)>,
    /// Death count per node across the journal's lifetime.
    pub node_deaths: BTreeMap<u32, u32>,
    /// Nodes explicitly quarantined by a record.
    pub quarantined: BTreeSet<u32>,
    /// Valid records applied.
    pub records: usize,
    /// Duplicate completion records discarded (first occurrence wins).
    pub duplicates_discarded: usize,
    /// Lines discarded by the tail rule (the first corrupt line and
    /// everything after it).
    pub corrupt_discarded: usize,
    /// Whether the final line was torn (no trailing newline) and discarded.
    pub torn_tail_discarded: bool,
    /// Byte length of the trusted prefix — everything before the first torn
    /// or corrupt line. Resume compacts the file to this length before
    /// appending, so new records never land behind a poisoned tail (where
    /// the tail rule would silently discard them on the next replay).
    pub valid_bytes: usize,
}

impl Replay {
    /// Replay journal text. Never fails: corruption shrinks the usable
    /// prefix instead of aborting the resume.
    pub fn from_text(text: &str) -> Replay {
        let mut replay = Replay::default();
        let mut lines = text.split_inclusive('\n');
        for raw in lines.by_ref() {
            if !raw.ends_with('\n') {
                // A torn tail: the crash happened mid-write.
                replay.torn_tail_discarded = true;
                return replay;
            }
            let line = raw.trim_end_matches(['\n', '\r']);
            if line.is_empty() {
                replay.valid_bytes += raw.len();
                continue;
            }
            match JournalRecord::decode(line) {
                Some(record) => {
                    replay.apply(record);
                    replay.valid_bytes += raw.len();
                }
                None => {
                    // Tail rule: this line and everything after it is
                    // untrustworthy.
                    replay.corrupt_discarded = 1 + lines.count();
                    return replay;
                }
            }
        }
        replay
    }

    /// Replay a journal file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Replay> {
        Ok(Replay::from_text(&std::fs::read_to_string(path)?))
    }

    /// Open a journal for resumption: replay it, compact the file down to
    /// its trusted prefix if the tail was torn or corrupt (so freshly
    /// appended records never sit behind a line the tail rule would discard
    /// on the next replay), and reopen it for appending.
    pub fn open_resume(path: impl AsRef<Path>) -> io::Result<(Replay, FileJournal)> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)?;
        let replay = Replay::from_text(&text);
        if replay.valid_bytes < text.len() {
            atomic_write(path, &text.as_bytes()[..replay.valid_bytes])?;
        }
        let journal = FileJournal::append_to(path)?;
        Ok((replay, journal))
    }

    fn apply(&mut self, record: JournalRecord) {
        self.records += 1;
        match record {
            JournalRecord::Meta {
                scope,
                total_jobs,
                languages,
            } => {
                if self.meta.is_none() {
                    self.meta = Some((scope, total_jobs, languages));
                }
            }
            JournalRecord::AttemptStart { name, language, .. } => {
                if !self.completed.contains_key(&(name.clone(), language)) {
                    self.in_flight.insert((name, language));
                }
            }
            JournalRecord::Attempt { .. } => {}
            JournalRecord::CaseDone { result, node, .. } => {
                let key = (result.name.clone(), result.language);
                self.in_flight.remove(&key);
                if let std::collections::hash_map::Entry::Vacant(slot) = self.completed.entry(key) {
                    slot.insert(CompletedCase { result, node });
                } else {
                    self.duplicates_discarded += 1;
                }
            }
            JournalRecord::NodeLost { node, .. } => {
                *self.node_deaths.entry(node).or_insert(0) += 1;
            }
            JournalRecord::NodeQuarantined { node, .. } => {
                self.quarantined.insert(node);
            }
        }
    }

    /// Completed-case count.
    pub fn completed_count(&self) -> usize {
        self.completed.len()
    }

    /// One-line operator summary: what was recovered and what was thrown
    /// away (the resume path prints this so discarded work is never
    /// silent).
    pub fn summary(&self) -> String {
        let mut s = format!(
            "journal replay: {} record(s), {} case(s) complete, {} in flight",
            self.records,
            self.completed.len(),
            self.in_flight.len()
        );
        if !self.node_deaths.is_empty() {
            let deaths: Vec<String> = self
                .node_deaths
                .iter()
                .map(|(n, c)| format!("nid{n:05}×{c}"))
                .collect();
            let _ = write!(s, ", node deaths: {}", deaths.join(" "));
        }
        let mut discarded = Vec::new();
        if self.torn_tail_discarded {
            discarded.push("a torn tail line".to_string());
        }
        if self.corrupt_discarded > 0 {
            discarded.push(format!("{} corrupt line(s)", self.corrupt_discarded));
        }
        if self.duplicates_discarded > 0 {
            discarded.push(format!(
                "{} duplicate record(s)",
                self.duplicates_discarded
            ));
        }
        if !discarded.is_empty() {
            let _ = write!(s, "; discarded {}", discarded.join(", "));
        }
        s
    }
}

/// The directory that contains `path`, for durability syncs: its parent,
/// or `.` when the path is a bare file name (whose parent renders as the
/// empty string, which `File::open` rejects).
fn containing_dir(path: &Path) -> &Path {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    }
}

/// Fsync a directory so a just-created or just-renamed entry inside it
/// survives power failure. `sync_all` on the *file* makes the bytes
/// durable; only an fsync of the *directory* makes the name durable — a
/// rename without it can vanish on crash, resurrecting the old contents.
/// No-op on non-Unix targets, where directory handles can't be synced.
pub fn fsync_dir(dir: impl AsRef<Path>) -> io::Result<()> {
    let dir = dir.as_ref();
    let dir = if dir.as_os_str().is_empty() {
        Path::new(".")
    } else {
        dir
    };
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}

/// Crash-safe file write: write the full contents to a temp file in the
/// destination directory, sync it, atomically rename it over `path`, then
/// fsync the directory so the rename itself is durable. A crash at any
/// point leaves either the old file or the new one — never a half-written
/// hybrid, and never a rename that silently rolls back.
pub fn atomic_write(path: impl AsRef<Path>, contents: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(".tmp{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        fsync_dir(containing_dir(path))
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result(name: &str, status: TestStatus) -> CaseResult {
        CaseResult {
            name: name.to_string(),
            feature: FeatureId::from(name),
            language: Language::C,
            status,
            certainty: Some(Certainty::new(3, 3)),
            functional_source: "int main(void) {\n\treturn 1;\n}\n".to_string(),
            attempts: 2,
        }
    }

    fn done(name: &str, status: TestStatus) -> JournalRecord {
        JournalRecord::CaseDone {
            result: sample_result(name, status),
            node: Some(7),
            duration_ms: 12,
        }
    }

    #[test]
    fn every_record_kind_round_trips() {
        let records = vec![
            JournalRecord::Meta {
                scope: "Cray 8.2.0".to_string(),
                total_jobs: 42,
                languages: "C+Fortran".to_string(),
            },
            JournalRecord::AttemptStart {
                name: "loop".to_string(),
                language: Language::Fortran,
                attempt: 1,
            },
            JournalRecord::Attempt {
                name: "loop".to_string(),
                language: Language::C,
                attempt: 0,
                status: TestStatus::Infra("panic: worker\tdied\nbadly".to_string()),
                duration_ms: 99,
            },
            done("data.copy", TestStatus::Pass),
            done("x", TestStatus::CompileError("unexpected `:`".to_string())),
            JournalRecord::NodeLost {
                node: 3,
                completed: 5,
                reassigned: 9,
            },
            JournalRecord::NodeQuarantined { node: 3, deaths: 2 },
        ];
        for record in records {
            let line = record.encode();
            assert!(line.ends_with('\n'));
            assert_eq!(
                line.matches('\n').count(),
                1,
                "escaping keeps records one line: {line:?}"
            );
            let decoded = JournalRecord::decode(line.trim_end_matches('\n'))
                .unwrap_or_else(|| panic!("decode failed: {line:?}"));
            assert_eq!(decoded, record);
        }
    }

    #[test]
    fn replay_collects_completed_and_in_flight() {
        let journal = MemoryJournal::new();
        journal.append(&JournalRecord::Meta {
            scope: "ref".to_string(),
            total_jobs: 3,
            languages: "C".to_string(),
        });
        journal.append(&JournalRecord::AttemptStart {
            name: "a".to_string(),
            language: Language::C,
            attempt: 0,
        });
        journal.append(&done("a", TestStatus::Pass));
        journal.append(&JournalRecord::AttemptStart {
            name: "b".to_string(),
            language: Language::C,
            attempt: 0,
        });
        let replay = Replay::from_text(&journal.text());
        assert_eq!(replay.completed_count(), 1);
        assert!(replay
            .completed
            .contains_key(&("a".to_string(), Language::C)));
        assert_eq!(replay.in_flight.len(), 1, "b was interrupted in flight");
        assert_eq!(replay.meta.as_ref().unwrap().0, "ref");
        assert!(!replay.torn_tail_discarded);
        assert_eq!(replay.corrupt_discarded, 0);
    }

    #[test]
    fn torn_tail_is_discarded_cleanly() {
        let mut text = done("a", TestStatus::Pass).encode();
        let torn = done("b", TestStatus::Pass).encode();
        text.push_str(&torn[..torn.len() - 7]); // crash mid-write: no newline
        let replay = Replay::from_text(&text);
        assert_eq!(replay.completed_count(), 1, "prefix survives");
        assert!(replay.torn_tail_discarded);
        assert!(replay.summary().contains("torn tail"), "{}", replay.summary());
    }

    #[test]
    fn checksum_flip_discards_the_tail() {
        let good = done("a", TestStatus::Pass).encode();
        // Flip one checksum hex digit.
        let mut flip = done("b", TestStatus::Pass).encode().into_bytes();
        flip[3] = if flip[3] == b'0' { b'1' } else { b'0' };
        let bad = String::from_utf8(flip).unwrap();
        let after = done("c", TestStatus::Pass).encode();
        let replay = Replay::from_text(&format!("{good}{bad}{after}"));
        assert_eq!(replay.completed_count(), 1, "only the pre-corruption prefix");
        assert_eq!(replay.corrupt_discarded, 2, "bad line + everything after");
        assert!(!replay.torn_tail_discarded);
    }

    #[test]
    fn garbage_payload_with_valid_frame_is_rejected() {
        let payload = "done\tonly\ttwo";
        let line = format!("{MAGIC} {:016x} {payload}\n", checksum(payload));
        let replay = Replay::from_text(&line);
        assert_eq!(replay.records, 0);
        assert_eq!(replay.corrupt_discarded, 1);
    }

    #[test]
    fn duplicate_completions_keep_first_and_are_counted() {
        let first = done("a", TestStatus::Pass).encode();
        let dup = done("a", TestStatus::WrongResult).encode();
        let replay = Replay::from_text(&format!("{first}{dup}{dup}"));
        assert_eq!(replay.completed_count(), 1);
        assert_eq!(replay.duplicates_discarded, 2);
        let kept = &replay.completed[&("a".to_string(), Language::C)];
        assert_eq!(kept.result.status, TestStatus::Pass, "first record wins");
        assert!(replay.summary().contains("2 duplicate"), "{}", replay.summary());
    }

    #[test]
    fn node_events_accumulate() {
        let mut text = String::new();
        for _ in 0..2 {
            text.push_str(
                &JournalRecord::NodeLost {
                    node: 5,
                    completed: 1,
                    reassigned: 3,
                }
                .encode(),
            );
        }
        text.push_str(&JournalRecord::NodeQuarantined { node: 5, deaths: 2 }.encode());
        let replay = Replay::from_text(&text);
        assert_eq!(replay.node_deaths.get(&5), Some(&2));
        assert!(replay.quarantined.contains(&5));
        assert!(replay.summary().contains("nid00005×2"), "{}", replay.summary());
    }

    #[test]
    fn atomic_write_replaces_contents() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("accvv-atomic-{}.txt", std::process::id()));
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // No temp droppings left behind.
        let tmp = path.with_file_name(format!(
            "{}.tmp{}",
            path.file_name().unwrap().to_string_lossy(),
            std::process::id()
        ));
        assert!(!tmp.exists());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_text_replays_to_nothing() {
        let replay = Replay::from_text("");
        assert_eq!(replay.records, 0);
        assert_eq!(replay.completed_count(), 0);
        assert!(!replay.torn_tail_discarded);
    }
}
