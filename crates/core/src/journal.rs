//! Durable campaign journal: a crash-safe, append-only write-ahead log of
//! per-case attempt records.
//!
//! The paper runs its suite as batch campaigns on Titan, where preemption
//! and node failure are routine. An interrupted campaign must not lose the
//! work it already did: every attempt and every finished case is appended to
//! a line-oriented journal *before* the campaign proceeds, each line
//! carrying a checksum so that a torn or corrupted tail (the signature of a
//! crash mid-write) is detected and cleanly discarded on replay.
//!
//! Format — one record per line:
//!
//! ```text
//! J1 <fnv1a64-hex16> <kind>\t<field>\t<field>…
//! ```
//!
//! * `J1` is the format magic/version.
//! * The checksum is FNV-1a 64 over the payload (everything after the
//!   second space), rendered as 16 lowercase hex digits.
//! * Fields are tab-separated; free-text fields are escaped (`\\`, `\t`,
//!   `\n`, `\r`) so every record stays on one line.
//!
//! Replay applies a strict **tail rule**: the first line that is torn (no
//! trailing newline), fails its checksum, or does not decode invalidates
//! itself and everything after it — a crash corrupts only the tail of an
//! append-only file, so everything before the damage is trustworthy.
//! Duplicate completion records (e.g. from a double-resumed campaign) keep
//! the first occurrence and count the rest as discarded.
//!
//! All I/O goes through the [`crate::vfs`] seam, so the crash-torture
//! harness can replay a campaign against a hostile disk. Two durability
//! guarantees follow from the write path:
//!
//! * **Verdicts are fsynced.** Records that represent acknowledged work
//!   ([`JournalRecord::durable`]: case completions, run metadata, node
//!   events) are `fsync`ed before `append` returns; per-attempt chatter is
//!   only flushed (losing an attempt line costs a re-run, not a verdict —
//!   the classic group-commit trade).
//! * **Segment rotation is crash-safe.** A journal built
//!   [`FileJournal::with_rotation`] seals the active file into a
//!   `<path>.seg<N>` segment (sync → rename → directory fsync → fresh
//!   active → directory fsync) once it crosses the size threshold; replay
//!   reads segments in order and the active file last, and the tail rule
//!   cuts across file boundaries.
//!
//! The atomic temp-file + rename write helper every report/journal-adjacent
//! file in the workspace uses lives in [`crate::vfs`] and is re-exported
//! here as [`atomic_write`].

use crate::case::TestStatus;
use crate::harness::CaseResult;
use crate::stats::Certainty;
use crate::vfs::{self, RealFs, Vfs, VfsFile};
use acc_spec::{FeatureId, Language};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

pub use crate::vfs::{atomic_write, fsync_dir};

/// Format magic + version prefix of every journal line.
pub const MAGIC: &str = "J1";

/// FNV-1a 64-bit checksum over a payload string — cheap, dependency-free,
/// and more than strong enough to detect torn writes and bit flips in a
/// line-oriented log (this is corruption *detection*, not cryptography).
pub fn checksum(payload: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in payload.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Escape a free-text field so it survives the tab-separated, line-oriented
/// format: `\` → `\\`, tab → `\t`, newline → `\n`, CR → `\r`.
///
/// Public because the harness result store writes its own record kinds in
/// the same `J1` framing and must stay byte-compatible with journal rows.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

/// Inverse of [`escape`]; `None` on a malformed escape sequence (which the
/// replay tail rule treats as corruption).
pub fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

/// Single-letter language code used in journal and store frames.
pub fn encode_language(lang: Language) -> &'static str {
    match lang {
        Language::C => "C",
        Language::Fortran => "F",
    }
}

/// Inverse of [`encode_language`].
pub fn decode_language(s: &str) -> Option<Language> {
    match s {
        "C" => Some(Language::C),
        "F" => Some(Language::Fortran),
        _ => None,
    }
}

/// Compact status code used in journal and store frames. A reason-less
/// skip stays the bare `SK` of the v1 format; a degradation reason rides
/// as `SK:<reason>`, mirroring the other message-carrying statuses.
pub fn encode_status(status: &TestStatus) -> String {
    match status {
        TestStatus::Pass => "P".to_string(),
        TestStatus::PassInconclusive => "P*".to_string(),
        TestStatus::CompileError(m) => format!("CE:{m}"),
        TestStatus::WrongResult => "WR".to_string(),
        TestStatus::Crash(m) => format!("X:{m}"),
        TestStatus::Timeout => "TO".to_string(),
        TestStatus::Infra(m) => format!("IN:{m}"),
        TestStatus::Flaky => "FL".to_string(),
        TestStatus::Skipped(None) => "SK".to_string(),
        TestStatus::Skipped(Some(m)) => format!("SK:{m}"),
    }
}

/// Inverse of [`encode_status`]; `None` means corruption (tail rule).
pub fn decode_status(s: &str) -> Option<TestStatus> {
    if let Some((kind, msg)) = s.split_once(':') {
        return match kind {
            "CE" => Some(TestStatus::CompileError(msg.to_string())),
            "X" => Some(TestStatus::Crash(msg.to_string())),
            "IN" => Some(TestStatus::Infra(msg.to_string())),
            "SK" => Some(TestStatus::Skipped(Some(msg.to_string()))),
            _ => None,
        };
    }
    match s {
        "P" => Some(TestStatus::Pass),
        "P*" => Some(TestStatus::PassInconclusive),
        "WR" => Some(TestStatus::WrongResult),
        "TO" => Some(TestStatus::Timeout),
        "FL" => Some(TestStatus::Flaky),
        "SK" => Some(TestStatus::Skipped(None)),
        _ => None,
    }
}

/// Certainty as `m:nf`, or `-` when absent.
pub fn encode_certainty(c: &Option<Certainty>) -> String {
    match c {
        Some(c) => format!("{}:{}", c.m, c.nf),
        None => "-".to_string(),
    }
}

/// Inverse of [`encode_certainty`]; `None` means corruption (tail rule).
pub fn decode_certainty(s: &str) -> Option<Option<Certainty>> {
    if s == "-" {
        return Some(None);
    }
    let (m, nf) = s.split_once(':')?;
    let m: u32 = m.parse().ok()?;
    let nf: u32 = nf.parse().ok()?;
    if m == 0 || nf > m {
        return None;
    }
    Some(Some(Certainty::new(m, nf)))
}

fn encode_node(node: &Option<u32>) -> String {
    match node {
        Some(n) => n.to_string(),
        None => "-".to_string(),
    }
}

fn decode_node(s: &str) -> Option<Option<u32>> {
    if s == "-" {
        return Some(None);
    }
    s.parse().ok().map(Some)
}

/// One journal record. The variants cover the executor's per-case lifecycle
/// (start / attempt verdict / case completion) and the cluster sweep's
/// node-level events (loss, quarantine).
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// Identity of the run that wrote the journal — used by `--resume` to
    /// refuse a journal recorded for a different target.
    Meta {
        /// What was being validated (a compiler label or a sweep scope).
        scope: String,
        /// Total number of jobs the run schedules.
        total_jobs: usize,
        /// Languages in play, `+`-joined.
        languages: String,
    },
    /// An attempt is about to run. A start without a matching
    /// [`JournalRecord::CaseDone`] marks an in-flight case the crash
    /// interrupted; resume re-runs it.
    AttemptStart {
        /// Case name.
        name: String,
        /// Language variant.
        language: Language,
        /// Attempt ordinal (0-based).
        attempt: u32,
    },
    /// An attempt finished with a verdict (the per-attempt taxonomy row).
    Attempt {
        /// Case name.
        name: String,
        /// Language variant.
        language: Language,
        /// Attempt ordinal (0-based).
        attempt: u32,
        /// The attempt's classification.
        status: TestStatus,
        /// Wall-clock duration of the attempt in milliseconds.
        duration_ms: u64,
    },
    /// A case reached its final verdict; carries the complete result so
    /// resume can reproduce the report row without re-running the case.
    CaseDone {
        /// The final result row.
        result: CaseResult,
        /// Node that executed the case (cluster sweeps only).
        node: Option<u32>,
        /// Wall-clock duration across all attempts in milliseconds.
        duration_ms: u64,
    },
    /// A node went offline mid-run; its queued cases were reassigned.
    NodeLost {
        /// Node id.
        node: u32,
        /// Units the node had completed before dying.
        completed: usize,
        /// Queued units drained onto surviving nodes.
        reassigned: usize,
    },
    /// A node died often enough to be excluded from future scheduling.
    NodeQuarantined {
        /// Node id.
        node: u32,
        /// Total deaths observed across the journal's lifetime.
        deaths: u32,
    },
}

impl JournalRecord {
    /// The tab-separated payload (no magic, no checksum, no newline).
    fn payload(&self) -> String {
        match self {
            JournalRecord::Meta {
                scope,
                total_jobs,
                languages,
            } => format!("meta\t{}\t{}\t{}", escape(scope), total_jobs, escape(languages)),
            JournalRecord::AttemptStart {
                name,
                language,
                attempt,
            } => format!(
                "start\t{}\t{}\t{}",
                escape(name),
                encode_language(*language),
                attempt
            ),
            JournalRecord::Attempt {
                name,
                language,
                attempt,
                status,
                duration_ms,
            } => format!(
                "attempt\t{}\t{}\t{}\t{}\t{}",
                escape(name),
                encode_language(*language),
                attempt,
                escape(&encode_status(status)),
                duration_ms
            ),
            JournalRecord::CaseDone {
                result,
                node,
                duration_ms,
            } => format!(
                "done\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                escape(&result.name),
                escape(result.feature.as_str()),
                encode_language(result.language),
                escape(&encode_status(&result.status)),
                encode_certainty(&result.certainty),
                result.attempts,
                duration_ms,
                encode_node(node),
                escape(&result.functional_source)
            ),
            JournalRecord::NodeLost {
                node,
                completed,
                reassigned,
            } => format!("node-lost\t{node}\t{completed}\t{reassigned}"),
            JournalRecord::NodeQuarantined { node, deaths } => {
                format!("node-quarantined\t{node}\t{deaths}")
            }
        }
    }

    /// Whether losing this record after `append` returned would break a
    /// recovery invariant. Durable records (run identity, case verdicts,
    /// node events) are fsynced before `append` returns; attempt chatter
    /// is only flushed — losing it costs a re-run, never a verdict.
    pub fn durable(&self) -> bool {
        !matches!(
            self,
            JournalRecord::AttemptStart { .. } | JournalRecord::Attempt { .. }
        )
    }

    /// Encode as one complete journal line (magic, checksum, payload,
    /// trailing newline).
    pub fn encode(&self) -> String {
        let payload = self.payload();
        format!("{MAGIC} {:016x} {payload}\n", checksum(&payload))
    }

    /// Decode one line (without its trailing newline). `None` means the
    /// line is corrupt — wrong magic, checksum mismatch, or a payload that
    /// does not parse — and the replay tail rule applies.
    pub fn decode(line: &str) -> Option<Self> {
        let rest = line.strip_prefix(MAGIC)?.strip_prefix(' ')?;
        let (crc_hex, payload) = rest.split_once(' ')?;
        let crc = u64::from_str_radix(crc_hex, 16).ok()?;
        if crc != checksum(payload) {
            return None;
        }
        let mut fields = payload.split('\t');
        let kind = fields.next()?;
        let fields: Vec<&str> = fields.collect();
        match kind {
            "meta" => {
                let [scope, total, languages] = fields.as_slice() else {
                    return None;
                };
                Some(JournalRecord::Meta {
                    scope: unescape(scope)?,
                    total_jobs: total.parse().ok()?,
                    languages: unescape(languages)?,
                })
            }
            "start" => {
                let [name, lang, attempt] = fields.as_slice() else {
                    return None;
                };
                Some(JournalRecord::AttemptStart {
                    name: unescape(name)?,
                    language: decode_language(lang)?,
                    attempt: attempt.parse().ok()?,
                })
            }
            "attempt" => {
                let [name, lang, attempt, status, duration] = fields.as_slice() else {
                    return None;
                };
                Some(JournalRecord::Attempt {
                    name: unescape(name)?,
                    language: decode_language(lang)?,
                    attempt: attempt.parse().ok()?,
                    status: decode_status(&unescape(status)?)?,
                    duration_ms: duration.parse().ok()?,
                })
            }
            "done" => {
                let [name, feature, lang, status, cert, attempts, duration, node, source] =
                    fields.as_slice()
                else {
                    return None;
                };
                Some(JournalRecord::CaseDone {
                    result: CaseResult {
                        name: unescape(name)?,
                        feature: FeatureId::new(unescape(feature)?),
                        language: decode_language(lang)?,
                        status: decode_status(&unescape(status)?)?,
                        certainty: decode_certainty(cert)?,
                        functional_source: unescape(source)?,
                        attempts: attempts.parse().ok()?,
                    },
                    node: decode_node(node)?,
                    duration_ms: duration.parse().ok()?,
                })
            }
            "node-lost" => {
                let [node, completed, reassigned] = fields.as_slice() else {
                    return None;
                };
                Some(JournalRecord::NodeLost {
                    node: node.parse().ok()?,
                    completed: completed.parse().ok()?,
                    reassigned: reassigned.parse().ok()?,
                })
            }
            "node-quarantined" => {
                let [node, deaths] = fields.as_slice() else {
                    return None;
                };
                Some(JournalRecord::NodeQuarantined {
                    node: node.parse().ok()?,
                    deaths: deaths.parse().ok()?,
                })
            }
            _ => None,
        }
    }
}

/// Where the executor sends journal records. Implementations must be safe
/// to call from worker threads; append order across concurrent workers is
/// whatever the scheduler produced (replay keys records by case identity,
/// not position, so interleaving is harmless).
pub trait JournalSink: Send + Sync {
    /// Append one record. Best-effort: sinks swallow I/O errors (a
    /// campaign must not die because its journal disk filled up) but should
    /// retain the first error for the operator — see
    /// [`FileJournal::take_error`].
    fn append(&self, record: &JournalRecord);
}

/// The rotated-segment path for segment `n` of a journal at `path`:
/// `<path>.seg<N>`, zero-padded so lexical order equals numeric order.
pub fn segment_path(path: &Path, n: u64) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".seg{n:05}"));
    path.with_file_name(name)
}

/// Rotated segments of the journal at `path`, sorted by segment number.
fn segments(vfs: &dyn Vfs, path: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let Some(stem) = path.file_name() else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "journal path has no file name",
        ));
    };
    let prefix = format!("{}.seg", stem.to_string_lossy());
    let mut segs = Vec::new();
    for entry in vfs.read_dir(vfs::containing_dir(path))? {
        let Some(name) = entry.file_name() else {
            continue;
        };
        if let Some(num) = name.to_string_lossy().strip_prefix(&prefix) {
            if let Ok(n) = num.parse::<u64>() {
                segs.push((n, entry));
            }
        }
    }
    segs.sort();
    Ok(segs)
}

/// Every on-disk file of the journal at `path`, in replay order: rotated
/// segments by number, then the active file (when it exists — a crash
/// between rotation's rename and the fresh-active create can leave
/// segments with no active file).
pub fn journal_files(vfs: &dyn Vfs, path: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files: Vec<PathBuf> = segments(vfs, path)?.into_iter().map(|(_, p)| p).collect();
    if vfs.exists(path) {
        files.push(path.to_path_buf());
    }
    Ok(files)
}

struct FileJournalInner {
    file: Box<dyn VfsFile>,
    error: Option<String>,
    /// Bytes written to the active file (rotation trigger).
    bytes: u64,
    /// Next segment number a rotation will seal into.
    next_seg: u64,
}

/// A file-backed journal sink: every record is appended and flushed so the
/// on-disk journal is never more than one in-flight line behind reality,
/// and [durable][JournalRecord::durable] records are fsynced before
/// `append` returns. All I/O goes through a [`Vfs`], so the crash-torture
/// harness can run the journal against a hostile disk.
pub struct FileJournal {
    path: PathBuf,
    vfs: Arc<dyn Vfs>,
    rotate_bytes: Option<u64>,
    inner: Mutex<FileJournalInner>,
}

impl FileJournal {
    /// Create (truncating) a fresh journal at `path`. The containing
    /// directory is fsynced so the journal's *existence* is as durable as
    /// its records.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::create_via(RealFs::shared(), path)
    }

    /// [`FileJournal::create`] on an injected filesystem.
    pub fn create_via(vfs: Arc<dyn Vfs>, path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = vfs.create(&path)?;
        vfs.fsync_dir(vfs::containing_dir(&path))?;
        Ok(FileJournal {
            path,
            vfs,
            rotate_bytes: None,
            inner: Mutex::new(FileJournalInner {
                file,
                error: None,
                bytes: 0,
                next_seg: 0,
            }),
        })
    }

    /// Open `path` for appending (creating it if missing) — the resume
    /// path: replay first, then keep appending to the same journal.
    pub fn append_to(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::append_to_via(RealFs::shared(), path)
    }

    /// [`FileJournal::append_to`] on an injected filesystem. Picks up the
    /// active file's size and the next free segment number so rotation
    /// continues where the previous process left off.
    pub fn append_to_via(vfs: Arc<dyn Vfs>, path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let bytes = if vfs.exists(&path) {
            vfs.read(&path)?.len() as u64
        } else {
            0
        };
        let next_seg = segments(vfs.as_ref(), &path)?
            .last()
            .map_or(0, |(n, _)| n + 1);
        let file = vfs.open_append(&path)?;
        vfs.fsync_dir(vfs::containing_dir(&path))?;
        Ok(FileJournal {
            path,
            vfs,
            rotate_bytes: None,
            inner: Mutex::new(FileJournalInner {
                file,
                error: None,
                bytes,
                next_seg,
            }),
        })
    }

    /// Enable segment rotation: once the active file reaches `max_bytes`,
    /// it is sealed into `<path>.seg<N>` (sync → rename → directory fsync
    /// → fresh active → directory fsync — nothing is dropped until its
    /// replacement is durable) and appends continue in a fresh active
    /// file. Replay reads segments in order, active last.
    pub fn with_rotation(mut self, max_bytes: u64) -> Self {
        self.rotate_bytes = Some(max_bytes.max(1));
        self
    }

    /// The journal's (active-file) path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The first append error, if any occurred (and clears it).
    pub fn take_error(&self) -> Option<String> {
        self.inner.lock().expect("journal lock").error.take()
    }

    fn append_inner(&self, inner: &mut FileJournalInner, record: &JournalRecord) -> io::Result<()> {
        let line = record.encode();
        inner.file.write_all(line.as_bytes())?;
        inner.bytes += line.len() as u64;
        if record.durable() {
            inner.file.sync_all()?;
        } else {
            inner.file.flush()?;
        }
        if let Some(max) = self.rotate_bytes {
            if inner.bytes >= max {
                self.rotate(inner)?;
            }
        }
        Ok(())
    }

    /// Seal the active file into the next segment and start a fresh one.
    /// Same discipline as `atomic_write`: the segment's bytes are synced
    /// before the rename, and the rename is made durable by a directory
    /// fsync before anything else happens.
    fn rotate(&self, inner: &mut FileJournalInner) -> io::Result<()> {
        inner.file.sync_all()?;
        let seg = segment_path(&self.path, inner.next_seg);
        self.vfs.rename(&self.path, &seg)?;
        self.vfs.fsync_dir(vfs::containing_dir(&self.path))?;
        inner.file = self.vfs.create(&self.path)?;
        self.vfs.fsync_dir(vfs::containing_dir(&self.path))?;
        inner.next_seg += 1;
        inner.bytes = 0;
        Ok(())
    }
}

impl JournalSink for FileJournal {
    fn append(&self, record: &JournalRecord) {
        let mut inner = self.inner.lock().expect("journal lock");
        let result = self.append_inner(&mut inner, record);
        if let (Err(e), None) = (result, &inner.error) {
            inner.error = Some(format!("{}: {e}", self.path.display()));
        }
    }
}

/// An in-memory journal sink for tests: accumulates encoded lines exactly
/// as a [`FileJournal`] would write them.
#[derive(Default)]
pub struct MemoryJournal {
    text: Mutex<String>,
}

impl MemoryJournal {
    /// Empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated journal text.
    pub fn text(&self) -> String {
        self.text.lock().expect("journal lock").clone()
    }
}

impl JournalSink for MemoryJournal {
    fn append(&self, record: &JournalRecord) {
        self.text
            .lock()
            .expect("journal lock")
            .push_str(&record.encode());
    }
}

/// A completed case recovered from a journal: the final result row plus the
/// node that executed it (cluster sweeps only).
#[derive(Debug, Clone)]
pub struct CompletedCase {
    /// The recovered result.
    pub result: CaseResult,
    /// Executing node, when the journal came from a cluster sweep.
    pub node: Option<u32>,
}

/// The distilled state of a replayed journal: what completed, what was
/// in flight, which nodes died, and what had to be discarded.
#[derive(Debug, Default)]
pub struct Replay {
    /// First `meta` record: (scope, total jobs, languages).
    pub meta: Option<(String, usize, String)>,
    /// Completed cases keyed by (name, language) — these are skipped on
    /// resume and their journaled rows reused verbatim.
    pub completed: HashMap<(String, Language), CompletedCase>,
    /// Cases with a start record but no completion — interrupted in flight;
    /// resume re-runs them from scratch.
    pub in_flight: BTreeSet<(String, Language)>,
    /// Death count per node across the journal's lifetime.
    pub node_deaths: BTreeMap<u32, u32>,
    /// Nodes explicitly quarantined by a record.
    pub quarantined: BTreeSet<u32>,
    /// Valid records applied.
    pub records: usize,
    /// Duplicate completion records discarded (first occurrence wins).
    pub duplicates_discarded: usize,
    /// Lines discarded by the tail rule (the first corrupt line and
    /// everything after it).
    pub corrupt_discarded: usize,
    /// Whether the final line was torn (no trailing newline) and discarded.
    pub torn_tail_discarded: bool,
    /// Byte length of the trusted prefix *of the file where the tail rule
    /// cut* (the last file absorbed, when no cut occurred). Resume
    /// compacts that file to this length before appending, so new records
    /// never land behind a poisoned tail (where the tail rule would
    /// silently discard them on the next replay).
    pub valid_bytes: usize,
    /// Index (in [`journal_files`] order) of the file where the tail rule
    /// cut, when a multi-file replay hit corruption.
    pub cut_file: Option<usize>,
    /// Whole later files dropped by the tail rule after a cut.
    pub files_discarded: usize,
}

impl Replay {
    /// Replay journal text. Never fails: corruption shrinks the usable
    /// prefix instead of aborting the resume.
    pub fn from_text(text: &str) -> Replay {
        let mut replay = Replay::default();
        replay.absorb(text);
        replay
    }

    /// Absorb one file's text; `false` when the tail rule cut it short
    /// (torn final line or corrupt line), which invalidates every later
    /// file too. Resets `valid_bytes` to count within this text.
    fn absorb(&mut self, text: &str) -> bool {
        self.valid_bytes = 0;
        let mut lines = text.split_inclusive('\n');
        for raw in lines.by_ref() {
            if !raw.ends_with('\n') {
                // A torn tail: the crash happened mid-write.
                self.torn_tail_discarded = true;
                return false;
            }
            let line = raw.trim_end_matches(['\n', '\r']);
            if line.is_empty() {
                self.valid_bytes += raw.len();
                continue;
            }
            match JournalRecord::decode(line) {
                Some(record) => {
                    self.apply(record);
                    self.valid_bytes += raw.len();
                }
                None => {
                    // Tail rule: this line and everything after it is
                    // untrustworthy.
                    self.corrupt_discarded += 1 + lines.count();
                    return false;
                }
            }
        }
        true
    }

    /// Replay a journal file, including any rotated segments.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Replay> {
        Replay::load_via(&RealFs, path)
    }

    /// [`Replay::load`] on an injected filesystem.
    pub fn load_via(vfs: &dyn Vfs, path: impl AsRef<Path>) -> io::Result<Replay> {
        Ok(Replay::scan(vfs, path.as_ref())?.0)
    }

    /// Replay segments + active file; also returns the file list so the
    /// resume path knows what to truncate or drop after a cut.
    fn scan(vfs: &dyn Vfs, path: &Path) -> io::Result<(Replay, Vec<PathBuf>)> {
        let files = journal_files(vfs, path)?;
        if files.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no journal at {}", path.display()),
            ));
        }
        let mut replay = Replay::default();
        for (i, file) in files.iter().enumerate() {
            if !replay.absorb(&vfs::read_lossy(vfs, file)?) {
                replay.cut_file = Some(i);
                replay.files_discarded = files.len() - i - 1;
                break;
            }
        }
        Ok((replay, files))
    }

    /// Open a journal for resumption: replay it, compact the cut file down
    /// to its trusted prefix if the tail was torn or corrupt (so freshly
    /// appended records never sit behind a line the tail rule would discard
    /// on the next replay), drop any files after the cut entirely, and
    /// reopen the active file for appending.
    pub fn open_resume(path: impl AsRef<Path>) -> io::Result<(Replay, FileJournal)> {
        Replay::open_resume_via(RealFs::shared(), path)
    }

    /// [`Replay::open_resume`] on an injected filesystem.
    pub fn open_resume_via(
        vfs: Arc<dyn Vfs>,
        path: impl AsRef<Path>,
    ) -> io::Result<(Replay, FileJournal)> {
        let path = path.as_ref();
        let (replay, files) = Replay::scan(vfs.as_ref(), path)?;
        if let Some(i) = replay.cut_file {
            let text = vfs.read(&files[i])?;
            vfs::atomic_write_via(vfs.as_ref(), &files[i], &text[..replay.valid_bytes])?;
            for later in &files[i + 1..] {
                vfs.remove_file(later)?;
            }
            vfs.fsync_dir(vfs::containing_dir(path))?;
        }
        let journal = FileJournal::append_to_via(vfs, path)?;
        Ok((replay, journal))
    }

    fn apply(&mut self, record: JournalRecord) {
        self.records += 1;
        match record {
            JournalRecord::Meta {
                scope,
                total_jobs,
                languages,
            } => {
                if self.meta.is_none() {
                    self.meta = Some((scope, total_jobs, languages));
                }
            }
            JournalRecord::AttemptStart { name, language, .. } => {
                if !self.completed.contains_key(&(name.clone(), language)) {
                    self.in_flight.insert((name, language));
                }
            }
            JournalRecord::Attempt { .. } => {}
            JournalRecord::CaseDone { result, node, .. } => {
                let key = (result.name.clone(), result.language);
                self.in_flight.remove(&key);
                if let std::collections::hash_map::Entry::Vacant(slot) = self.completed.entry(key) {
                    slot.insert(CompletedCase { result, node });
                } else {
                    self.duplicates_discarded += 1;
                }
            }
            JournalRecord::NodeLost { node, .. } => {
                *self.node_deaths.entry(node).or_insert(0) += 1;
            }
            JournalRecord::NodeQuarantined { node, .. } => {
                self.quarantined.insert(node);
            }
        }
    }

    /// Completed-case count.
    pub fn completed_count(&self) -> usize {
        self.completed.len()
    }

    /// One-line operator summary: what was recovered and what was thrown
    /// away (the resume path prints this so discarded work is never
    /// silent).
    pub fn summary(&self) -> String {
        let mut s = format!(
            "journal replay: {} record(s), {} case(s) complete, {} in flight",
            self.records,
            self.completed.len(),
            self.in_flight.len()
        );
        if !self.node_deaths.is_empty() {
            let deaths: Vec<String> = self
                .node_deaths
                .iter()
                .map(|(n, c)| format!("nid{n:05}×{c}"))
                .collect();
            let _ = write!(s, ", node deaths: {}", deaths.join(" "));
        }
        let mut discarded = Vec::new();
        if self.torn_tail_discarded {
            discarded.push("a torn tail line".to_string());
        }
        if self.corrupt_discarded > 0 {
            discarded.push(format!("{} corrupt line(s)", self.corrupt_discarded));
        }
        if self.duplicates_discarded > 0 {
            discarded.push(format!(
                "{} duplicate record(s)",
                self.duplicates_discarded
            ));
        }
        if self.files_discarded > 0 {
            discarded.push(format!("{} later journal file(s)", self.files_discarded));
        }
        if !discarded.is_empty() {
            let _ = write!(s, "; discarded {}", discarded.join(", "));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::FaultFs;

    fn sample_result(name: &str, status: TestStatus) -> CaseResult {
        CaseResult {
            name: name.to_string(),
            feature: FeatureId::from(name),
            language: Language::C,
            status,
            certainty: Some(Certainty::new(3, 3)),
            functional_source: "int main(void) {\n\treturn 1;\n}\n".to_string(),
            attempts: 2,
        }
    }

    fn done(name: &str, status: TestStatus) -> JournalRecord {
        JournalRecord::CaseDone {
            result: sample_result(name, status),
            node: Some(7),
            duration_ms: 12,
        }
    }

    #[test]
    fn every_record_kind_round_trips() {
        let records = vec![
            JournalRecord::Meta {
                scope: "Cray 8.2.0".to_string(),
                total_jobs: 42,
                languages: "C+Fortran".to_string(),
            },
            JournalRecord::AttemptStart {
                name: "loop".to_string(),
                language: Language::Fortran,
                attempt: 1,
            },
            JournalRecord::Attempt {
                name: "loop".to_string(),
                language: Language::C,
                attempt: 0,
                status: TestStatus::Infra("panic: worker\tdied\nbadly".to_string()),
                duration_ms: 99,
            },
            done("data.copy", TestStatus::Pass),
            done("x", TestStatus::CompileError("unexpected `:`".to_string())),
            JournalRecord::NodeLost {
                node: 3,
                completed: 5,
                reassigned: 9,
            },
            JournalRecord::NodeQuarantined { node: 3, deaths: 2 },
        ];
        for record in records {
            let line = record.encode();
            assert!(line.ends_with('\n'));
            assert_eq!(
                line.matches('\n').count(),
                1,
                "escaping keeps records one line: {line:?}"
            );
            let decoded = JournalRecord::decode(line.trim_end_matches('\n'))
                .unwrap_or_else(|| panic!("decode failed: {line:?}"));
            assert_eq!(decoded, record);
        }
    }

    #[test]
    fn skipped_reason_round_trips_with_non_ascii() {
        // Degradation reasons are operator strings — they can carry
        // diacritics, CJK, emoji, and embedded separators.
        let reasons = [
            "gerät überhitzt",
            "設備故障: ノード落ち",
            "node died 💥 (retry\tlater\n)",
            "Кластер недоступен — очередь переполнена",
        ];
        for reason in reasons {
            let record = done("a", TestStatus::Skipped(Some(reason.to_string())));
            let line = record.encode();
            assert_eq!(line.matches('\n').count(), 1, "stays one line: {line:?}");
            let decoded = JournalRecord::decode(line.trim_end_matches('\n'))
                .unwrap_or_else(|| panic!("decode failed for reason {reason:?}"));
            assert_eq!(decoded, record);
            // And through a full file replay, not just line codec.
            let replay = Replay::from_text(&line);
            let kept = &replay.completed[&("a".to_string(), Language::C)];
            assert_eq!(
                kept.result.status,
                TestStatus::Skipped(Some(reason.to_string()))
            );
        }
    }

    #[test]
    fn replay_collects_completed_and_in_flight() {
        let journal = MemoryJournal::new();
        journal.append(&JournalRecord::Meta {
            scope: "ref".to_string(),
            total_jobs: 3,
            languages: "C".to_string(),
        });
        journal.append(&JournalRecord::AttemptStart {
            name: "a".to_string(),
            language: Language::C,
            attempt: 0,
        });
        journal.append(&done("a", TestStatus::Pass));
        journal.append(&JournalRecord::AttemptStart {
            name: "b".to_string(),
            language: Language::C,
            attempt: 0,
        });
        let replay = Replay::from_text(&journal.text());
        assert_eq!(replay.completed_count(), 1);
        assert!(replay
            .completed
            .contains_key(&("a".to_string(), Language::C)));
        assert_eq!(replay.in_flight.len(), 1, "b was interrupted in flight");
        assert_eq!(replay.meta.as_ref().unwrap().0, "ref");
        assert!(!replay.torn_tail_discarded);
        assert_eq!(replay.corrupt_discarded, 0);
    }

    #[test]
    fn torn_tail_is_discarded_cleanly() {
        let mut text = done("a", TestStatus::Pass).encode();
        let torn = done("b", TestStatus::Pass).encode();
        text.push_str(&torn[..torn.len() - 7]); // crash mid-write: no newline
        let replay = Replay::from_text(&text);
        assert_eq!(replay.completed_count(), 1, "prefix survives");
        assert!(replay.torn_tail_discarded);
        assert!(replay.summary().contains("torn tail"), "{}", replay.summary());
    }

    #[test]
    fn checksum_flip_discards_the_tail() {
        let good = done("a", TestStatus::Pass).encode();
        // Flip one checksum hex digit.
        let mut flip = done("b", TestStatus::Pass).encode().into_bytes();
        flip[3] = if flip[3] == b'0' { b'1' } else { b'0' };
        let bad = String::from_utf8(flip).unwrap();
        let after = done("c", TestStatus::Pass).encode();
        let replay = Replay::from_text(&format!("{good}{bad}{after}"));
        assert_eq!(replay.completed_count(), 1, "only the pre-corruption prefix");
        assert_eq!(replay.corrupt_discarded, 2, "bad line + everything after");
        assert!(!replay.torn_tail_discarded);
    }

    #[test]
    fn garbage_payload_with_valid_frame_is_rejected() {
        let payload = "done\tonly\ttwo";
        let line = format!("{MAGIC} {:016x} {payload}\n", checksum(payload));
        let replay = Replay::from_text(&line);
        assert_eq!(replay.records, 0);
        assert_eq!(replay.corrupt_discarded, 1);
    }

    #[test]
    fn duplicate_completions_keep_first_and_are_counted() {
        let first = done("a", TestStatus::Pass).encode();
        let dup = done("a", TestStatus::WrongResult).encode();
        let replay = Replay::from_text(&format!("{first}{dup}{dup}"));
        assert_eq!(replay.completed_count(), 1);
        assert_eq!(replay.duplicates_discarded, 2);
        let kept = &replay.completed[&("a".to_string(), Language::C)];
        assert_eq!(kept.result.status, TestStatus::Pass, "first record wins");
        assert!(replay.summary().contains("2 duplicate"), "{}", replay.summary());
    }

    #[test]
    fn node_events_accumulate() {
        let mut text = String::new();
        for _ in 0..2 {
            text.push_str(
                &JournalRecord::NodeLost {
                    node: 5,
                    completed: 1,
                    reassigned: 3,
                }
                .encode(),
            );
        }
        text.push_str(&JournalRecord::NodeQuarantined { node: 5, deaths: 2 }.encode());
        let replay = Replay::from_text(&text);
        assert_eq!(replay.node_deaths.get(&5), Some(&2));
        assert!(replay.quarantined.contains(&5));
        assert!(replay.summary().contains("nid00005×2"), "{}", replay.summary());
    }

    #[test]
    fn atomic_write_replaces_contents() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("accvv-atomic-{}.txt", std::process::id()));
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // No temp droppings left behind.
        let tmp = path.with_file_name(format!(
            "{}.tmp{}",
            path.file_name().unwrap().to_string_lossy(),
            std::process::id()
        ));
        assert!(!tmp.exists());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_text_replays_to_nothing() {
        let replay = Replay::from_text("");
        assert_eq!(replay.records, 0);
        assert_eq!(replay.completed_count(), 0);
        assert!(!replay.torn_tail_discarded);
    }

    #[test]
    fn durable_records_are_synced_before_append_returns() {
        let fs = FaultFs::new(1);
        let journal =
            FileJournal::create_via(Arc::new(fs.clone()), "camp.journal").unwrap();
        journal.append(&done("a", TestStatus::Pass));
        let durable = fs.durable_contents("camp.journal").expect("name durable");
        assert_eq!(
            String::from_utf8(durable).unwrap(),
            done("a", TestStatus::Pass).encode(),
            "a CaseDone verdict must be on disk when append returns"
        );
        // Attempt chatter is flushed but not synced: visible live, not
        // yet guaranteed durable.
        journal.append(&JournalRecord::AttemptStart {
            name: "b".to_string(),
            language: Language::C,
            attempt: 0,
        });
        let durable = fs.durable_contents("camp.journal").unwrap();
        let live = fs.live_contents("camp.journal").unwrap();
        assert!(live.len() > durable.len(), "start record is not fsynced");
        assert!(journal.take_error().is_none());
    }

    #[test]
    fn rotation_seals_segments_and_replay_merges_them() {
        let fs = FaultFs::new(2);
        let vfs: Arc<dyn Vfs> = Arc::new(fs.clone());
        let journal = FileJournal::create_via(Arc::clone(&vfs), "rot.journal")
            .unwrap()
            .with_rotation(1); // every record seals a segment
        for name in ["a", "b", "c"] {
            journal.append(&done(name, TestStatus::Pass));
        }
        assert!(journal.take_error().is_none());
        let files = journal_files(vfs.as_ref(), Path::new("rot.journal")).unwrap();
        assert_eq!(files.len(), 4, "3 sealed segments + empty active: {files:?}");
        let replay = Replay::load_via(vfs.as_ref(), "rot.journal").unwrap();
        assert_eq!(replay.completed_count(), 3);
        assert!(replay.cut_file.is_none());
        // Resume appends into the active file and rotation numbering
        // continues.
        let (replay, journal) =
            Replay::open_resume_via(Arc::clone(&vfs), "rot.journal").unwrap();
        assert_eq!(replay.completed_count(), 3);
        let journal = journal.with_rotation(1);
        journal.append(&done("d", TestStatus::Pass));
        assert!(journal.take_error().is_none());
        assert!(
            fs.durable_contents(segment_path(Path::new("rot.journal"), 3))
                .is_some(),
            "resumed rotation picks the next free segment number"
        );
        let replay = Replay::load_via(vfs.as_ref(), "rot.journal").unwrap();
        assert_eq!(replay.completed_count(), 4);
    }

    #[test]
    fn multi_file_tail_rule_cuts_across_segments() {
        let fs = FaultFs::new(3);
        let vfs: Arc<dyn Vfs> = Arc::new(fs.clone());
        let journal = FileJournal::create_via(Arc::clone(&vfs), "cut.journal")
            .unwrap()
            .with_rotation(1);
        for name in ["a", "b", "c"] {
            journal.append(&done(name, TestStatus::Pass));
        }
        drop(journal);
        // Corrupt segment 1 (the middle one): flip a checksum digit.
        let seg1 = segment_path(Path::new("cut.journal"), 1);
        let mut bytes = vfs.read(&seg1).unwrap();
        bytes[3] = if bytes[3] == b'0' { b'1' } else { b'0' };
        let mut f = vfs.create(&seg1).unwrap();
        f.write_all(&bytes).unwrap();
        f.sync_all().unwrap();
        let replay = Replay::load_via(vfs.as_ref(), "cut.journal").unwrap();
        assert_eq!(replay.completed_count(), 1, "only segment 0 is trusted");
        assert_eq!(replay.cut_file, Some(1));
        assert_eq!(replay.files_discarded, 2, "segment 2 + active dropped");
        assert!(replay.summary().contains("later journal file"), "{}", replay.summary());
        // Resume truncates the poisoned segment and removes later files.
        let (replay, journal) =
            Replay::open_resume_via(Arc::clone(&vfs), "cut.journal").unwrap();
        assert_eq!(replay.completed_count(), 1);
        journal.append(&done("z", TestStatus::Pass));
        assert!(journal.take_error().is_none());
        let replay = Replay::load_via(vfs.as_ref(), "cut.journal").unwrap();
        assert_eq!(replay.completed_count(), 2, "a + z, nothing poisoned");
        assert!(replay.cut_file.is_none());
    }
}
