//! Cross-test derivation: transform a functional test base so the feature
//! under test is absent (or substituted), per §III.
//!
//! "The basic idea is that if we remove the directive being tested from the
//! test code, the cross test should yield an 'incorrect' result. … In some
//! instances, simply removing the directive being tested will not work. We
//! intentionally replace the directive being tested with another one."

use acc_ast::{AccClause, Program, Stmt};
use acc_spec::{ClauseKind, DirectiveKind};
use std::fmt;
use std::str::FromStr;

/// How to derive the cross variant from the functional test base.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrossRule {
    /// Delete every directive of the kind (keeping region bodies / loops).
    RemoveDirective(DirectiveKind),
    /// Strip a clause from every directive of the kind.
    RemoveClause(DirectiveKind, ClauseKind),
    /// Replace a clause kind with another that takes the same variable list
    /// (`firstprivate` → `private` is the paper's example).
    ReplaceClause {
        /// Directive carrying the clause.
        dir: DirectiveKind,
        /// Clause to replace.
        from: ClauseKind,
        /// Replacement.
        to: ClauseKind,
    },
    /// Force every `if` clause condition to the given constant truth value
    /// (the data-construct `if` methodology of §IV-B).
    ForceIf(bool),
}

impl CrossRule {
    /// Apply the rule to a program, producing the cross variant.
    pub fn apply(&self, base: &Program) -> Program {
        let mut p = base.clone();
        for f in &mut p.functions {
            rewrite_body(&mut f.body, self);
        }
        p.name = format!("{}_cross", p.name);
        p
    }
}

fn rewrite_body(body: &mut Vec<Stmt>, rule: &CrossRule) {
    let mut i = 0;
    while i < body.len() {
        // Replace the statement if the rule dissolves it.
        let replace: Option<Vec<Stmt>> = match (&mut body[i], rule) {
            (Stmt::AccBlock { dir, body: inner }, CrossRule::RemoveDirective(kind))
                if dir.kind == *kind =>
            {
                Some(std::mem::take(inner))
            }
            (Stmt::AccLoop { dir, l }, CrossRule::RemoveDirective(kind)) if dir.kind == *kind => {
                Some(vec![Stmt::For(l.clone())])
            }
            (Stmt::AccStandalone { dir }, CrossRule::RemoveDirective(kind))
                if dir.kind == *kind =>
            {
                Some(vec![])
            }
            _ => None,
        };
        match replace {
            Some(stmts) => {
                body.splice(i..=i, stmts);
                // Re-visit the spliced statements (they may contain nested
                // directives of the same kind).
            }
            None => {
                rewrite_stmt(&mut body[i], rule);
                i += 1;
            }
        }
    }
}

fn rewrite_stmt(s: &mut Stmt, rule: &CrossRule) {
    match s {
        Stmt::AccBlock { dir, body } => {
            rewrite_clauses(&mut dir.clauses, dir.kind, rule);
            rewrite_body(body, rule);
        }
        Stmt::AccLoop { dir, l } => {
            rewrite_clauses(&mut dir.clauses, dir.kind, rule);
            rewrite_body(&mut l.body, rule);
        }
        Stmt::AccStandalone { dir } => {
            rewrite_clauses(&mut dir.clauses, dir.kind, rule);
        }
        Stmt::For(l) => rewrite_body(&mut l.body, rule),
        Stmt::If {
            then_body,
            else_body,
            ..
        } => {
            rewrite_body(then_body, rule);
            rewrite_body(else_body, rule);
        }
        _ => {}
    }
}

fn rewrite_clauses(clauses: &mut Vec<AccClause>, dir_kind: DirectiveKind, rule: &CrossRule) {
    match rule {
        CrossRule::RemoveClause(dir, kind) if *dir == dir_kind => {
            clauses.retain(|c| c.kind() != *kind);
        }
        CrossRule::ReplaceClause { dir, from, to } if *dir == dir_kind => {
            for c in clauses.iter_mut() {
                let replacement = match (&c, to) {
                    _ if c.kind() != *from => None,
                    (AccClause::Firstprivate(vs), ClauseKind::Private) => {
                        Some(AccClause::Private(vs.clone()))
                    }
                    (AccClause::Private(vs), ClauseKind::Firstprivate) => {
                        Some(AccClause::Firstprivate(vs.clone()))
                    }
                    (AccClause::Data(_, refs), _) => Some(AccClause::Data(*to, refs.clone())),
                    (AccClause::Seq, ClauseKind::Independent) => Some(AccClause::Independent),
                    (AccClause::Independent, ClauseKind::Seq) => Some(AccClause::Seq),
                    (AccClause::Gang(_), ClauseKind::Seq)
                    | (AccClause::Worker(_), ClauseKind::Seq)
                    | (AccClause::Vector(_), ClauseKind::Seq) => Some(AccClause::Seq),
                    _ => None,
                };
                if let Some(r) = replacement {
                    *c = r;
                }
            }
        }
        CrossRule::ForceIf(v) => {
            for c in clauses.iter_mut() {
                if let AccClause::If(_) = c {
                    *c = AccClause::If(acc_ast::Expr::int(*v as i64));
                }
            }
        }
        _ => {}
    }
}

impl fmt::Display for CrossRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrossRule::RemoveDirective(d) => {
                write!(f, "remove-directive:{}", d.name().replace(' ', "_"))
            }
            CrossRule::RemoveClause(d, c) => {
                write!(
                    f,
                    "remove-clause:{}.{}",
                    d.name().replace(' ', "_"),
                    c.name()
                )
            }
            CrossRule::ReplaceClause { dir, from, to } => write!(
                f,
                "replace-clause:{}.{}->{}",
                dir.name().replace(' ', "_"),
                from.name(),
                to.name()
            ),
            CrossRule::ForceIf(v) => write!(f, "force-if:{}", *v as i64),
        }
    }
}

/// Error parsing a cross-rule specification string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossRuleParseError(pub String);

impl fmt::Display for CrossRuleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid cross rule: {}", self.0)
    }
}

impl std::error::Error for CrossRuleParseError {}

fn directive_by_name(s: &str) -> Option<DirectiveKind> {
    DirectiveKind::ALL
        .iter()
        .copied()
        .find(|d| d.name().replace(' ', "_") == s)
}

impl FromStr for CrossRule {
    type Err = CrossRuleParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || CrossRuleParseError(s.to_string());
        if let Some(rest) = s.strip_prefix("remove-directive:") {
            return directive_by_name(rest)
                .map(CrossRule::RemoveDirective)
                .ok_or_else(err);
        }
        if let Some(rest) = s.strip_prefix("remove-clause:") {
            let (d, c) = rest.rsplit_once('.').ok_or_else(err)?;
            return Ok(CrossRule::RemoveClause(
                directive_by_name(d).ok_or_else(err)?,
                ClauseKind::from_name(c).ok_or_else(err)?,
            ));
        }
        if let Some(rest) = s.strip_prefix("replace-clause:") {
            let (head, to) = rest.split_once("->").ok_or_else(err)?;
            let (d, from) = head.rsplit_once('.').ok_or_else(err)?;
            return Ok(CrossRule::ReplaceClause {
                dir: directive_by_name(d).ok_or_else(err)?,
                from: ClauseKind::from_name(from).ok_or_else(err)?,
                to: ClauseKind::from_name(to).ok_or_else(err)?,
            });
        }
        if let Some(rest) = s.strip_prefix("force-if:") {
            return match rest {
                "0" | "false" => Ok(CrossRule::ForceIf(false)),
                "1" | "true" => Ok(CrossRule::ForceIf(true)),
                _ => Err(err()),
            };
        }
        Err(err())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_ast::builder as b;
    use acc_ast::Expr;
    use acc_spec::Language;

    fn fig2_base() -> Program {
        Program::simple(
            "loop_test",
            Language::C,
            vec![
                b::decl_array("A", acc_ast::ScalarType::Int, 16),
                b::parallel_region(
                    vec![AccClause::NumGangs(Expr::int(4))],
                    vec![b::acc_loop(
                        vec![],
                        "i",
                        Expr::int(16),
                        vec![b::add1("A", Expr::var("i"), Expr::int(1))],
                    )],
                ),
                Stmt::Return(Expr::int(1)),
            ],
        )
    }

    #[test]
    fn remove_directive_keeps_loop() {
        let base = fig2_base();
        let cross = CrossRule::RemoveDirective(DirectiveKind::Loop).apply(&base);
        assert_eq!(base.directives().len(), 2);
        let kinds: Vec<_> = cross.directives().iter().map(|d| d.kind).collect();
        assert_eq!(kinds, vec![DirectiveKind::Parallel]);
        // The for loop itself must survive.
        let src = acc_ast::render(&cross);
        assert!(src.contains("for (i = 0; i < 16; i++)"), "{src}");
        assert!(!src.contains("#pragma acc loop"));
        assert!(cross.name.ends_with("_cross"));
    }

    #[test]
    fn remove_block_directive_keeps_body() {
        let base = fig2_base();
        let cross = CrossRule::RemoveDirective(DirectiveKind::Parallel).apply(&base);
        let kinds: Vec<_> = cross.directives().iter().map(|d| d.kind).collect();
        assert_eq!(kinds, vec![DirectiveKind::Loop]);
    }

    #[test]
    fn remove_clause() {
        let base = fig2_base();
        let cross =
            CrossRule::RemoveClause(DirectiveKind::Parallel, ClauseKind::NumGangs).apply(&base);
        assert!(!cross.directives()[0].has(ClauseKind::NumGangs));
    }

    #[test]
    fn replace_firstprivate_with_private() {
        let mut base = fig2_base();
        if let Stmt::AccBlock { dir, .. } = &mut base.functions[0].body[1] {
            dir.clauses.push(AccClause::Firstprivate(vec!["x".into()]));
        }
        let rule = CrossRule::ReplaceClause {
            dir: DirectiveKind::Parallel,
            from: ClauseKind::Firstprivate,
            to: ClauseKind::Private,
        };
        let cross = rule.apply(&base);
        let d = &cross.directives()[0];
        assert!(d.has(ClauseKind::Private));
        assert!(!d.has(ClauseKind::Firstprivate));
    }

    #[test]
    fn force_if() {
        let mut base = fig2_base();
        if let Stmt::AccBlock { dir, .. } = &mut base.functions[0].body[1] {
            dir.clauses.push(AccClause::If(Expr::var("cond")));
        }
        let cross = CrossRule::ForceIf(false).apply(&base);
        match cross.directives()[0].find(ClauseKind::If) {
            Some(AccClause::If(e)) => assert_eq!(e.const_int(), Some(0)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn spec_strings_round_trip() {
        for s in [
            "remove-directive:loop",
            "remove-directive:parallel_loop",
            "remove-clause:parallel.num_gangs",
            "replace-clause:parallel.firstprivate->private",
            "replace-clause:data.copyin->copy",
            "force-if:0",
            "force-if:1",
        ] {
            let rule: CrossRule = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(
                rule.to_string(),
                s.replace("true", "1").replace("false", "0")
            );
        }
        assert!("banana".parse::<CrossRule>().is_err());
        assert!("remove-clause:nonsense".parse::<CrossRule>().is_err());
    }

    #[test]
    fn nested_removal_recurses() {
        // Removing `loop` inside a data region wrapped parallel region.
        let base = Program::simple(
            "nested",
            Language::C,
            vec![
                b::decl_array("A", acc_ast::ScalarType::Int, 8),
                b::data_region(
                    vec![b::copy_sec("A", Expr::int(8))],
                    vec![b::parallel_region(
                        vec![],
                        vec![b::acc_loop(vec![], "i", Expr::int(8), vec![])],
                    )],
                ),
                Stmt::Return(Expr::int(1)),
            ],
        );
        let cross = CrossRule::RemoveDirective(DirectiveKind::Loop).apply(&base);
        let kinds: Vec<_> = cross.directives().iter().map(|d| d.kind).collect();
        assert_eq!(kinds, vec![DirectiveKind::Data, DirectiveKind::Parallel]);
    }
}
