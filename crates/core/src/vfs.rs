//! Injectable virtual filesystem: the seam every durability-critical write
//! in the workspace goes through.
//!
//! The journal, the result store, report/tracker/bench atomic writes and
//! the telemetry sinks all promise crash safety — but a promise about
//! crashes can only be *proved* by crashing, and a promise about ENOSPC
//! only by running out of space. This module makes both injectable:
//!
//! * [`RealFs`] — a passthrough to `std::fs`, used by every production
//!   entry point. Identical syscall sequence to the pre-VFS code.
//! * [`FaultFs`] — a deterministic, seeded, in-memory filesystem that
//!   models the hostile machine: short/torn writes at byte granularity,
//!   `EIO`/`ENOSPC` on any operation, **fsync failures with correct
//!   lost-buffered-data semantics** (a failed fsync drops the unsynced
//!   buffer — retrying the fsync cannot resurrect it, exactly the
//!   POSIX/fsyncgate behavior), and a simulated process crash after the
//!   Nth filesystem operation.
//!
//! The crash model separates three layers, like a real kernel:
//!
//! 1. **File contents** — each file holds `synced` bytes (durable) and
//!    `unsynced` bytes (page cache). `sync_all` promotes unsynced →
//!    synced. At crash, a *seeded prefix* of the unsynced bytes survives
//!    (the OS may have written back part of the dirty pages) — this is
//!    where torn frames come from.
//! 2. **Namespace** — creates, renames and removes update the live
//!    namespace immediately but only become durable when the containing
//!    directory is fsynced. At crash, a seeded *prefix* of the pending
//!    namespace operations survives (metadata can hit the disk early, but
//!    never out of order).
//! 3. **Crash** — after the configured operation count, every subsequent
//!    operation fails with a "simulated crash" error and the durable
//!    image is frozen. [`FaultFs::crash_image`] hands it to the torture
//!    harness, which "reboots" by building a fresh [`FaultFs`] from the
//!    image and re-running recovery.
//!
//! [`atomic_write`] / [`atomic_write_via`] (temp file + sync + rename +
//! parent-directory fsync) live here so both the real and the injected
//! filesystem use the exact same discipline.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// One open file handle.
pub trait VfsFile: Send {
    /// Append/write the whole buffer (files are only ever written
    /// sequentially in this workspace).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flush userspace buffers (no durability promise — `std::fs::File`'s
    /// `flush` is a no-op too).
    fn flush(&mut self) -> io::Result<()>;
    /// fsync: promote everything written so far to durable storage. On
    /// failure the caller MUST treat the unsynced data as lost — see the
    /// module docs on fsync-poison semantics.
    fn sync_all(&mut self) -> io::Result<()>;
}

/// The filesystem operations the durability layer needs. Implementations
/// must be callable from worker threads.
pub trait Vfs: Send + Sync {
    /// Create (truncating) a file.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Open a file for appending, creating it if missing.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically rename `from` over `to` (same directory in practice).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Unlink a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// fsync a directory so entries created/renamed in it survive a crash.
    fn fsync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Files (not directories) directly inside `dir`. Missing directories
    /// list as empty.
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Create a directory and its ancestors.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Does the path currently exist (file or directory)?
    fn exists(&self, path: &Path) -> bool;
}

/// Read a whole file as UTF-8 text through a [`Vfs`].
pub fn read_to_string(vfs: &dyn Vfs, path: &Path) -> io::Result<String> {
    String::from_utf8(vfs.read(path)?)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file is not UTF-8"))
}

/// Read a file as text, replacing invalid UTF-8 instead of failing.
///
/// A torn write can cut a multibyte character in half; the durability
/// layers must treat that as line-level corruption (rejected by the frame
/// checksum, discarded by the tail rule) — not as an unreadable file that
/// takes every good record before it hostage. Replacement characters only
/// ever appear at or after the first corrupt byte, so byte offsets within
/// the clean prefix are identical to the on-disk offsets.
pub fn read_lossy(vfs: &dyn Vfs, path: &Path) -> io::Result<String> {
    Ok(String::from_utf8_lossy(&vfs.read(path)?).into_owned())
}

/// The directory that contains `path`, for durability syncs: its parent,
/// or `.` when the path is a bare file name (whose parent renders as the
/// empty string, which `File::open` rejects).
pub fn containing_dir(path: &Path) -> &Path {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    }
}

/// Fsync a directory so a just-created or just-renamed entry inside it
/// survives power failure. `sync_all` on the *file* makes the bytes
/// durable; only an fsync of the *directory* makes the name durable — a
/// rename without it can vanish on crash, resurrecting the old contents.
/// No-op on non-Unix targets, where directory handles can't be synced.
pub fn fsync_dir(dir: impl AsRef<Path>) -> io::Result<()> {
    let dir = dir.as_ref();
    let dir = if dir.as_os_str().is_empty() {
        Path::new(".")
    } else {
        dir
    };
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}

/// Crash-safe file write through a [`Vfs`]: write the full contents to a
/// temp file in the destination directory, sync it, atomically rename it
/// over `path`, then fsync the directory so the rename itself is durable.
/// A crash at any point leaves either the old file or the new one — never
/// a half-written hybrid, and never a rename that silently rolls back.
pub fn atomic_write_via(vfs: &dyn Vfs, path: impl AsRef<Path>, contents: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(".tmp{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let result = (|| {
        let mut f = vfs.create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
        vfs.rename(&tmp, path)?;
        vfs.fsync_dir(containing_dir(path))
    })();
    if result.is_err() {
        let _ = vfs.remove_file(&tmp);
    }
    result
}

/// [`atomic_write_via`] on the real filesystem.
pub fn atomic_write(path: impl AsRef<Path>, contents: &[u8]) -> io::Result<()> {
    atomic_write_via(&RealFs, path, contents)
}

// ---------------------------------------------------------------------------
// RealFs
// ---------------------------------------------------------------------------

/// Passthrough to `std::fs` — the production filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

impl RealFs {
    /// A shared handle (most call sites take `Arc<dyn Vfs>`).
    pub fn shared() -> Arc<dyn Vfs> {
        Arc::new(RealFs)
    }
}

impl VfsFile for File {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(self, buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        io::Write::flush(self)
    }
    fn sync_all(&mut self) -> io::Result<()> {
        File::sync_all(self)
    }
}

impl Vfs for RealFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(File::create(path)?))
    }
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(
            OpenOptions::new().create(true).append(true).open(path)?,
        ))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut buf = Vec::new();
        File::open(path)?.read_to_end(&mut buf)?;
        Ok(buf)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        fsync_dir(dir)
    }
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let entries = match std::fs::read_dir(dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut out = Vec::new();
        for entry in entries {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        Ok(out)
    }
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

// ---------------------------------------------------------------------------
// FaultFs
// ---------------------------------------------------------------------------

/// The error class an injected fault produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Generic I/O error (bad sector, yanked disk).
    Eio,
    /// Out of space.
    Enospc,
}

impl FaultKind {
    fn to_error(self) -> io::Error {
        match self {
            FaultKind::Eio => io::Error::other("injected EIO"),
            FaultKind::Enospc => {
                io::Error::new(io::ErrorKind::StorageFull, "injected ENOSPC")
            }
        }
    }
}

/// Which filesystem operation an injection matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `create`
    Create,
    /// `open_append`
    Append,
    /// `read` / `read_dir`
    Read,
    /// a `write_all` on an open handle
    Write,
    /// an `sync_all` on an open handle
    Sync,
    /// `rename`
    Rename,
    /// `remove_file`
    Remove,
    /// `fsync_dir`
    SyncDir,
    /// `create_dir_all`
    Mkdir,
}

/// One injected fault: fires on an absolute operation index, or on every
/// operation of a kind whose path contains a substring (up to `times`).
#[derive(Debug, Clone)]
pub struct Injection {
    /// Absolute operation index to fire at (1-based), if index-targeted.
    pub at_op: Option<u64>,
    /// Operation kind filter, if kind-targeted.
    pub kind: Option<OpKind>,
    /// Path substring filter (applies with `kind`).
    pub path_contains: Option<String>,
    /// Error to produce.
    pub error: FaultKind,
    /// How many times the injection may still fire.
    pub times: u64,
}

impl Injection {
    /// Fail operation number `op` (1-based) with `error`.
    pub fn at(op: u64, error: FaultKind) -> Self {
        Injection {
            at_op: Some(op),
            kind: None,
            path_contains: None,
            error,
            times: 1,
        }
    }

    /// Fail every `kind` operation on a path containing `substr`.
    pub fn on(kind: OpKind, substr: impl Into<String>, error: FaultKind) -> Self {
        Injection {
            at_op: None,
            kind: Some(kind),
            path_contains: Some(substr.into()),
            error,
            times: u64::MAX,
        }
    }

    /// Limit how many times the injection fires.
    pub fn times(mut self, n: u64) -> Self {
        self.times = n;
        self
    }

    fn matches(&self, op: u64, kind: OpKind, path: &Path) -> bool {
        if self.times == 0 {
            return false;
        }
        if let Some(at) = self.at_op {
            return at == op;
        }
        if self.kind.is_some_and(|k| k != kind) {
            return false;
        }
        match &self.path_contains {
            Some(s) => path.to_string_lossy().contains(s.as_str()),
            None => true,
        }
    }
}

/// What the disk holds after a crash: the durable view of every file, plus
/// the directories that existed. This is what a reboot starts from.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiskImage {
    /// Durable file contents by path.
    pub files: BTreeMap<PathBuf, Vec<u8>>,
    /// Directories.
    pub dirs: BTreeSet<PathBuf>,
}

impl DiskImage {
    /// Durable contents of one file.
    pub fn get(&self, path: impl AsRef<Path>) -> Option<&[u8]> {
        self.files.get(&norm(path.as_ref())).map(Vec::as_slice)
    }

    /// Total durable bytes across all files.
    pub fn total_bytes(&self) -> usize {
        self.files.values().map(Vec::len).sum()
    }
}

#[derive(Debug, Default, Clone)]
struct FileData {
    synced: Vec<u8>,
    unsynced: Vec<u8>,
    poisoned: bool,
}

#[derive(Debug, Clone)]
enum NsOp {
    Put(PathBuf, u64),
    Remove(PathBuf),
    Rename(PathBuf, PathBuf, u64),
}

impl NsOp {
    /// The directory whose fsync makes this op durable.
    fn dirs(&self) -> Vec<PathBuf> {
        match self {
            NsOp::Put(p, _) | NsOp::Remove(p) => vec![norm(containing_dir(p))],
            NsOp::Rename(from, to, _) => {
                let a = norm(containing_dir(from));
                let b = norm(containing_dir(to));
                if a == b {
                    vec![a]
                } else {
                    vec![a, b]
                }
            }
        }
    }

    fn apply(&self, ns: &mut BTreeMap<PathBuf, u64>) {
        match self {
            NsOp::Put(p, ino) => {
                ns.insert(p.clone(), *ino);
            }
            NsOp::Remove(p) => {
                ns.remove(p);
            }
            NsOp::Rename(from, to, ino) => {
                ns.remove(from);
                ns.insert(to.clone(), *ino);
            }
        }
    }
}

struct FaultState {
    files: HashMap<u64, FileData>,
    next_ino: u64,
    /// Live namespace (what the running process sees).
    ns: BTreeMap<PathBuf, u64>,
    /// Durable namespace (what survives a crash before pending ops apply).
    durable_ns: BTreeMap<PathBuf, u64>,
    /// Namespace ops not yet made durable by a directory fsync, in order.
    pending: Vec<NsOp>,
    dirs: BTreeSet<PathBuf>,
    ops: u64,
    crash_after: Option<u64>,
    crashed: bool,
    image: Option<DiskImage>,
    injections: Vec<Injection>,
    seed: u64,
}

/// The deterministic hostile filesystem. See the module docs for the crash
/// model. All behavior is a pure function of the seed, the configured
/// faults, and the operation sequence the workload issues. Clones share
/// the same underlying disk, like two handles on one machine.
#[derive(Clone)]
pub struct FaultFs {
    state: Arc<Mutex<FaultState>>,
}

/// Strip a leading `./` so `./x` and `x` are the same file.
fn norm(path: &Path) -> PathBuf {
    match path.strip_prefix("./") {
        Ok(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => path.to_path_buf(),
    }
}

/// SplitMix64 — the workspace's standard seeded generator core.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn crash_error() -> io::Error {
    io::Error::other("simulated crash: filesystem is gone")
}

impl FaultState {
    /// Gatekeeper for every operation: trip the crash if its budget is
    /// exhausted, count the op, then fire any matching injection.
    fn tick(&mut self, kind: OpKind, path: &Path) -> io::Result<()> {
        if self.crashed {
            return Err(crash_error());
        }
        if let Some(n) = self.crash_after {
            if self.ops >= n {
                self.crash_now();
                return Err(crash_error());
            }
        }
        self.ops += 1;
        let op = self.ops;
        for inj in &mut self.injections {
            if inj.matches(op, kind, path) {
                if inj.times != u64::MAX {
                    inj.times -= 1;
                }
                let error = inj.error;
                // fsync failure semantics: the buffered data is LOST, not
                // parked for a retry. Subsequent fsyncs succeed vacuously
                // but can never resurrect the dropped bytes.
                if kind == OpKind::Sync {
                    if let Some(&ino) = self.ns.get(&norm(path)) {
                        if let Some(f) = self.files.get_mut(&ino) {
                            f.unsynced.clear();
                            f.poisoned = true;
                        }
                    }
                }
                return Err(error.to_error());
            }
        }
        Ok(())
    }

    /// Freeze the durable image: a seeded prefix of the pending namespace
    /// ops survives, and each surviving file keeps its synced bytes plus a
    /// seeded prefix of its unsynced bytes (the torn write).
    fn crash_now(&mut self) {
        self.crashed = true;
        let mut rng = self.seed ^ self.ops.wrapping_mul(0x2545_f491_4f6c_dd1d);
        let mut durable = self.durable_ns.clone();
        let survivors = (splitmix(&mut rng) % (self.pending.len() as u64 + 1)) as usize;
        for op in self.pending.iter().take(survivors) {
            op.apply(&mut durable);
        }
        let mut files = BTreeMap::new();
        for (path, ino) in &durable {
            let Some(f) = self.files.get(ino) else {
                continue;
            };
            let keep = (splitmix(&mut rng) % (f.unsynced.len() as u64 + 1)) as usize;
            let mut contents = f.synced.clone();
            contents.extend_from_slice(&f.unsynced[..keep]);
            files.insert(path.clone(), contents);
        }
        self.image = Some(DiskImage {
            files,
            dirs: self.dirs.clone(),
        });
    }
}

impl FaultFs {
    /// An empty hostile filesystem with no faults configured.
    pub fn new(seed: u64) -> Self {
        FaultFs {
            state: Arc::new(Mutex::new(FaultState {
                files: HashMap::new(),
                next_ino: 1,
                ns: BTreeMap::new(),
                durable_ns: BTreeMap::new(),
                pending: Vec::new(),
                dirs: BTreeSet::new(),
                ops: 0,
                crash_after: None,
                crashed: false,
                image: None,
                injections: Vec::new(),
                seed,
            })),
        }
    }

    /// Rebuild a filesystem from a crash image ("reboot the machine"): all
    /// files fully synced, namespace durable, no faults configured.
    pub fn from_image(image: &DiskImage, seed: u64) -> Self {
        let fs = FaultFs::new(seed);
        {
            let mut st = fs.state.lock().expect("faultfs lock");
            st.dirs = image.dirs.clone();
            for (path, contents) in &image.files {
                let ino = st.next_ino;
                st.next_ino += 1;
                st.files.insert(
                    ino,
                    FileData {
                        synced: contents.clone(),
                        unsynced: Vec::new(),
                        poisoned: false,
                    },
                );
                st.ns.insert(path.clone(), ino);
                st.durable_ns.insert(path.clone(), ino);
            }
        }
        fs
    }

    /// Crash the process after `n` filesystem operations have completed
    /// (operation `n+1` and everything after it fails).
    pub fn with_crash_after(self, n: u64) -> Self {
        self.state.lock().expect("faultfs lock").crash_after = Some(n);
        self
    }

    /// Add a fault injection.
    pub fn with_injection(self, inj: Injection) -> Self {
        self.state.lock().expect("faultfs lock").injections.push(inj);
        self
    }

    /// Operations completed so far.
    pub fn op_count(&self) -> u64 {
        self.state.lock().expect("faultfs lock").ops
    }

    /// Has the simulated crash fired?
    pub fn crashed(&self) -> bool {
        self.state.lock().expect("faultfs lock").crashed
    }

    /// The frozen durable image, once the crash fired.
    pub fn crash_image(&self) -> Option<DiskImage> {
        self.state.lock().expect("faultfs lock").image.clone()
    }

    /// The durable image a crash *right now* would leave, without
    /// crashing — the pessimistic view: pending namespace ops and
    /// unsynced bytes all survive (used to carry a clean run's final
    /// state into the next torture phase).
    pub fn settled_image(&self) -> DiskImage {
        let st = self.state.lock().expect("faultfs lock");
        let mut durable = st.durable_ns.clone();
        for op in &st.pending {
            op.apply(&mut durable);
        }
        let mut files = BTreeMap::new();
        for (path, ino) in &durable {
            if let Some(f) = st.files.get(ino) {
                let mut contents = f.synced.clone();
                contents.extend_from_slice(&f.unsynced);
                files.insert(path.clone(), contents);
            }
        }
        DiskImage {
            files,
            dirs: st.dirs.clone(),
        }
    }

    /// Synced-only contents of a file under its *durable* name — what is
    /// guaranteed to survive a crash right now. `None` if the name itself
    /// is not yet durable (its directory was never fsynced).
    pub fn durable_contents(&self, path: impl AsRef<Path>) -> Option<Vec<u8>> {
        let st = self.state.lock().expect("faultfs lock");
        let ino = st.durable_ns.get(&norm(path.as_ref()))?;
        st.files.get(ino).map(|f| f.synced.clone())
    }

    /// Current live contents of a file (page-cache view), for assertions.
    pub fn live_contents(&self, path: impl AsRef<Path>) -> Option<Vec<u8>> {
        let st = self.state.lock().expect("faultfs lock");
        let ino = st.ns.get(&norm(path.as_ref()))?;
        st.files.get(ino).map(|f| {
            let mut v = f.synced.clone();
            v.extend_from_slice(&f.unsynced);
            v
        })
    }
}

struct FaultFile {
    state: Arc<Mutex<FaultState>>,
    ino: u64,
    /// Path the handle was opened under (for injection matching only; the
    /// data follows the inode through renames, like a real fd).
    path: PathBuf,
}

impl VfsFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut st = self.state.lock().expect("faultfs lock");
        match st.tick(OpKind::Write, &self.path) {
            Ok(()) => {
                if let Some(f) = st.files.get_mut(&self.ino) {
                    f.unsynced.extend_from_slice(buf);
                }
                Ok(())
            }
            Err(e) => {
                // A failing write may still land a prefix (short write) —
                // byte-granularity torn writes even without a crash.
                if !st.crashed && !buf.is_empty() {
                    let mut rng = st.seed ^ st.ops.wrapping_mul(0x9e6c_8915_7c4a_d679);
                    let keep = (splitmix(&mut rng) % buf.len() as u64) as usize;
                    if let Some(f) = st.files.get_mut(&self.ino) {
                        f.unsynced.extend_from_slice(&buf[..keep]);
                    }
                }
                Err(e)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        // Userspace flush: no syscall, no durability change.
        if self.state.lock().expect("faultfs lock").crashed {
            return Err(crash_error());
        }
        Ok(())
    }

    fn sync_all(&mut self) -> io::Result<()> {
        let mut st = self.state.lock().expect("faultfs lock");
        st.tick(OpKind::Sync, &self.path)?;
        if let Some(f) = st.files.get_mut(&self.ino) {
            let moved = std::mem::take(&mut f.unsynced);
            f.synced.extend_from_slice(&moved);
        }
        Ok(())
    }
}

impl Vfs for FaultFs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let path = norm(path);
        let mut st = self.state.lock().expect("faultfs lock");
        st.tick(OpKind::Create, &path)?;
        let ino = st.next_ino;
        st.next_ino += 1;
        st.files.insert(ino, FileData::default());
        st.ns.insert(path.clone(), ino);
        st.pending.push(NsOp::Put(path.clone(), ino));
        Ok(Box::new(FaultFile {
            state: Arc::clone(&self.state),
            ino,
            path,
        }))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let path = norm(path);
        let mut st = self.state.lock().expect("faultfs lock");
        st.tick(OpKind::Append, &path)?;
        let ino = match st.ns.get(&path) {
            Some(&ino) => ino,
            None => {
                let ino = st.next_ino;
                st.next_ino += 1;
                st.files.insert(ino, FileData::default());
                st.ns.insert(path.clone(), ino);
                st.pending.push(NsOp::Put(path.clone(), ino));
                ino
            }
        };
        Ok(Box::new(FaultFile {
            state: Arc::clone(&self.state),
            ino,
            path,
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let path = norm(path);
        let mut st = self.state.lock().expect("faultfs lock");
        st.tick(OpKind::Read, &path)?;
        let ino = *st
            .ns
            .get(&path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        let f = st.files.get(&ino).expect("ino has data");
        let mut v = f.synced.clone();
        v.extend_from_slice(&f.unsynced);
        Ok(v)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let from = norm(from);
        let to = norm(to);
        let mut st = self.state.lock().expect("faultfs lock");
        st.tick(OpKind::Rename, &from)?;
        let ino = st
            .ns
            .remove(&from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        st.ns.insert(to.clone(), ino);
        st.pending.push(NsOp::Rename(from, to, ino));
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let path = norm(path);
        let mut st = self.state.lock().expect("faultfs lock");
        st.tick(OpKind::Remove, &path)?;
        st.ns
            .remove(&path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        st.pending.push(NsOp::Remove(path));
        Ok(())
    }

    fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        let dir = norm(dir);
        let mut st = self.state.lock().expect("faultfs lock");
        st.tick(OpKind::SyncDir, &dir)?;
        // Promote, in order, every pending op belonging to this directory.
        let pending = std::mem::take(&mut st.pending);
        for op in pending {
            if op.dirs().contains(&dir) {
                let mut durable = std::mem::take(&mut st.durable_ns);
                op.apply(&mut durable);
                st.durable_ns = durable;
            } else {
                st.pending.push(op);
            }
        }
        Ok(())
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let dir = norm(dir);
        let mut st = self.state.lock().expect("faultfs lock");
        st.tick(OpKind::Read, &dir)?;
        Ok(st
            .ns
            .keys()
            .filter(|p| norm(containing_dir(p)) == dir)
            .cloned()
            .collect())
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let dir = norm(dir);
        let mut st = self.state.lock().expect("faultfs lock");
        st.tick(OpKind::Mkdir, &dir)?;
        // Directory creation is treated as instantly durable — the
        // workloads under torture create their directories once, up
        // front, and the interesting races are all in file data and
        // file names.
        let mut cur = PathBuf::new();
        for comp in dir.components() {
            cur.push(comp);
            st.dirs.insert(cur.clone());
        }
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        let path = norm(path);
        let st = self.state.lock().expect("faultfs lock");
        st.ns.contains_key(&path) || st.dirs.contains(&path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn try_write_file(fs: &dyn Vfs, path: &str, data: &[u8], sync: bool) -> io::Result<()> {
        let mut f = fs.create(Path::new(path))?;
        f.write_all(data)?;
        if sync {
            f.sync_all()?;
            fs.fsync_dir(Path::new("."))?;
        }
        Ok(())
    }

    fn write_file(fs: &dyn Vfs, path: &str, data: &[u8], sync: bool) {
        try_write_file(fs, path, data, sync).unwrap();
    }

    #[test]
    fn synced_data_survives_any_crash_point() {
        // Write+sync one file, then crash at every subsequent op count:
        // the synced file must be in every image byte-for-byte.
        let probe = FaultFs::new(7);
        write_file(&probe, "a.txt", b"hello world", true);
        let total = probe.op_count();
        for k in 0..=total {
            let fs = FaultFs::new(7).with_crash_after(k);
            let _ = try_write_file(&fs, "a.txt", b"hello world", true);
            // Past-crash ops error; that's expected.
            let _ = fs.read(Path::new("a.txt"));
            if !fs.crashed() {
                continue;
            }
            let image = fs.crash_image().unwrap();
            if k >= total {
                assert_eq!(image.get("a.txt"), Some(&b"hello world"[..]));
            } else if let Some(c) = image.get("a.txt") {
                assert!(
                    b"hello world".starts_with(c),
                    "crash at {k}: torn content must be a prefix, got {c:?}"
                );
            }
        }
    }

    #[test]
    fn unsynced_data_is_a_seeded_prefix_after_crash() {
        let fs = FaultFs::new(3);
        write_file(&fs, "a.txt", b"0123456789", true); // durable baseline
        {
            let mut f = fs.open_append(Path::new("a.txt")).unwrap();
            f.write_all(b"ABCDEFGHIJ").unwrap(); // never synced
        }
        let fs2 = FaultFs::from_image(&fs.settled_image(), 3).with_crash_after(0);
        // from_image is fully durable, so test the crash on the live fs:
        drop(fs2);
        let st_crash = FaultFs::new(3).with_crash_after(fs.op_count());
        write_file(&st_crash, "a.txt", b"0123456789", true);
        {
            let mut f = st_crash.open_append(Path::new("a.txt")).unwrap();
            f.write_all(b"ABCDEFGHIJ").unwrap();
        }
        let _ = st_crash.read(Path::new("a.txt")); // trips the crash
        let image = st_crash.crash_image().unwrap();
        let c = image.get("a.txt").unwrap();
        assert!(c.len() >= 10, "synced prefix always survives");
        assert_eq!(&c[..10], b"0123456789");
        assert!(b"ABCDEFGHIJ".starts_with(&c[10..]), "torn tail is a prefix");
    }

    #[test]
    fn failed_fsync_loses_the_buffer_forever() {
        let fs = FaultFs::new(1)
            .with_injection(Injection::on(OpKind::Sync, "wal", FaultKind::Eio).times(1));
        let mut f = fs.create(Path::new("wal.log")).unwrap();
        f.write_all(b"precious").unwrap();
        assert!(f.sync_all().is_err(), "first fsync injected to fail");
        // Retry "succeeds" — but the buffer is already gone (fsyncgate).
        f.sync_all().unwrap();
        assert_eq!(fs.live_contents("wal.log").unwrap(), b"");
    }

    #[test]
    fn enospc_write_is_short_not_silent() {
        let fs = FaultFs::new(9)
            .with_injection(Injection::on(OpKind::Write, "big", FaultKind::Enospc).times(1));
        let mut f = fs.create(Path::new("big.dat")).unwrap();
        let err = f.write_all(b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        let live = fs.live_contents("big.dat").unwrap();
        assert!(live.len() < 10, "short write, not a full one");
        assert!(b"0123456789".starts_with(&live[..]));
    }

    #[test]
    fn rename_is_atomic_across_crash_points() {
        // atomic_write must leave either the old or the new contents at
        // every crash point — never a mix, never nothing (once the old
        // version was durable).
        let probe = FaultFs::new(11);
        write_file(&probe, "out.txt", b"OLD", true);
        let base = probe.op_count(); // OLD is durable from here on
        atomic_write_via(&probe, "out.txt", b"NEWCONTENT").unwrap();
        let total = probe.op_count();
        for k in base..=total {
            let fs = FaultFs::new(11).with_crash_after(k);
            let _ = try_write_file(&fs, "out.txt", b"OLD", true);
            let _ = atomic_write_via(&fs, "out.txt", b"NEWCONTENT");
            let image = match fs.crash_image() {
                Some(i) => i,
                None => fs.settled_image(),
            };
            let c = image.get("out.txt").unwrap_or(b"");
            assert!(
                c == b"OLD" || c == b"NEWCONTENT",
                "crash at {k}: got {:?}",
                String::from_utf8_lossy(c)
            );
        }
    }

    #[test]
    fn reboot_restores_the_durable_view() {
        let fs = FaultFs::new(5).with_crash_after(6);
        write_file(&fs, "a.txt", b"abc", true); // 4 ops: create/write/sync/syncdir
        let _ = fs.create(Path::new("b.txt")); // op 5
        let _ = fs.read(Path::new("a.txt")); // op 6
        assert!(fs.read(Path::new("a.txt")).is_err(), "op 7 crashes");
        let image = fs.crash_image().unwrap();
        let fs2 = FaultFs::from_image(&image, 5);
        assert_eq!(fs2.read(Path::new("a.txt")).unwrap(), b"abc");
    }

    #[test]
    fn determinism_same_seed_same_image() {
        let run = |seed| {
            // create(1), write 16 unsynced bytes(2), fsync_dir(3) makes
            // the *name* durable; crash on op 4 with the bytes still in
            // the page cache — the surviving prefix length is seeded.
            let fs = FaultFs::new(seed).with_crash_after(3);
            let mut f = fs.create(Path::new("x")).unwrap();
            f.write_all(b"0123456789abcdef").unwrap();
            fs.fsync_dir(Path::new(".")).unwrap();
            let _ = fs.read(Path::new("x"));
            fs.crash_image()
        };
        assert_eq!(run(42), run(42), "same seed, same schedule, same image");
        // Different seeds are allowed to differ (and these do).
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn read_dir_lists_and_injections_target_paths() {
        let fs = FaultFs::new(1);
        fs.create_dir_all(Path::new("store")).unwrap();
        write_file(&fs, "store/a.j1", b"x", false);
        write_file(&fs, "store/b.j1", b"y", false);
        write_file(&fs, "other.txt", b"z", false);
        let listing = fs.read_dir(Path::new("store")).unwrap();
        assert_eq!(listing.len(), 2);
        let fs = FaultFs::new(1)
            .with_injection(Injection::on(OpKind::Create, "locked", FaultKind::Eio));
        assert!(fs.create(Path::new("locked.txt")).is_err());
        assert!(fs.create(Path::new("free.txt")).is_ok());
    }
}
