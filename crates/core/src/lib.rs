//! # acc-validation — the OpenACC validation testsuite infrastructure
//!
//! This crate is the paper's primary contribution (§III): a testing
//! infrastructure that validates OpenACC compiler implementations for
//! conformance, correctness and completeness.
//!
//! * **Templates** ([`template`]) — test bases are authored once, in an
//!   HTML-ish tag format wrapping a C-syntax program body. The expansion
//!   engine parses the body with the reference front-end and generates the
//!   complete standalone C *and* Fortran programs, for both the functional
//!   and the cross variant — the paper's "only one test base is needed for
//!   each of the OpenACC features being validated".
//! * **Functional and cross tests** ([`case`], [`cross`]) — the functional
//!   test checks the directive against a pre-calculated value; the cross
//!   test removes (or substitutes) the directive under test and must yield
//!   an *incorrect* result, confirming the functional pass was caused by the
//!   directive itself (§III, Fig. 2).
//! * **Statistical certainty** ([`stats`]) — cross runs are repeated M
//!   times; with `nf` failures, `p = nf/M`, the accidental-pass probability
//!   is `pa = (1-p)^M` and the certainty `pc = 1 - pa`; a feature is
//!   validated only at `pc = 100%`.
//! * **Harness** ([`harness`]) — compiles each generated program with the
//!   compiler under test, runs it, classifies the outcome (pass, wrong
//!   result, compile error, crash, timeout), and applies the cross
//!   methodology.
//! * **Fault-tolerant executor** ([`executor`]) — wraps every case in panic
//!   isolation, watchdog budgets (interpreter step limit + wall-clock
//!   deadline), a retry policy with flake classification, and a bounded
//!   worker pool, so one broken case or transient device fault cannot take
//!   down or skew a campaign.
//! * **Durable journal** ([`journal`]) — a checksummed, append-only
//!   write-ahead log of every attempt and verdict, so an interrupted
//!   campaign resumes where it stopped (corrupted tails are detected and
//!   discarded) and all report writes are atomic.
//! * **Injectable filesystem** ([`vfs`]) — the seam all durability-critical
//!   I/O routes through: a real passthrough in production, and a
//!   deterministic fault-injecting filesystem (torn writes, EIO/ENOSPC,
//!   fsync loss, crash-after-op-N) for the crash-torture harness.
//! * **Campaigns and reports** ([`campaign`], [`report`]) — run a whole
//!   suite against one or many compiler releases, compute pass rates
//!   (Fig. 8), collect discovered-bug inventories (Table I), and render
//!   reports in plain text, CSV, or HTML with code snippets appended "for
//!   vendors' convenience".

#![warn(missing_docs)]

pub mod analysis;
pub mod campaign;
pub mod case;
pub mod config;
pub mod cross;
pub mod executor;
pub mod harness;
pub mod journal;
pub mod report;
pub mod stats;
pub mod template;
pub mod vfs;

pub use analysis::{attribute, Attribution};
pub use campaign::{Campaign, CampaignResult, FailureBreakdown, SuiteRun};
pub use case::{TestCase, TestStatus};
pub use config::SuiteConfig;
pub use cross::CrossRule;
pub use executor::{CancelToken, ExecStats, Executor, ExecutorPolicy, JobMeta};
pub use harness::{run_case, run_case_with, CasePolicy, CaseResult};
pub use journal::{
    atomic_write, fsync_dir, CompletedCase, FileJournal, JournalRecord, JournalSink,
    MemoryJournal, Replay,
};
pub use stats::Certainty;
pub use vfs::{atomic_write_via, DiskImage, FaultFs, FaultKind, Injection, OpKind, RealFs, Vfs, VfsFile};
