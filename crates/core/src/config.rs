//! Suite configuration: compiler selection, feature filtering, repetitions.
//!
//! §III's "major features": *Compiler configuration* (which implementation
//! to validate) and *Feature selection* ("user can choose to test the
//! directives, their clauses or any other feature of their choice").

use acc_compiler::exec::ExecMode;
use acc_spec::{FeatureId, Language};

/// Which features to run.
#[derive(Debug, Clone, Default)]
pub enum FeatureFilter {
    /// Everything.
    #[default]
    All,
    /// Only features whose id starts with one of the prefixes
    /// (`"parallel"` selects the whole parallel area; `"loop.reduction"`
    /// selects the reduction battery).
    Prefixes(Vec<String>),
    /// An explicit feature list.
    Exact(Vec<FeatureId>),
}

impl FeatureFilter {
    /// Does the filter select this feature?
    pub fn selects(&self, feature: &FeatureId) -> bool {
        match self {
            FeatureFilter::All => true,
            FeatureFilter::Prefixes(ps) => {
                ps.iter().any(|p| feature.as_str().starts_with(p.as_str()))
            }
            FeatureFilter::Exact(list) => list.contains(feature),
        }
    }
}

/// Configuration of one suite run.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Languages to exercise.
    pub languages: Vec<Language>,
    /// Feature selection.
    pub filter: FeatureFilter,
    /// Override of every case's cross-test repetition count (None = per-case
    /// default).
    pub repetitions: Option<u32>,
    /// Which engine executes compiled programs (bytecode VM by default;
    /// `walk` selects the tree-walking reference oracle).
    pub exec_mode: ExecMode,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            languages: vec![Language::C, Language::Fortran],
            filter: FeatureFilter::All,
            repetitions: None,
            exec_mode: ExecMode::default(),
        }
    }
}

impl SuiteConfig {
    /// Default configuration: both languages, all features.
    pub fn new() -> Self {
        Self::default()
    }

    /// Restrict to one language.
    pub fn language(mut self, lang: Language) -> Self {
        self.languages = vec![lang];
        self
    }

    /// Select features by prefix.
    pub fn select_prefixes(mut self, prefixes: &[&str]) -> Self {
        self.filter = FeatureFilter::Prefixes(prefixes.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Force a repetition count.
    pub fn with_repetitions(mut self, m: u32) -> Self {
        self.repetitions = Some(m);
        self
    }

    /// Select the execution engine (VM or tree walker).
    pub fn with_exec_mode(mut self, mode: ExecMode) -> Self {
        self.exec_mode = mode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_selects_everything() {
        let c = SuiteConfig::new();
        assert!(c.filter.selects(&FeatureId::from("parallel.num_gangs")));
        assert_eq!(c.languages.len(), 2);
        assert!(c.repetitions.is_none());
    }

    #[test]
    fn prefix_filter() {
        let f = FeatureFilter::Prefixes(vec!["loop.reduction".into(), "update".into()]);
        assert!(f.selects(&FeatureId::from("loop.reduction.add.int")));
        assert!(f.selects(&FeatureId::from("update.host")));
        assert!(!f.selects(&FeatureId::from("loop.gang")));
    }

    #[test]
    fn exact_filter() {
        let f = FeatureFilter::Exact(vec![FeatureId::from("wait")]);
        assert!(f.selects(&FeatureId::from("wait")));
        assert!(!f.selects(&FeatureId::from("wait2")));
    }

    #[test]
    fn builder_methods() {
        let c = SuiteConfig::new()
            .language(Language::C)
            .select_prefixes(&["data"])
            .with_repetitions(7);
        assert_eq!(c.languages, vec![Language::C]);
        assert_eq!(c.repetitions, Some(7));
        assert!(c.filter.selects(&FeatureId::from("data.copyin")));
    }
}
