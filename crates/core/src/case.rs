//! Test cases: one feature test base plus its metadata.

use crate::cross::CrossRule;
use acc_ast::Program;
use acc_spec::envvar::EnvConfig;
use acc_spec::{FeatureId, Language};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Default cross-test repetition count (the M of §III).
pub const DEFAULT_REPETITIONS: u32 = 3;

/// A single feature test: the base program (authored once), the feature it
/// validates, the languages it applies to, and how to derive its cross test.
#[derive(Debug, Clone)]
pub struct TestCase {
    /// Unique test name (conventionally the feature id).
    pub name: String,
    /// Feature under test.
    pub feature: FeatureId,
    /// Languages the test applies to (`acc_malloc` has no Fortran binding
    /// in 1.0, so its tests are C-only).
    pub languages: Vec<Language>,
    /// The test base. Stored in C form; [`TestCase::program_for`] re-renders
    /// per language.
    pub base: Program,
    /// Cross derivation; `None` for features where no meaningful cross test
    /// exists (§III: "a set of short feature tests wherever possible").
    pub cross: Option<CrossRule>,
    /// Human-readable description for reports.
    pub description: String,
    /// ACC_* environment for the run (environment-variable tests).
    pub env: EnvConfig,
    /// Cross-test repetitions (M).
    pub repetitions: u32,
    /// Memoized rendered source text (functional and cross, per language),
    /// shared by every clone of this case. Rendering is deterministic, so
    /// the first render stands for all — a version sweep re-renders nothing.
    /// Mutate `base`/`cross` only before the first render.
    rendered: Arc<RenderCache>,
}

/// The four render slots: functional/cross × C/Fortran.
#[derive(Debug, Default)]
struct RenderCache {
    func: [OnceLock<String>; 2],
    cross: [OnceLock<Option<String>>; 2],
}

fn lang_idx(lang: Language) -> usize {
    match lang {
        Language::C => 0,
        Language::Fortran => 1,
    }
}

impl TestCase {
    /// Construct with defaults (both languages, M = 3, empty env).
    pub fn new(
        name: impl Into<String>,
        feature: impl Into<String>,
        base: Program,
        cross: Option<CrossRule>,
        description: impl Into<String>,
    ) -> Self {
        let name = name.into();
        TestCase {
            name,
            feature: FeatureId::new(feature.into()),
            languages: vec![Language::C, Language::Fortran],
            base,
            cross,
            description: description.into(),
            env: EnvConfig::empty(),
            repetitions: DEFAULT_REPETITIONS,
            rendered: Arc::default(),
        }
    }

    /// Restrict to C only.
    pub fn c_only(mut self) -> Self {
        self.languages = vec![Language::C];
        self
    }

    /// Set the run environment.
    pub fn with_env(mut self, env: EnvConfig) -> Self {
        self.env = env;
        self
    }

    /// Does the test apply to the language?
    pub fn supports(&self, lang: Language) -> bool {
        self.languages.contains(&lang)
    }

    /// The functional program rendered for a language.
    pub fn program_for(&self, lang: Language) -> Program {
        let mut p = self.base.clone();
        p.language = lang;
        p
    }

    /// The cross program rendered for a language (None when the test has no
    /// cross rule).
    pub fn cross_program_for(&self, lang: Language) -> Option<Program> {
        self.cross.as_ref().map(|rule| {
            let mut p = rule.apply(&self.base);
            p.language = lang;
            p
        })
    }

    /// Functional source text for a language (rendered once, memoized).
    pub fn source_for(&self, lang: Language) -> String {
        self.rendered.func[lang_idx(lang)]
            .get_or_init(|| acc_ast::render(&self.program_for(lang)))
            .clone()
    }

    /// Cross source text for a language (rendered once, memoized).
    pub fn cross_source_for(&self, lang: Language) -> Option<String> {
        self.rendered.cross[lang_idx(lang)]
            .get_or_init(|| self.cross_program_for(lang).map(|p| acc_ast::render(&p)))
            .clone()
    }
}

/// Classification of one test execution against one compiler+language —
/// mirroring the paper's failure taxonomy (§V: compile-time errors; runtime
/// errors: incorrect result, crash, executes forever).
#[derive(Debug, Clone, PartialEq)]
pub enum TestStatus {
    /// Functional test passed and the cross test discriminated at 100%
    /// certainty (or the test defines no cross).
    Pass,
    /// Functional test passed but the cross test did NOT discriminate — the
    /// directive appears to have no effect; the paper reports this and the
    /// functional test is re-designed. Counted as a pass for the compiler
    /// (the failure is the suite's).
    PassInconclusive,
    /// Compilation failed.
    CompileError(String),
    /// The program ran and produced an incorrect result — the "wrong code
    /// bugs … in silence" class.
    WrongResult,
    /// The program crashed at runtime.
    Crash(String),
    /// The program exceeded its execution budget ("executes forever") —
    /// either the interpreter's step budget or the executor's wall-clock
    /// deadline.
    Timeout,
    /// The harness itself failed (a panic inside the front-end or
    /// interpreter caught by the executor's isolation boundary). One red
    /// row, not a dead campaign — and not the compiler's fault.
    Infra(String),
    /// The verdict changed across retry attempts (e.g. a transient memcpy
    /// fault on one node). Not a hard failure of the compiler; surfaced
    /// separately so infrastructure flakiness is visible, with the
    /// attempt-level pass ratio folded into the certainty statistics.
    Flaky,
    /// The test was not executed: either it does not apply to this language
    /// (no reason), or the service degraded it deliberately (reason says
    /// why — e.g. a tripped circuit breaker for the vendor profile).
    /// Skipped rows are never counted, so a degraded campaign's report
    /// stays comparable with a healthy one.
    Skipped(Option<String>),
}

impl TestStatus {
    /// Conformance verdict: did the compiler pass this feature test?
    pub fn passed(&self) -> bool {
        matches!(
            self,
            TestStatus::Pass | TestStatus::PassInconclusive | TestStatus::Flaky
        )
    }

    /// Is this a countable executed test (not skipped)?
    pub fn counted(&self) -> bool {
        !matches!(self, TestStatus::Skipped(_))
    }

    /// The plain "does not apply" skip (no degradation reason).
    pub fn skipped() -> Self {
        TestStatus::Skipped(None)
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            TestStatus::Pass => "PASS",
            TestStatus::PassInconclusive => "PASS*",
            TestStatus::CompileError(_) => "COMPILE-ERROR",
            TestStatus::WrongResult => "WRONG-RESULT",
            TestStatus::Crash(_) => "CRASH",
            TestStatus::Timeout => "TIMEOUT",
            TestStatus::Infra(_) => "INFRA",
            TestStatus::Flaky => "FLAKY",
            TestStatus::Skipped(_) => "SKIP",
        }
    }
}

impl fmt::Display for TestStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestStatus::CompileError(m) => write!(f, "COMPILE-ERROR: {m}"),
            TestStatus::Crash(m) => write!(f, "CRASH: {m}"),
            TestStatus::Infra(m) => write!(f, "INFRA: {m}"),
            TestStatus::Skipped(Some(m)) => write!(f, "SKIP: {m}"),
            other => f.write_str(other.label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_ast::builder as b;
    use acc_ast::{Expr, Stmt};
    use acc_spec::DirectiveKind;

    fn sample() -> TestCase {
        let base = Program::simple(
            "t",
            Language::C,
            vec![
                b::decl_array("A", acc_ast::ScalarType::Int, 8),
                b::parallel_region(
                    vec![],
                    vec![b::acc_loop(
                        vec![],
                        "i",
                        Expr::int(8),
                        vec![b::set1("A", Expr::var("i"), Expr::int(1))],
                    )],
                ),
                Stmt::Return(Expr::int(1)),
            ],
        );
        TestCase::new(
            "loop",
            "loop",
            base,
            Some(CrossRule::RemoveDirective(DirectiveKind::Loop)),
            "loop directive partitions iterations",
        )
    }

    #[test]
    fn renders_both_languages() {
        let t = sample();
        let c = t.source_for(Language::C);
        let f = t.source_for(Language::Fortran);
        assert!(c.contains("#pragma acc parallel"));
        assert!(f.contains("!$acc parallel"));
        assert!(f.contains("!$acc end parallel"));
    }

    #[test]
    fn cross_sources_lack_the_directive() {
        let t = sample();
        let c = t.cross_source_for(Language::C).unwrap();
        assert!(!c.contains("#pragma acc loop"));
        assert!(c.contains("#pragma acc parallel"));
        let f = t.cross_source_for(Language::Fortran).unwrap();
        assert!(!f.contains("!$acc loop"));
    }

    #[test]
    fn c_only_restriction() {
        let t = sample().c_only();
        assert!(t.supports(Language::C));
        assert!(!t.supports(Language::Fortran));
    }

    #[test]
    fn status_classification() {
        assert!(TestStatus::Pass.passed());
        assert!(TestStatus::PassInconclusive.passed());
        assert!(!TestStatus::WrongResult.passed());
        assert!(!TestStatus::CompileError("x".into()).passed());
        assert!(!TestStatus::skipped().counted());
        assert!(!TestStatus::Skipped(Some("breaker open".into())).counted());
        assert_eq!(
            TestStatus::Skipped(Some("breaker open".into())).to_string(),
            "SKIP: breaker open"
        );
        assert!(TestStatus::Timeout.counted());
        assert_eq!(TestStatus::WrongResult.label(), "WRONG-RESULT");
        // Infra failures count but are not compiler passes; flaky results
        // count and are not hard failures.
        assert!(TestStatus::Infra("panic".into()).counted());
        assert!(!TestStatus::Infra("panic".into()).passed());
        assert!(TestStatus::Flaky.counted());
        assert!(TestStatus::Flaky.passed());
        assert_eq!(TestStatus::Infra("x".into()).label(), "INFRA");
        assert_eq!(TestStatus::Flaky.label(), "FLAKY");
        assert_eq!(TestStatus::Infra("boom".into()).to_string(), "INFRA: boom");
    }

    #[test]
    fn no_cross_rule_means_no_cross_program() {
        let mut t = sample();
        t.cross = None;
        assert!(t.cross_program_for(Language::C).is_none());
    }
}
