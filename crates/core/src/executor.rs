//! Fault-tolerant campaign executor: panic isolation, watchdog budgets,
//! retry/flake classification, and a bounded worker pool.
//!
//! A validation campaign is only as trustworthy as its weakest
//! infrastructure link: one panicking case, one runaway interpretation, or
//! one transient device fault must not take down — or silently skew — the
//! other several hundred results. This module wraps the per-case harness of
//! [`crate::harness`] in four robustness layers:
//!
//! 1. **Panic isolation** — every attempt runs under
//!    [`std::panic::catch_unwind`]; a panic becomes a
//!    [`TestStatus::Infra`] row carrying the panic message while the rest of
//!    the campaign proceeds untouched.
//! 2. **Watchdog budgets** — a per-case policy combines the interpreter's
//!    step budget (which *guarantees* termination of the single-threaded
//!    machine) with a wall-clock deadline (which reclassifies attempts that
//!    finished but blew their time budget). Both classify as
//!    [`TestStatus::Timeout`].
//! 3. **Retry + flake classification** — failing attempts are retried with
//!    exponential backoff. When the verdict changes across attempts the case
//!    is classified [`TestStatus::Flaky`] and the attempt series is folded
//!    into the paper's certainty machinery ([`Certainty::from_attempts`]:
//!    M = attempts, nf = failing attempts, so `p` is the observed flake
//!    rate).
//! 4. **Bounded worker pool** — cases fan out over `jobs` std threads fed by
//!    an atomic work index, with results collected over an mpsc channel into
//!    index-ordered slots. Report output is therefore byte-identical for any
//!    `jobs` value on fault-free runs.
//!
//! Determinism note: transient-fault draws in the simulated device are pure
//! functions of (defect seed, program name, run index, event counter) — see
//! `acc_device::profile::transient_fault_fires`. The executor strides the
//! run-index base by [`ATTEMPT_STRIDE`] per attempt, so attempt *k* of a
//! case sees the same faults no matter which worker thread runs it or in
//! what order.

use crate::campaign::{Campaign, SuiteRun};
use crate::case::{TestCase, TestStatus};
use crate::harness::{run_case_with, CaseResult, CasePolicy};
use crate::journal::{JournalRecord, JournalSink, Replay};
use crate::stats::Certainty;
use acc_compiler::exec::ExecMode;
use acc_compiler::VendorCompiler;
use acc_obs as obs;
use acc_spec::{FeatureId, Language};
use std::any::Any;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Run-index stride between retry attempts of one case. Each attempt `k`
/// runs with base `k * ATTEMPT_STRIDE`, and within an attempt the harness
/// consumes `1 + repetitions` consecutive indices — so as long as a case
/// runs fewer than this many executions per attempt, attempts draw fully
/// decorrelated (yet deterministic) transient faults.
pub const ATTEMPT_STRIDE: u64 = 1 << 20;

/// A cooperative cancellation flag shared between the party requesting the
/// stop (a SIGINT/SIGTERM handler, a server drain path, a test) and the
/// executors honouring it. Deliberately nothing but an `AtomicBool`:
/// [`CancelToken::cancel`] is a single atomic store, so it is
/// async-signal-safe and may be called straight from a signal handler.
///
/// Cancellation is observed at job-claim boundaries — attempts already in
/// flight finish (and are journaled) before the worker stops, so a
/// cancelled run's journal is always resumable.
#[derive(Debug, Default)]
pub struct CancelToken {
    flag: AtomicBool,
}

impl CancelToken {
    /// A fresh, un-tripped token behind an `Arc` (tokens are only useful
    /// shared).
    pub fn arc() -> Arc<Self> {
        Arc::new(CancelToken::default())
    }

    /// Request cancellation. Async-signal-safe.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Knobs of the fault-tolerant executor.
#[derive(Clone)]
pub struct ExecutorPolicy {
    /// Worker threads (1 = serial; campaign order is preserved either way).
    pub jobs: usize,
    /// Extra attempts after a failing first attempt.
    pub retries: u32,
    /// Base for the exponential backoff between retries, in milliseconds:
    /// retry `n` sleeps `backoff_base_ms * 2^(n-1)`. 0 disables the sleep.
    pub backoff_base_ms: u64,
    /// Wall-clock deadline per attempt; attempts exceeding it classify as
    /// [`TestStatus::Timeout`]. `None` = no wall-clock watchdog.
    pub case_deadline_ms: Option<u64>,
    /// Interpreter step-budget override; exhaustion classifies as
    /// [`TestStatus::Timeout`]. `None` = the machine default.
    pub step_limit: Option<u64>,
    /// Durable journal sink: every attempt start, attempt verdict, and case
    /// completion is appended (and flushed) before the campaign proceeds.
    pub journal: Option<Arc<dyn JournalSink>>,
    /// Replayed journal state for a resumed campaign: jobs whose (name,
    /// language) appears in `resume.completed` are not re-run — their
    /// journaled result rows are emitted verbatim.
    pub resume: Option<Arc<Replay>>,
    /// Crash simulation for tests and resume drills: stop scheduling new
    /// jobs once this many have been *executed* (cached rows from a resume
    /// don't count). The run reports itself halted; its partial output is
    /// only good for inspecting the journal.
    pub halt_after: Option<usize>,
    /// Cooperative cancellation: once the token trips, workers stop
    /// claiming new jobs (in-flight attempts finish and are journaled) and
    /// the run reports [`ExecStats::cancelled`].
    pub cancel: Option<Arc<CancelToken>>,
    /// Absolute wall-clock deadline for the whole run: once it passes,
    /// workers stop claiming new jobs and the run reports
    /// [`ExecStats::deadlined`]. Distinct from `case_deadline_ms`, which
    /// reclassifies a single slow attempt.
    pub run_deadline: Option<Instant>,
    /// Which engine executes compiled programs (bytecode VM by default;
    /// `walk` selects the tree-walking reference oracle).
    pub exec_mode: ExecMode,
    /// Telemetry collector. Disabled by default; when enabled, the executor
    /// emits suite/case/attempt spans and journal/retry/watchdog events into
    /// it. Never affects results, report bytes, or journal bytes.
    pub recorder: obs::Recorder,
    /// Per-case wall-latency sink. Each executed (non-skipped) case records
    /// its total wall time — all attempts and backoff included — into the
    /// shared histogram. The histogram merge law makes the collected
    /// distribution identical across `jobs` settings; like the recorder, it
    /// never affects results, report bytes, or journal bytes.
    pub latency: Option<obs::LatencyCollector>,
}

impl fmt::Debug for ExecutorPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecutorPolicy")
            .field("jobs", &self.jobs)
            .field("retries", &self.retries)
            .field("backoff_base_ms", &self.backoff_base_ms)
            .field("case_deadline_ms", &self.case_deadline_ms)
            .field("step_limit", &self.step_limit)
            .field("journal", &self.journal.as_ref().map(|_| "<sink>"))
            .field(
                "resume",
                &self.resume.as_ref().map(|r| r.completed_count()),
            )
            .field("halt_after", &self.halt_after)
            .field(
                "cancel",
                &self.cancel.as_ref().map(|c| c.is_cancelled()),
            )
            .field("run_deadline", &self.run_deadline)
            .field("exec_mode", &self.exec_mode)
            .field("recorder", &self.recorder)
            .field("latency", &self.latency)
            .finish()
    }
}

impl Default for ExecutorPolicy {
    fn default() -> Self {
        ExecutorPolicy {
            jobs: 1,
            retries: 0,
            backoff_base_ms: 0,
            case_deadline_ms: None,
            step_limit: None,
            journal: None,
            resume: None,
            halt_after: None,
            cancel: None,
            run_deadline: None,
            exec_mode: ExecMode::default(),
            recorder: obs::Recorder::disabled(),
            latency: None,
        }
    }
}

impl ExecutorPolicy {
    /// Default policy: serial, no retries, no watchdog overrides.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker-thread count.
    ///
    /// # Panics
    /// Rejects `jobs == 0` — a pool with no workers can only deadlock, so
    /// misconfiguration fails loudly at build time instead of hanging a
    /// campaign. (The CLI validates first and turns this into a usage
    /// error.)
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        assert!(jobs >= 1, "ExecutorPolicy: jobs must be at least 1");
        self.jobs = jobs;
        self
    }

    /// Set the retry count.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Set the backoff base in milliseconds.
    pub fn with_backoff_ms(mut self, ms: u64) -> Self {
        self.backoff_base_ms = ms;
        self
    }

    /// Set the per-attempt wall-clock deadline in milliseconds.
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.case_deadline_ms = Some(ms);
        self
    }

    /// Set the interpreter step budget.
    pub fn with_step_limit(mut self, steps: u64) -> Self {
        self.step_limit = Some(steps);
        self
    }

    /// Attach a durable journal sink.
    pub fn with_journal(mut self, journal: Arc<dyn JournalSink>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Attach replayed journal state; completed cases are skipped.
    pub fn with_resume(mut self, replay: Arc<Replay>) -> Self {
        self.resume = Some(replay);
        self
    }

    /// Select the execution engine (VM or tree walker).
    pub fn with_exec_mode(mut self, mode: ExecMode) -> Self {
        self.exec_mode = mode;
        self
    }

    /// Simulate a crash: stop scheduling after `n` executed jobs.
    pub fn with_halt_after(mut self, n: usize) -> Self {
        self.halt_after = Some(n);
        self
    }

    /// Attach a cooperative cancellation token.
    pub fn with_cancel(mut self, token: Arc<CancelToken>) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Set an absolute wall-clock deadline for the whole run.
    pub fn with_run_deadline(mut self, deadline: Instant) -> Self {
        self.run_deadline = Some(deadline);
        self
    }

    /// Attach a telemetry recorder.
    pub fn with_recorder(mut self, recorder: obs::Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attach a per-case wall-latency collector.
    pub fn with_latency(mut self, collector: obs::LatencyCollector) -> Self {
        self.latency = Some(collector);
        self
    }
}

/// What actually happened during a (possibly resumed, possibly halted) run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Jobs executed for real this run.
    pub executed: usize,
    /// Jobs satisfied from the replayed journal without re-running.
    pub cached: usize,
    /// Whether the run stopped early because [`ExecutorPolicy::halt_after`]
    /// tripped. A halted run's result list is partial; its journal is the
    /// durable artifact.
    pub halted: bool,
    /// Whether the run stopped early because its
    /// [`ExecutorPolicy::cancel`] token tripped (signal drain, server
    /// shutdown). Like a halt, the journal is the durable artifact.
    pub cancelled: bool,
    /// Whether the run stopped early because
    /// [`ExecutorPolicy::run_deadline`] passed.
    pub deadlined: bool,
}

impl ExecStats {
    /// Did the run stop before scheduling every job, for any reason?
    pub fn stopped_early(&self) -> bool {
        self.halted || self.cancelled || self.deadlined
    }
}

/// Identity of one job in the pool — enough to label a result row even when
/// the attempt itself panicked before producing one.
#[derive(Debug, Clone)]
pub struct JobMeta {
    /// Test name.
    pub name: String,
    /// Feature id.
    pub feature: FeatureId,
    /// Language variant.
    pub language: Language,
}

/// The fault-tolerant executor: a policy plus the machinery to apply it.
#[derive(Debug, Clone, Default)]
pub struct Executor {
    /// The knobs in force.
    pub policy: ExecutorPolicy,
}

impl Executor {
    /// Create an executor with the given policy.
    pub fn new(policy: ExecutorPolicy) -> Self {
        Executor { policy }
    }

    /// Run a campaign's selected cases against one compiler release under
    /// this executor's policy. Job order (case-major, language-minor) and
    /// therefore result order matches [`Campaign::run_one`] exactly.
    pub fn run_suite(&self, campaign: &Campaign, compiler: &VendorCompiler) -> SuiteRun {
        self.run_suite_stats(campaign, compiler).0
    }

    /// [`Executor::run_suite`] plus the run's [`ExecStats`] — the durable
    /// entry point: when the policy carries a journal the run identity is
    /// logged first, and when it carries a resume the stats say how much
    /// work the journal saved.
    pub fn run_suite_stats(
        &self,
        campaign: &Campaign,
        compiler: &VendorCompiler,
    ) -> (SuiteRun, ExecStats) {
        let compiler = &campaign.effective_compiler(compiler);
        let cases: Vec<TestCase> = campaign.materialized_cases();
        let mut jobs: Vec<(usize, Language)> = Vec::new();
        let mut metas: Vec<JobMeta> = Vec::new();
        for (i, case) in cases.iter().enumerate() {
            for &lang in &campaign.config.languages {
                jobs.push((i, lang));
                metas.push(JobMeta {
                    name: case.name.clone(),
                    feature: case.feature.clone(),
                    language: lang,
                });
            }
        }
        let run = self.policy.recorder.begin_run();
        {
            let _pre = obs::scope(&self.policy.recorder, run, obs::PART_PRE, 0, 0);
            obs::mark(
                obs::Phase::Begin,
                "suite",
                &compiler.label(),
                vec![obs::i("total_jobs", metas.len() as i64)],
            );
            if let Some(journal) = &self.policy.journal {
                let languages: Vec<String> = campaign
                    .config
                    .languages
                    .iter()
                    .map(|l| l.to_string())
                    .collect();
                journal.append(&JournalRecord::Meta {
                    scope: compiler.label(),
                    total_jobs: metas.len(),
                    languages: languages.join("+"),
                });
                obs::instant("journal", "meta", vec![obs::i("total_jobs", metas.len() as i64)]);
            }
            if let Some(resume) = &self.policy.resume {
                obs::instant(
                    "journal",
                    "replay",
                    vec![obs::i("completed", resume.completed_count() as i64)],
                );
            }
        }
        let (results, stats) = self.run_jobs_stats_in(run, &metas, |index, attempt| {
            let (case_index, lang) = jobs[index];
            let policy = CasePolicy {
                step_limit: self.policy.step_limit,
                run_index_base: attempt as u64 * ATTEMPT_STRIDE,
                exec_mode: self.policy.exec_mode,
                // Campaign runs repeat identical executions across versions
                // and repetitions; let the executable's memo serve them.
                memo: true,
            };
            run_case_with(&cases[case_index], compiler, lang, &policy)
        });
        {
            let _post = obs::scope(&self.policy.recorder, run, obs::PART_POST, 0, 0);
            obs::mark(
                obs::Phase::End,
                "suite",
                &compiler.label(),
                vec![
                    obs::i("executed", stats.executed as i64),
                    obs::i("cached", stats.cached as i64),
                    obs::i("halted", stats.halted as i64),
                ],
            );
        }
        (
            SuiteRun {
                compiler: compiler.label(),
                results,
            },
            stats,
        )
    }

    /// Run `metas.len()` jobs through the pool, where `run_attempt(index,
    /// attempt)` produces one attempt's result. This is the generic entry
    /// point the robustness tests use to inject panics, stalls and flaky
    /// verdicts without a real compiler in the loop; [`Executor::run_suite`]
    /// is a thin wrapper over it.
    pub fn run_jobs_with<F>(&self, metas: &[JobMeta], run_attempt: F) -> Vec<CaseResult>
    where
        F: Fn(usize, u32) -> CaseResult + Sync,
    {
        self.run_jobs_stats(metas, run_attempt).0
    }

    /// [`Executor::run_jobs_with`] plus [`ExecStats`]. Jobs found complete
    /// in the replayed journal are emitted from cache without re-running;
    /// a tripped `halt_after` stops scheduling (the returned list is then
    /// partial — in slot order, with unfinished slots elided).
    pub fn run_jobs_stats<F>(&self, metas: &[JobMeta], run_attempt: F) -> (Vec<CaseResult>, ExecStats)
    where
        F: Fn(usize, u32) -> CaseResult + Sync,
    {
        let run = self.policy.recorder.begin_run();
        self.run_jobs_stats_in(run, metas, run_attempt)
    }

    /// [`Executor::run_jobs_stats`] under an already-allocated telemetry run
    /// ordinal, so a caller that emits its own run-level marks (the suite
    /// wrapper, the cluster sweep) shares the run with the jobs it drives.
    fn run_jobs_stats_in<F>(
        &self,
        run: u32,
        metas: &[JobMeta],
        run_attempt: F,
    ) -> (Vec<CaseResult>, ExecStats)
    where
        F: Fn(usize, u32) -> CaseResult + Sync,
    {
        let n = metas.len();
        if n == 0 {
            return (Vec::new(), ExecStats::default());
        }
        let cached: Vec<Option<CaseResult>> =
            metas.iter().map(|m| self.cached_result(m)).collect();
        let halt = self.policy.halt_after;
        let executed = AtomicUsize::new(0);
        let cache_hits = AtomicUsize::new(0);
        let halted = AtomicBool::new(false);
        let cancelled = AtomicBool::new(false);
        let deadlined = AtomicBool::new(false);
        // One stop predicate shared by the serial loop and every pooled
        // worker, evaluated before each job claim: a tripped halt budget,
        // a cancelled token, or an expired run deadline all stop new
        // claims while letting in-flight attempts finish and journal.
        let cancel = self.policy.cancel.clone();
        let run_deadline = self.policy.run_deadline;
        let should_stop = |executed: &AtomicUsize| -> bool {
            if halt.is_some_and(|h| executed.load(Ordering::SeqCst) >= h) {
                halted.store(true, Ordering::SeqCst);
                return true;
            }
            if cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                cancelled.store(true, Ordering::SeqCst);
                return true;
            }
            if run_deadline.is_some_and(|d| Instant::now() >= d) {
                deadlined.store(true, Ordering::SeqCst);
                return true;
            }
            false
        };
        let mut slots: Vec<Option<CaseResult>> = Vec::new();
        slots.resize_with(n, || None);
        let workers = self.policy.jobs.max(1).min(n);
        // One job under its telemetry scope; the scope is keyed by the job's
        // suite position (not the worker), so merged traces are identical
        // across worker counts. Returns the row plus whether it came from
        // the resume cache.
        let do_job = |i: usize, worker: u32| -> (CaseResult, bool) {
            let _g = obs::scope(&self.policy.recorder, run, obs::PART_JOB, i as u32, worker);
            match &cached[i] {
                Some(row) => {
                    obs::instant(
                        "case",
                        &metas[i].name,
                        vec![
                            obs::s("lang", metas[i].language.to_string()),
                            obs::s("source", "cached_resume"),
                            obs::s("status", row.status.label()),
                        ],
                    );
                    (row.clone(), true)
                }
                None => (self.run_one_job(i, &metas[i], &run_attempt), false),
            }
        };
        if workers == 1 {
            for (i, slot) in slots.iter_mut().enumerate() {
                if should_stop(&executed) {
                    break;
                }
                let (row, was_cached) = do_job(i, 0);
                if was_cached {
                    cache_hits.fetch_add(1, Ordering::SeqCst);
                } else {
                    executed.fetch_add(1, Ordering::SeqCst);
                }
                *slot = Some(row);
            }
        } else {
            // Bounded pool: `workers` threads pull indices from an atomic
            // counter and send finished rows back over a channel; the
            // collector writes them into index-ordered slots so the output
            // is independent of scheduling.
            let next = AtomicUsize::new(0);
            let (tx, rx) = mpsc::channel::<(usize, CaseResult)>();
            std::thread::scope(|scope| {
                for worker in 0..workers {
                    let tx = tx.clone();
                    let next = &next;
                    let executed = &executed;
                    let cache_hits = &cache_hits;
                    let should_stop = &should_stop;
                    let do_job = &do_job;
                    scope.spawn(move || loop {
                        if should_stop(executed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::SeqCst);
                        if i >= n {
                            break;
                        }
                        let (row, was_cached) = do_job(i, worker as u32);
                        if was_cached {
                            cache_hits.fetch_add(1, Ordering::SeqCst);
                        } else {
                            executed.fetch_add(1, Ordering::SeqCst);
                        }
                        if tx.send((i, row)).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
                for (i, row) in rx {
                    slots[i] = Some(row);
                }
            });
        }
        let stats = ExecStats {
            executed: executed.load(Ordering::SeqCst),
            cached: cache_hits.load(Ordering::SeqCst),
            halted: halted.load(Ordering::SeqCst),
            cancelled: cancelled.load(Ordering::SeqCst),
            deadlined: deadlined.load(Ordering::SeqCst),
        };
        (slots.into_iter().flatten().collect(), stats)
    }

    /// The journaled result for a job, when resuming and already complete.
    fn cached_result(&self, meta: &JobMeta) -> Option<CaseResult> {
        self.policy
            .resume
            .as_ref()?
            .completed
            .get(&(meta.name.clone(), meta.language))
            .map(|c| c.result.clone())
    }

    /// One job through the full robustness stack: catch_unwind isolation,
    /// the wall-clock watchdog, and the retry/flake loop. When a journal is
    /// attached, every attempt start and verdict — and the final case row —
    /// is appended before the method returns, so a crash at any point leaves
    /// a replayable record.
    fn run_one_job<F>(&self, index: usize, meta: &JobMeta, run_attempt: &F) -> CaseResult
    where
        F: Fn(usize, u32) -> CaseResult + Sync,
    {
        let journal = self.policy.journal.as_deref();
        let job_started = Instant::now();
        let max_attempts = self.policy.retries.saturating_add(1);
        let mut history: Vec<TestStatus> = Vec::new();
        let mut last: Option<CaseResult> = None;
        let case_depth = obs::depth();
        obs::begin(
            "case",
            &meta.name,
            vec![
                obs::s("lang", meta.language.to_string()),
                obs::s("feature", meta.feature.to_string()),
            ],
        );
        for attempt in 0..max_attempts {
            if attempt > 0 && self.policy.backoff_base_ms > 0 {
                let exp = (attempt - 1).min(16);
                let sleep_ms = self.policy.backoff_base_ms.saturating_mul(1u64 << exp);
                obs::instant(
                    "retry",
                    "backoff",
                    vec![
                        obs::i("attempt", attempt as i64),
                        obs::i("sleep_ms", sleep_ms as i64),
                    ],
                );
                std::thread::sleep(Duration::from_millis(sleep_ms));
            }
            if let Some(j) = journal {
                j.append(&JournalRecord::AttemptStart {
                    name: meta.name.clone(),
                    language: meta.language,
                    attempt,
                });
                obs::instant("journal", "attempt_start", vec![obs::i("attempt", attempt as i64)]);
            }
            let attempt_depth = obs::depth();
            obs::begin("attempt", &meta.name, vec![obs::i("attempt", attempt as i64)]);
            let started = Instant::now();
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| run_attempt(index, attempt)));
            // A panic may have unwound through instrumented phases; close
            // any spans it left open (marked aborted) so the attempt span
            // is back on top of the stack.
            obs::unwind_to(attempt_depth.saturating_add(1));
            let mut result = match outcome {
                Ok(r) => r,
                Err(payload) => CaseResult {
                    name: meta.name.clone(),
                    feature: meta.feature.clone(),
                    language: meta.language,
                    status: TestStatus::Infra(panic_message(payload.as_ref())),
                    certainty: None,
                    functional_source: String::new(),
                    attempts: 1,
                },
            };
            // Wall-clock watchdog: the step budget guarantees the attempt
            // terminated; if it nonetheless blew the deadline, the verdict
            // is a timeout regardless of what the attempt reported. Infra
            // rows keep their (more informative) panic message.
            if let Some(deadline) = self.policy.case_deadline_ms {
                let overran = started.elapsed() > Duration::from_millis(deadline);
                let reclassifiable =
                    result.status.counted() && !matches!(result.status, TestStatus::Infra(_));
                if overran && reclassifiable {
                    obs::instant(
                        "watchdog",
                        "deadline",
                        vec![
                            obs::i("deadline_ms", deadline as i64),
                            obs::i("elapsed_ms", started.elapsed().as_millis() as i64),
                        ],
                    );
                    result.status = TestStatus::Timeout;
                    result.certainty = None;
                }
            }
            obs::end(vec![obs::s("status", result.status.label())]);
            if let Some(j) = journal {
                j.append(&JournalRecord::Attempt {
                    name: meta.name.clone(),
                    language: meta.language,
                    attempt,
                    status: result.status.clone(),
                    duration_ms: started.elapsed().as_millis() as u64,
                });
                obs::instant("journal", "attempt", vec![obs::i("attempt", attempt as i64)]);
            }
            let is_skip = matches!(result.status, TestStatus::Skipped(_));
            let passed = result.passed();
            history.push(result.status.clone());
            last = Some(result);
            if passed || is_skip {
                break;
            }
        }
        let mut row = last.expect("at least one attempt ran");
        let attempts_made = history.len() as u32;
        row.attempts = attempts_made;
        let failures = history.iter().filter(|s| s.counted() && !s.passed()).count() as u32;
        let passes = history.iter().filter(|s| s.passed()).count() as u32;
        if failures > 0 && passes > 0 {
            // The verdict changed across attempts: not a hard failure, not a
            // clean pass — a flake, quantified through the same certainty
            // formulas the cross test uses.
            row.status = TestStatus::Flaky;
            row.certainty = Some(Certainty::from_attempts(attempts_made, failures));
        }
        if let Some(j) = journal {
            j.append(&JournalRecord::CaseDone {
                result: row.clone(),
                node: None,
                duration_ms: job_started.elapsed().as_millis() as u64,
            });
            obs::instant("journal", "case_done", vec![]);
        }
        if let Some(lat) = &self.policy.latency {
            // Executed cases only: a skip spends no meaningful wall time and
            // would skew the distribution toward zero.
            if row.status.counted() {
                lat.record_us(job_started.elapsed().as_micros() as u64);
            }
        }
        obs::unwind_to(case_depth.saturating_add(1));
        obs::end(vec![
            obs::s("status", row.status.label()),
            obs::i("attempts", attempts_made as i64),
        ]);
        row
    }
}

/// Render a caught panic payload (the `&str`/`String` cases cover both
/// `panic!("literal")` and `panic!("{formatted}")`).
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cross::CrossRule;
    use acc_ast::builder as b;
    use acc_ast::{Expr, Program};
    use acc_spec::DirectiveKind;

    fn meta(i: usize) -> JobMeta {
        JobMeta {
            name: format!("case{i}"),
            feature: FeatureId::from(format!("f.{i}").as_str()),
            language: Language::C,
        }
    }

    fn metas(n: usize) -> Vec<JobMeta> {
        (0..n).map(meta).collect()
    }

    fn row(m: &JobMeta, status: TestStatus) -> CaseResult {
        CaseResult {
            name: m.name.clone(),
            feature: m.feature.clone(),
            language: m.language,
            status,
            certainty: None,
            functional_source: String::new(),
            attempts: 1,
        }
    }

    fn loop_case() -> TestCase {
        let n = 16;
        let base = Program::simple(
            "loop",
            Language::C,
            vec![
                b::decl_int("error", 0),
                b::decl_array("A", acc_ast::ScalarType::Int, n),
                b::for_upto(
                    "i",
                    Expr::int(n as i64),
                    vec![b::set1("A", Expr::var("i"), Expr::int(0))],
                ),
                b::parallel_region(
                    vec![
                        acc_ast::AccClause::NumGangs(Expr::int(4)),
                        b::copy_sec("A", Expr::int(n as i64)),
                    ],
                    vec![b::acc_loop(
                        vec![],
                        "i",
                        Expr::int(n as i64),
                        vec![b::add1("A", Expr::var("i"), Expr::int(1))],
                    )],
                ),
                b::for_upto(
                    "i",
                    Expr::int(n as i64),
                    vec![b::if_then(
                        Expr::ne(Expr::idx("A", Expr::var("i")), Expr::int(1)),
                        vec![b::bump_error()],
                    )],
                ),
                b::return_error_check(),
            ],
        );
        TestCase::new(
            "loop",
            "loop",
            base,
            Some(CrossRule::RemoveDirective(DirectiveKind::Loop)),
            "loop directive shares iterations across gangs",
        )
    }

    #[test]
    fn panicking_job_is_isolated_as_infra() {
        let ms = metas(5);
        for jobs in [1, 3] {
            let exec = Executor::new(ExecutorPolicy::new().with_jobs(jobs));
            let results = exec.run_jobs_with(&ms, |i, _attempt| {
                if i == 2 {
                    panic!("deliberate harness bug on job {i}");
                }
                row(&ms[i], TestStatus::Pass)
            });
            assert_eq!(results.len(), 5);
            // The panicking slot is an Infra row with the message …
            match &results[2].status {
                TestStatus::Infra(m) => assert!(m.contains("deliberate harness bug"), "{m}"),
                other => panic!("expected Infra, got {other:?}"),
            }
            // … and every other case completed normally.
            for (i, r) in results.iter().enumerate() {
                if i != 2 {
                    assert_eq!(r.status, TestStatus::Pass, "slot {i} under jobs={jobs}");
                }
                assert_eq!(r.name, format!("case{i}"));
            }
        }
    }

    #[test]
    fn verdict_change_across_attempts_is_flaky() {
        let ms = metas(1);
        let exec = Executor::new(ExecutorPolicy::new().with_retries(3));
        let results = exec.run_jobs_with(&ms, |i, attempt| {
            if attempt == 0 {
                row(&ms[i], TestStatus::WrongResult)
            } else {
                row(&ms[i], TestStatus::Pass)
            }
        });
        assert_eq!(results[0].status, TestStatus::Flaky);
        assert!(results[0].passed(), "flaky is not a hard failure");
        assert_eq!(results[0].attempts, 2, "stopped at the first pass");
        let c = results[0].certainty.expect("attempt-series certainty");
        assert_eq!((c.m, c.nf), (2, 1));
        assert!((c.flake_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_failure_stays_hard_after_retries() {
        let ms = metas(1);
        let exec = Executor::new(ExecutorPolicy::new().with_retries(2));
        let results =
            exec.run_jobs_with(&ms, |i, _attempt| row(&ms[i], TestStatus::WrongResult));
        assert_eq!(results[0].status, TestStatus::WrongResult);
        assert_eq!(results[0].attempts, 3, "1 attempt + 2 retries");
        assert!(!results[0].passed());
    }

    #[test]
    fn deterministic_panic_stays_infra_after_retries() {
        let ms = metas(1);
        let exec = Executor::new(ExecutorPolicy::new().with_retries(2));
        let results = exec.run_jobs_with(&ms, |_i, attempt| -> CaseResult {
            panic!("always broken (attempt {attempt})");
        });
        assert!(matches!(results[0].status, TestStatus::Infra(_)));
        assert_eq!(results[0].attempts, 3);
    }

    #[test]
    fn skipped_cases_are_not_retried() {
        let ms = metas(1);
        let attempts_seen = AtomicUsize::new(0);
        let exec = Executor::new(ExecutorPolicy::new().with_retries(5));
        let results = exec.run_jobs_with(&ms, |i, _attempt| {
            attempts_seen.fetch_add(1, Ordering::SeqCst);
            row(&ms[i], TestStatus::skipped())
        });
        assert_eq!(results[0].status, TestStatus::skipped());
        assert_eq!(attempts_seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn tripped_cancel_token_stops_new_claims() {
        let ms = metas(6);
        let token = CancelToken::arc();
        for jobs in [1, 3] {
            let exec = Executor::new(
                ExecutorPolicy::new().with_jobs(jobs).with_cancel(Arc::clone(&token)),
            );
            let trip = Arc::clone(&token);
            let ran = AtomicUsize::new(0);
            let (results, stats) = exec.run_jobs_stats(&ms, |i, _attempt| {
                // First job cancels the run mid-flight; its own result
                // still lands (in-flight work finishes).
                trip.cancel();
                ran.fetch_add(1, Ordering::SeqCst);
                row(&ms[i], TestStatus::Pass)
            });
            assert!(stats.cancelled, "jobs={jobs}");
            assert!(stats.stopped_early());
            assert!(!stats.halted);
            // At most `jobs` claims could have been in flight when the
            // token tripped; the rest were never started.
            assert!(results.len() <= jobs, "jobs={jobs}: {}", results.len());
            assert_eq!(results.len(), ran.load(Ordering::SeqCst));
            token.flag.store(false, Ordering::SeqCst);
        }
    }

    #[test]
    fn expired_run_deadline_stops_before_any_claim() {
        let ms = metas(4);
        let exec = Executor::new(
            ExecutorPolicy::new().with_run_deadline(Instant::now() - Duration::from_millis(1)),
        );
        let (results, stats) = exec.run_jobs_stats(&ms, |i, _attempt| {
            row(&ms[i], TestStatus::Pass)
        });
        assert!(results.is_empty(), "expired work must be cancelled, not run");
        assert!(stats.deadlined);
        assert_eq!(stats.executed, 0);
    }

    #[test]
    fn future_run_deadline_does_not_interfere() {
        let ms = metas(3);
        let exec = Executor::new(
            ExecutorPolicy::new()
                .with_run_deadline(Instant::now() + Duration::from_secs(3600))
                .with_cancel(CancelToken::arc()),
        );
        let (results, stats) = exec.run_jobs_stats(&ms, |i, _attempt| {
            row(&ms[i], TestStatus::Pass)
        });
        assert_eq!(results.len(), 3);
        assert!(!stats.stopped_early());
    }

    #[test]
    fn wall_clock_watchdog_reclassifies_slow_attempts() {
        // Every job sleeps well past the deadline — all must classify
        // Timeout, deterministically, under a parallel pool.
        let ms = metas(4);
        let exec = Executor::new(ExecutorPolicy::new().with_jobs(2).with_deadline_ms(5));
        let results = exec.run_jobs_with(&ms, |i, _attempt| {
            std::thread::sleep(Duration::from_millis(40));
            row(&ms[i], TestStatus::Pass)
        });
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.status, TestStatus::Timeout, "slot {i}");
        }
    }

    #[test]
    fn step_budget_watchdog_classifies_timeout() {
        // A tiny interpreter budget starves even the healthy loop case:
        // the functional run aborts with Timeout.
        let campaign = Campaign::new(vec![loop_case()])
            .with_config(crate::config::SuiteConfig::new().language(Language::C));
        for jobs in [1, 2] {
            let exec = Executor::new(
                ExecutorPolicy::new().with_jobs(jobs).with_step_limit(10),
            );
            let run = exec.run_suite(&campaign, &VendorCompiler::reference());
            assert_eq!(run.results.len(), 1);
            assert_eq!(run.results[0].status, TestStatus::Timeout, "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_suite_matches_serial_suite() {
        let campaign = Campaign::new(vec![loop_case()]);
        let reference = VendorCompiler::reference();
        let serial = Executor::new(ExecutorPolicy::new()).run_suite(&campaign, &reference);
        let parallel =
            Executor::new(ExecutorPolicy::new().with_jobs(4)).run_suite(&campaign, &reference);
        assert_eq!(serial.results.len(), parallel.results.len());
        for (a, b) in serial.results.iter().zip(&parallel.results) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.language, b.language);
            assert_eq!(a.status, b.status);
            assert_eq!(a.certainty, b.certainty);
        }
        // And the executor at jobs=1 matches the plain campaign runner.
        let plain = campaign.run_one(&reference);
        for (a, b) in serial.results.iter().zip(&plain.results) {
            assert_eq!(a.status, b.status);
        }
    }

    #[test]
    fn backoff_sleeps_between_retries() {
        let ms = metas(1);
        let exec = Executor::new(ExecutorPolicy::new().with_retries(2).with_backoff_ms(3));
        let started = Instant::now();
        let results =
            exec.run_jobs_with(&ms, |i, _attempt| row(&ms[i], TestStatus::WrongResult));
        // Backoff: 3ms before retry 1, 6ms before retry 2 → ≥9ms total.
        assert!(started.elapsed() >= Duration::from_millis(9));
        assert_eq!(results[0].attempts, 3);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let exec = Executor::new(ExecutorPolicy::new().with_jobs(8));
        let results = exec.run_jobs_with(&[], |_i, _a| unreachable!());
        assert!(results.is_empty());
    }
}
