//! The shared OpenACC directive grammar.
//!
//! Directive payloads (the text after `#pragma acc` / `!$acc`) are language-
//! independent except for array-section syntax (`a[start:len]` in C,
//! `a(lo:hi)` inclusive in Fortran) and reduction-operator spellings. Both
//! front-ends normalize into the same [`AccDirective`] representation.

use crate::cursor::{parse_expr, Cursor};
use crate::diag::ParseError;
use crate::lex::{lex_c, lex_fortran, Tok};
use acc_ast::{fgen, AccClause, AccDirective, DataRef, Expr};
use acc_spec::{ClauseKind, DirectiveKind, Language, ReductionOp};

/// Parse a directive payload (text after the sentinel) into an
/// [`AccDirective`].
pub fn parse_directive(
    payload: &str,
    lang: Language,
    line: usize,
) -> Result<AccDirective, ParseError> {
    let toks = match lang {
        Language::C => lex_c(payload),
        Language::Fortran => lex_fortran(payload),
    }
    .map_err(|e| ParseError::new(line, format!("in directive: {}", e.message)))?;
    // Strip Fortran newline separators inside the payload.
    let toks: Vec<_> = toks
        .into_iter()
        .filter(|t| !matches!(t.tok, Tok::Newline))
        .collect();
    let mut c = Cursor::new(toks);
    let kind = parse_kind(&mut c, line)?;
    let mut dir = AccDirective::new(kind);
    match kind {
        DirectiveKind::Wait if c.eat_punct("(") => {
            dir.wait_arg = Some(parse_expr(&mut c, lang).map_err(reline(line))?);
            c.expect_punct(")").map_err(reline(line))?;
        }
        DirectiveKind::Cache => {
            c.expect_punct("(").map_err(reline(line))?;
            dir.cache_args = parse_dataref_list(&mut c, lang, line)?;
            c.expect_punct(")").map_err(reline(line))?;
        }
        _ => {}
    }
    while !c.at_eof() {
        let clause = parse_clause(&mut c, lang, line)?;
        dir.clauses.push(clause);
    }
    Ok(dir)
}

fn reline(line: usize) -> impl Fn(ParseError) -> ParseError {
    move |e| ParseError::new(line, e.message)
}

fn parse_kind(c: &mut Cursor, line: usize) -> Result<DirectiveKind, ParseError> {
    // Interned lookup: directive keywords never become AST strings, so no
    // per-keyword allocation happens here.
    let first = c.expect_any_ident_interned().map_err(reline(line))?;
    let kind = match first.as_str() {
        "parallel" => {
            if c.eat_ident("loop") {
                DirectiveKind::ParallelLoop
            } else {
                DirectiveKind::Parallel
            }
        }
        "kernels" => {
            if c.eat_ident("loop") {
                DirectiveKind::KernelsLoop
            } else {
                DirectiveKind::Kernels
            }
        }
        "data" => DirectiveKind::Data,
        "host_data" => DirectiveKind::HostData,
        "loop" => DirectiveKind::Loop,
        "cache" => DirectiveKind::Cache,
        "update" => DirectiveKind::Update,
        "wait" => DirectiveKind::Wait,
        "declare" => DirectiveKind::Declare,
        "enter" => {
            c.expect_ident("data").map_err(reline(line))?;
            DirectiveKind::EnterData
        }
        "exit" => {
            c.expect_ident("data").map_err(reline(line))?;
            DirectiveKind::ExitData
        }
        "routine" => DirectiveKind::Routine,
        other => {
            return Err(ParseError::new(
                line,
                format!("unknown OpenACC directive {other:?}"),
            ))
        }
    };
    Ok(kind)
}

fn parse_clause(c: &mut Cursor, lang: Language, line: usize) -> Result<AccClause, ParseError> {
    let name = c.expect_any_ident_interned().map_err(reline(line))?;
    let clause = match name.as_str() {
        "if" => {
            c.expect_punct("(").map_err(reline(line))?;
            let e = parse_expr(c, lang).map_err(reline(line))?;
            c.expect_punct(")").map_err(reline(line))?;
            AccClause::If(e)
        }
        "async" => {
            if c.eat_punct("(") {
                let e = parse_expr(c, lang).map_err(reline(line))?;
                c.expect_punct(")").map_err(reline(line))?;
                AccClause::Async(Some(e))
            } else {
                AccClause::Async(None)
            }
        }
        "num_gangs" => AccClause::NumGangs(paren_expr(c, lang, line)?),
        "num_workers" => AccClause::NumWorkers(paren_expr(c, lang, line)?),
        "vector_length" => AccClause::VectorLength(paren_expr(c, lang, line)?),
        "collapse" => AccClause::Collapse(paren_expr(c, lang, line)?),
        "reduction" => {
            c.expect_punct("(").map_err(reline(line))?;
            let op = parse_reduction_op(c, line)?;
            c.expect_punct(":").map_err(reline(line))?;
            let vars = parse_name_list(c, line)?;
            c.expect_punct(")").map_err(reline(line))?;
            AccClause::Reduction(op, vars)
        }
        "private" => AccClause::Private(paren_name_list(c, line)?),
        "firstprivate" => AccClause::Firstprivate(paren_name_list(c, line)?),
        "deviceptr" => AccClause::Deviceptr(paren_name_list(c, line)?),
        "use_device" => AccClause::UseDevice(paren_name_list(c, line)?),
        "gang" => opt_width(c, lang, line, AccClause::Gang)?,
        "worker" => opt_width(c, lang, line, AccClause::Worker)?,
        "vector" => opt_width(c, lang, line, AccClause::Vector)?,
        "seq" => AccClause::Seq,
        "independent" => AccClause::Independent,
        "auto" => AccClause::Auto,
        "default" => {
            c.expect_punct("(").map_err(reline(line))?;
            c.expect_ident("none").map_err(reline(line))?;
            c.expect_punct(")").map_err(reline(line))?;
            AccClause::DefaultNone
        }
        "host" => data_clause(c, lang, line, ClauseKind::HostClause)?,
        "device" => data_clause(c, lang, line, ClauseKind::DeviceClause)?,
        "delete" => data_clause(c, lang, line, ClauseKind::Delete)?,
        "device_resident" => data_clause(c, lang, line, ClauseKind::DeviceResident)?,
        other => match ClauseKind::from_name(other) {
            Some(kind)
                if matches!(
                    kind,
                    ClauseKind::Copy
                        | ClauseKind::Copyin
                        | ClauseKind::Copyout
                        | ClauseKind::Create
                        | ClauseKind::Present
                        | ClauseKind::PresentOrCopy
                        | ClauseKind::PresentOrCopyin
                        | ClauseKind::PresentOrCopyout
                        | ClauseKind::PresentOrCreate
                ) =>
            {
                data_clause(c, lang, line, kind)?
            }
            _ => {
                return Err(ParseError::new(
                    line,
                    format!("unknown OpenACC clause {other:?}"),
                ))
            }
        },
    };
    Ok(clause)
}

fn paren_expr(c: &mut Cursor, lang: Language, line: usize) -> Result<Expr, ParseError> {
    c.expect_punct("(").map_err(reline(line))?;
    let e = parse_expr(c, lang).map_err(reline(line))?;
    c.expect_punct(")").map_err(reline(line))?;
    Ok(e)
}

fn opt_width(
    c: &mut Cursor,
    lang: Language,
    line: usize,
    mk: fn(Option<Expr>) -> AccClause,
) -> Result<AccClause, ParseError> {
    if c.peek().is_punct("(") {
        Ok(mk(Some(paren_expr(c, lang, line)?)))
    } else {
        Ok(mk(None))
    }
}

fn parse_name_list(c: &mut Cursor, line: usize) -> Result<Vec<String>, ParseError> {
    let mut names = vec![c.expect_any_ident().map_err(reline(line))?];
    while c.eat_punct(",") {
        names.push(c.expect_any_ident().map_err(reline(line))?);
    }
    Ok(names)
}

fn paren_name_list(c: &mut Cursor, line: usize) -> Result<Vec<String>, ParseError> {
    c.expect_punct("(").map_err(reline(line))?;
    let names = parse_name_list(c, line)?;
    c.expect_punct(")").map_err(reline(line))?;
    Ok(names)
}

fn data_clause(
    c: &mut Cursor,
    lang: Language,
    line: usize,
    kind: ClauseKind,
) -> Result<AccClause, ParseError> {
    c.expect_punct("(").map_err(reline(line))?;
    let refs = parse_dataref_list(c, lang, line)?;
    c.expect_punct(")").map_err(reline(line))?;
    Ok(AccClause::Data(kind, refs))
}

/// Parse a comma-separated data-reference list (stops before the closing
/// `)` of the clause).
fn parse_dataref_list(
    c: &mut Cursor,
    lang: Language,
    line: usize,
) -> Result<Vec<DataRef>, ParseError> {
    let mut refs = vec![parse_dataref(c, lang, line)?];
    while c.eat_punct(",") {
        refs.push(parse_dataref(c, lang, line)?);
    }
    Ok(refs)
}

fn parse_dataref(c: &mut Cursor, lang: Language, line: usize) -> Result<DataRef, ParseError> {
    let name = c.expect_any_ident().map_err(reline(line))?;
    match lang {
        Language::C => {
            if c.eat_punct("[") {
                let start = parse_expr(c, lang).map_err(reline(line))?;
                c.expect_punct(":").map_err(reline(line))?;
                let len = parse_expr(c, lang).map_err(reline(line))?;
                c.expect_punct("]").map_err(reline(line))?;
                Ok(DataRef {
                    name,
                    section: Some((start, len)),
                })
            } else {
                Ok(DataRef::whole(name))
            }
        }
        Language::Fortran => {
            if c.eat_punct("(") {
                let lo = parse_expr(c, lang).map_err(reline(line))?;
                c.expect_punct(":").map_err(reline(line))?;
                let hi = parse_expr(c, lang).map_err(reline(line))?;
                c.expect_punct(")").map_err(reline(line))?;
                // Normalize inclusive lo:hi to (start, length).
                let len = if matches!(lo, Expr::Int(0)) {
                    fgen::add_one(&hi)
                } else {
                    fgen::add_one(&Expr::sub(hi, lo.clone()))
                };
                Ok(DataRef {
                    name,
                    section: Some((lo, len)),
                })
            } else {
                Ok(DataRef::whole(name))
            }
        }
    }
}

fn parse_reduction_op(c: &mut Cursor, line: usize) -> Result<ReductionOp, ParseError> {
    // Operator may arrive as punctuation (C symbols, or Fortran `.and.`
    // already normalized to `&&` by the lexer) or an identifier
    // (`max`, `min`, `iand`, `ior`, `ieor`).
    match c.next() {
        Tok::Punct(p) => ReductionOp::from_c_symbol(p)
            .ok_or_else(|| ParseError::new(line, format!("unknown reduction operator {p:?}"))),
        Tok::Ident(name) => match name.as_str() {
            "max" => Ok(ReductionOp::Max),
            "min" => Ok(ReductionOp::Min),
            "iand" => Ok(ReductionOp::BitAnd),
            "ior" => Ok(ReductionOp::BitOr),
            "ieor" => Ok(ReductionOp::BitXor),
            other => Err(ParseError::new(
                line,
                format!("unknown reduction operator {other:?}"),
            )),
        },
        other => Err(ParseError::new(
            line,
            format!("expected reduction operator, found {other:?}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c_dir(payload: &str) -> AccDirective {
        parse_directive(payload, Language::C, 1).unwrap()
    }

    fn f_dir(payload: &str) -> AccDirective {
        parse_directive(payload, Language::Fortran, 1).unwrap()
    }

    #[test]
    fn parallel_with_clauses_round_trips() {
        let d = c_dir("parallel num_gangs(10) copy(A[0:100]) if(sum < N)");
        assert_eq!(d.kind, DirectiveKind::Parallel);
        assert_eq!(
            d.to_string(),
            "#pragma acc parallel num_gangs(10) copy(A[0:100]) if(sum < N)"
        );
    }

    #[test]
    fn combined_constructs() {
        assert_eq!(c_dir("parallel loop").kind, DirectiveKind::ParallelLoop);
        assert_eq!(c_dir("kernels loop").kind, DirectiveKind::KernelsLoop);
        assert_eq!(c_dir("parallel").kind, DirectiveKind::Parallel);
    }

    #[test]
    fn reduction_c_symbols() {
        for (src, op) in [
            ("loop reduction(+:s)", ReductionOp::Add),
            ("loop reduction(*:s)", ReductionOp::Mul),
            ("loop reduction(max:s)", ReductionOp::Max),
            ("loop reduction(&&:s)", ReductionOp::LogicalAnd),
            ("loop reduction(^:s)", ReductionOp::BitXor),
        ] {
            match &c_dir(src).clauses[0] {
                AccClause::Reduction(o, vars) => {
                    assert_eq!(*o, op);
                    assert_eq!(vars, &["s".to_string()]);
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn reduction_fortran_spellings() {
        for (src, op) in [
            ("loop reduction(.and.:ok)", ReductionOp::LogicalAnd),
            ("loop reduction(iand:m)", ReductionOp::BitAnd),
            ("loop reduction(ieor:m)", ReductionOp::BitXor),
        ] {
            match &f_dir(src).clauses[0] {
                AccClause::Reduction(o, _) => assert_eq!(*o, op),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn fortran_sections_normalize_to_start_len() {
        let d = f_dir("data copyin(a(0:n - 1))");
        match &d.clauses[0] {
            AccClause::Data(ClauseKind::Copyin, refs) => {
                let (start, len) = refs[0].section.clone().unwrap();
                assert_eq!(start, Expr::int(0));
                assert_eq!(len, Expr::var("n"));
            }
            other => panic!("{other:?}"),
        }
        let d = f_dir("data copy(a(2:6))");
        match &d.clauses[0] {
            AccClause::Data(_, refs) => {
                let (start, len) = refs[0].section.clone().unwrap();
                assert_eq!(start, Expr::int(2));
                assert_eq!(len, Expr::int(5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wait_directive_with_tag() {
        let d = c_dir("wait(tag)");
        assert_eq!(d.kind, DirectiveKind::Wait);
        assert_eq!(d.wait_arg, Some(Expr::var("tag")));
        let d = c_dir("wait");
        assert_eq!(d.wait_arg, None);
    }

    #[test]
    fn cache_directive() {
        let d = c_dir("cache(a[0:8], b)");
        assert_eq!(d.kind, DirectiveKind::Cache);
        assert_eq!(d.cache_args.len(), 2);
        assert_eq!(d.cache_args[1], DataRef::whole("b"));
    }

    #[test]
    fn update_host_device() {
        let d = c_dir("update host(a[0:n]) device(b)");
        assert_eq!(d.kind, DirectiveKind::Update);
        assert_eq!(d.clauses.len(), 2);
        assert_eq!(d.clauses[0].kind(), ClauseKind::HostClause);
        assert_eq!(d.clauses[1].kind(), ClauseKind::DeviceClause);
    }

    #[test]
    fn present_or_abbreviations() {
        let d = c_dir("data pcopy(a) pcopyin(b) pcreate(d)");
        let kinds: Vec<_> = d.clauses.iter().map(|c| c.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                ClauseKind::PresentOrCopy,
                ClauseKind::PresentOrCopyin,
                ClauseKind::PresentOrCreate
            ]
        );
    }

    #[test]
    fn loop_schedule_clauses() {
        let d = c_dir("loop gang worker(4) vector(32) independent");
        assert!(d.has(ClauseKind::Gang));
        match d.find(ClauseKind::Worker) {
            Some(AccClause::Worker(Some(e))) => assert_eq!(e.const_int(), Some(4)),
            other => panic!("{other:?}"),
        }
        assert!(d.has(ClauseKind::Independent));
    }

    #[test]
    fn v2_directives_parse() {
        assert_eq!(c_dir("enter data copyin(a)").kind, DirectiveKind::EnterData);
        assert_eq!(c_dir("exit data delete(a)").kind, DirectiveKind::ExitData);
        assert_eq!(c_dir("routine seq").kind, DirectiveKind::Routine);
        assert_eq!(
            c_dir("parallel default(none)").clauses[0],
            AccClause::DefaultNone
        );
    }

    #[test]
    fn unknown_directive_and_clause_error() {
        assert!(parse_directive("banana", Language::C, 1).is_err());
        assert!(parse_directive("parallel banana(3)", Language::C, 1).is_err());
    }

    #[test]
    fn private_and_firstprivate() {
        let d = c_dir("parallel private(x, y) firstprivate(z)");
        match &d.clauses[0] {
            AccClause::Private(v) => assert_eq!(v, &["x".to_string(), "y".to_string()]),
            other => panic!("{other:?}"),
        }
        match &d.clauses[1] {
            AccClause::Firstprivate(v) => assert_eq!(v, &["z".to_string()]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn declare_with_create() {
        let d = c_dir("declare create(buf[0:256]) device_resident(tmp)");
        assert_eq!(d.kind, DirectiveKind::Declare);
        assert_eq!(d.clauses.len(), 2);
    }
}
