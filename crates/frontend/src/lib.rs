//! # acc-frontend — mini-C and mini-Fortran front-ends
//!
//! The simulated vendor compilers do not consume ASTs directly: the
//! testsuite renders every generated test to *source text* (the paper's
//! generated tests are "complete and standalone C/Fortran code", §I) and the
//! compiler under test re-parses that text with the front-ends in this
//! crate. This keeps the validation pipeline honest — a front-end bug in a
//! simulated compiler manifests exactly like a real vendor front-end bug.
//!
//! Two front-ends are provided:
//!
//! * [`cparse`] — a recursive-descent parser for the C subset emitted by
//!   `acc_ast::cgen`, including `#pragma acc` directive lines.
//! * [`fparse`] — a line-oriented parser for the Fortran dialect emitted by
//!   `acc_ast::fgen`, including `!$acc` sentinels and `!$acc end` block
//!   terminators.
//!
//! Both lower to the same [`acc_ast::Program`] representation, and both use
//! the shared OpenACC directive grammar in [`directive`]. [`sema`] provides
//! the specification-conformance checks (clause legality, declaration-before-
//! use) a conforming front-end must perform.
//!
//! Round-trip guarantees (property-tested in `tests/`):
//! `emit_c ∘ parse_c` is the identity on emitted text, and
//! `emit_fortran ∘ parse_fortran` reaches a fixpoint after one iteration.

#![warn(missing_docs)]

pub mod cparse;
pub mod cursor;
pub mod diag;
pub mod directive;
pub mod fparse;
pub mod lex;
pub mod resolve;
pub mod sema;

pub use diag::{Diagnostic, ParseError, Severity};
pub use resolve::{resolve, FrameLayout, ResolvedProgram};

use acc_ast::Program;
use acc_spec::Language;

/// Parse source text in the given language into a [`Program`].
pub fn parse(source: &str, language: Language) -> Result<Program, ParseError> {
    match language {
        Language::C => cparse::parse_c(source),
        Language::Fortran => fparse::parse_fortran(source),
    }
}
