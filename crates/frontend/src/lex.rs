//! Lexing shared by the C and Fortran front-ends.
//!
//! Both front-ends lex to the same [`Tok`] alphabet; the differences are
//! which multi-character operators exist (`.and.` vs `&&`), how directive
//! lines are introduced (`#pragma acc` vs `!$acc`), and how comments are
//! spelled. Directive payloads are carried as [`Tok::Directive`] tokens and
//! re-lexed by the shared directive grammar in [`crate::directive`].

use crate::diag::ParseError;
use smol_str::SmolStr;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (classification is the parser's job). Interned
    /// as a [`SmolStr`]: every identifier and OpenACC keyword the generators
    /// emit fits the inline small-string buffer, so constructing (and
    /// cloning) these tokens never allocates.
    Ident(SmolStr),
    /// Integer literal.
    Int(i64),
    /// Real literal; `true` = double precision (C unsuffixed / Fortran `d`
    /// exponent).
    Real(f64, bool),
    /// Operator or punctuation, normalized to its C spelling where a C
    /// equivalent exists (`.and.` lexes as `&&`).
    Punct(&'static str),
    /// An OpenACC directive line: the payload after the sentinel, e.g.
    /// `parallel num_gangs(10)`. For Fortran `!$acc end parallel` lines the
    /// payload begins with `end `.
    Directive(String),
    /// Statement separator (Fortran end-of-line; C does not emit these).
    Newline,
    /// End of input.
    Eof,
}

impl Tok {
    /// True when the token is the given punctuation.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, Tok::Punct(q) if *q == p)
    }

    /// True when the token is the given identifier/keyword.
    pub fn is_ident(&self, k: &str) -> bool {
        matches!(self, Tok::Ident(q) if q == k)
    }
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
}

const C_PUNCTS: &[&str] = &[
    "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "==", "!=", "<=", ">=", "&&", "||",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "(", ")", "[", "]", "{", "}", ",",
    ";", ":",
];

/// Lex C source (as emitted by `acc_ast::cgen`) into tokens.
///
/// `#include` lines are skipped; `#pragma acc …` lines become
/// [`Tok::Directive`]; `/* … */` and `// …` comments are skipped.
pub fn lex_c(src: &str) -> Result<Vec<SpannedTok>, ParseError> {
    let mut toks = Vec::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line_no = lineno + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(payload) = rest.strip_prefix("pragma") {
                let payload = payload.trim_start();
                if let Some(acc) = payload.strip_prefix("acc") {
                    toks.push(SpannedTok {
                        tok: Tok::Directive(acc.trim().to_string()),
                        line: line_no,
                    });
                }
                // Non-acc pragmas are ignored, like a real compiler would.
            }
            // #include and other preprocessor lines are skipped.
            continue;
        }
        lex_code_line(line, line_no, false, &mut toks)?;
    }
    toks.push(SpannedTok {
        tok: Tok::Eof,
        line: src.lines().count() + 1,
    });
    Ok(toks)
}

/// Lex Fortran source (as emitted by `acc_ast::fgen`) into tokens.
///
/// Every source line ends with a [`Tok::Newline`] (the statement separator);
/// `!$acc` lines become [`Tok::Directive`]; other `!` comments are skipped.
pub fn lex_fortran(src: &str) -> Result<Vec<SpannedTok>, ParseError> {
    let mut toks = Vec::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line_no = lineno + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("!$acc") {
            toks.push(SpannedTok {
                tok: Tok::Directive(rest.trim().to_string()),
                line: line_no,
            });
            toks.push(SpannedTok {
                tok: Tok::Newline,
                line: line_no,
            });
            continue;
        }
        if line.starts_with('!') {
            continue;
        }
        let before = toks.len();
        lex_code_line(line, line_no, true, &mut toks)?;
        if toks.len() > before {
            toks.push(SpannedTok {
                tok: Tok::Newline,
                line: line_no,
            });
        }
    }
    toks.push(SpannedTok {
        tok: Tok::Eof,
        line: src.lines().count() + 1,
    });
    Ok(toks)
}

/// Lex one line of executable code.
fn lex_code_line(
    line: &str,
    line_no: usize,
    fortran: bool,
    out: &mut Vec<SpannedTok>,
) -> Result<(), ParseError> {
    let b = line.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // C comments.
        if !fortran && c == '/' && i + 1 < b.len() {
            if b[i + 1] == b'/' {
                break;
            }
            if b[i + 1] == b'*' {
                // Single-line /* */ only (the generator never spans lines).
                match line[i + 2..].find("*/") {
                    Some(end) => {
                        i = i + 2 + end + 2;
                        continue;
                    }
                    None => return Err(ParseError::new(line_no, "unterminated /* comment")),
                }
            }
        }
        // Fortran trailing comment.
        if fortran && c == '!' {
            break;
        }
        // Fortran dotted operators: .and. .or. .not.
        if fortran && c == '.' && !next_is_digit(b, i + 1) {
            let rest = &line[i..];
            let lower = rest.to_ascii_lowercase();
            let mapped = if lower.starts_with(".and.") {
                Some(("&&", 5))
            } else if lower.starts_with(".or.") {
                Some(("||", 4))
            } else if lower.starts_with(".not.") {
                Some(("!", 5))
            } else {
                None
            };
            if let Some((p, len)) = mapped {
                out.push(SpannedTok {
                    tok: Tok::Punct(p),
                    line: line_no,
                });
                i += len;
                continue;
            }
            return Err(ParseError::new(
                line_no,
                format!("unknown dotted operator near {rest:?}"),
            ));
        }
        // Numbers (integers and reals). A leading '.' followed by a digit is
        // a real literal.
        if c.is_ascii_digit() || (c == '.' && next_is_digit(b, i + 1)) {
            let (tok, len) = lex_number(&line[i..], line_no, fortran)?;
            out.push(SpannedTok { tok, line: line_no });
            i += len;
            continue;
        }
        // Identifiers.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            out.push(SpannedTok {
                tok: Tok::Ident(SmolStr::new(&line[start..i])),
                line: line_no,
            });
            continue;
        }
        // Fortran `/=` is C `!=`.
        if fortran && line[i..].starts_with("/=") {
            out.push(SpannedTok {
                tok: Tok::Punct("!="),
                line: line_no,
            });
            i += 2;
            continue;
        }
        // Operators, longest match first.
        let mut matched = false;
        for p in C_PUNCTS {
            if line[i..].starts_with(p) {
                out.push(SpannedTok {
                    tok: Tok::Punct(p),
                    line: line_no,
                });
                i += p.len();
                matched = true;
                break;
            }
        }
        if !matched {
            return Err(ParseError::new(
                line_no,
                format!("unexpected character {c:?}"),
            ));
        }
    }
    Ok(())
}

fn next_is_digit(b: &[u8], i: usize) -> bool {
    i < b.len() && (b[i] as char).is_ascii_digit()
}

/// Lex a numeric literal. Returns the token and consumed byte length.
fn lex_number(s: &str, line_no: usize, fortran: bool) -> Result<(Tok, usize), ParseError> {
    let b = s.as_bytes();
    let mut i = 0;
    let mut has_dot = false;
    let mut has_exp = false;
    let mut is_double_exp = false;
    while i < b.len() {
        let c = b[i] as char;
        if c.is_ascii_digit() {
            i += 1;
        } else if c == '.' && !has_dot && !has_exp && next_is_digit(b, i + 1) {
            has_dot = true;
            i += 1;
        } else if c == '.' && !has_dot && !has_exp {
            // Trailing dot followed by non-digit: in Fortran this could begin
            // `.and.`; stop the number here. In C the generator never emits
            // `1.` so stopping is also safe, unless followed by exponent.
            if i + 1 < b.len() && (b[i + 1] as char).is_ascii_alphabetic() && !fortran {
                has_dot = true;
                i += 1;
            } else if fortran {
                break;
            } else {
                has_dot = true;
                i += 1;
            }
        } else if (c == 'e' || c == 'E' || (fortran && (c == 'd' || c == 'D'))) && !has_exp {
            // Exponent must be followed by digits or a sign.
            let mut j = i + 1;
            if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
                j += 1;
            }
            if j < b.len() && (b[j] as char).is_ascii_digit() {
                is_double_exp = c == 'd' || c == 'D';
                has_exp = true;
                i = j;
            } else {
                break;
            }
        } else {
            break;
        }
    }
    let text = &s[..i];
    if !has_dot && !has_exp {
        let v: i64 = text
            .parse()
            .map_err(|_| ParseError::new(line_no, format!("bad integer literal {text:?}")))?;
        return Ok((Tok::Int(v), i));
    }
    // Real: check C `f` suffix.
    let normalized = text.replace(['d', 'D'], "e");
    let v: f64 = normalized
        .parse()
        .map_err(|_| ParseError::new(line_no, format!("bad real literal {text:?}")))?;
    if !fortran && i < b.len() && (b[i] == b'f' || b[i] == b'F') {
        return Ok((Tok::Real(v, false), i + 1));
    }
    if fortran {
        // Fortran: `d` exponent or `d0` suffix means double; otherwise real.
        Ok((Tok::Real(v, is_double_exp), i))
    } else {
        Ok((Tok::Real(v, true), i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str, fortran: bool) -> Vec<Tok> {
        let v = if fortran {
            lex_fortran(src)
        } else {
            lex_c(src)
        }
        .unwrap();
        v.into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn c_pragma_becomes_directive() {
        let t = toks("#pragma acc parallel num_gangs(10)\n{\n}\n", false);
        assert_eq!(t[0], Tok::Directive("parallel num_gangs(10)".into()));
        assert_eq!(t[1], Tok::Punct("{"));
        assert_eq!(t[2], Tok::Punct("}"));
        assert_eq!(t[3], Tok::Eof);
    }

    #[test]
    fn c_includes_skipped() {
        let t = toks("#include <openacc.h>\nint x;\n", false);
        assert_eq!(t[0], Tok::Ident("int".into()));
    }

    #[test]
    fn c_comments_skipped() {
        let t = toks("x = 1; /* inline */ y = 2; // trailing\n", false);
        let idents: Vec<_> = t
            .iter()
            .filter_map(|t| match t {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(idents, vec!["x", "y"]);
    }

    #[test]
    fn c_float_suffix() {
        let t = toks("a = 0.5f;\n", false);
        assert!(t.contains(&Tok::Real(0.5, false)));
        let t = toks("a = 0.5;\n", false);
        assert!(t.contains(&Tok::Real(0.5, true)));
        let t = toks("a = 1e-9;\n", false);
        assert!(t.contains(&Tok::Real(1e-9, true)));
    }

    #[test]
    fn c_multichar_ops() {
        let t = toks("a += b && c != d;\n", false);
        assert!(t.contains(&Tok::Punct("+=")));
        assert!(t.contains(&Tok::Punct("&&")));
        assert!(t.contains(&Tok::Punct("!=")));
    }

    #[test]
    fn fortran_sentinel_and_end() {
        let t = toks("!$acc parallel\nx = 1\n!$acc end parallel\n", true);
        assert_eq!(t[0], Tok::Directive("parallel".into()));
        assert!(t.contains(&Tok::Directive("end parallel".into())));
    }

    #[test]
    fn fortran_dotted_ops_normalize() {
        let t = toks("ok = a .and. b .or. .not. c\n", true);
        assert!(t.contains(&Tok::Punct("&&")));
        assert!(t.contains(&Tok::Punct("||")));
        assert!(t.contains(&Tok::Punct("!")));
    }

    #[test]
    fn fortran_ne_normalizes() {
        let t = toks("if (a /= b) then\n", true);
        assert!(t.contains(&Tok::Punct("!=")));
    }

    #[test]
    fn fortran_double_literals() {
        let t = toks("x = 0.5d0\n", true);
        assert!(t.contains(&Tok::Real(0.5, true)));
        let t = toks("x = 1d-9\n", true);
        assert!(t.contains(&Tok::Real(1e-9, true)));
        let t = toks("x = 0.5\n", true);
        assert!(t.contains(&Tok::Real(0.5, false)));
    }

    #[test]
    fn fortran_comment_lines_skipped() {
        let t = toks("! plain comment\nx = 1\n", true);
        assert_eq!(t[0], Tok::Ident("x".into()));
    }

    #[test]
    fn fortran_newlines_separate() {
        let t = toks("x = 1\ny = 2\n", true);
        let newlines = t.iter().filter(|t| **t == Tok::Newline).count();
        assert_eq!(newlines, 2);
    }

    #[test]
    fn number_stops_before_dotted_op_in_fortran() {
        let t = toks("ok = i == 1 .and. ok\n", true);
        assert!(t.contains(&Tok::Int(1)));
        assert!(t.contains(&Tok::Punct("&&")));
    }

    #[test]
    fn negative_handled_by_parser_not_lexer() {
        let t = toks("x = -5;\n", false);
        assert!(t.contains(&Tok::Punct("-")));
        assert!(t.contains(&Tok::Int(5)));
    }

    #[test]
    fn unexpected_char_is_error() {
        assert!(lex_c("x = `;\n").is_err());
    }
}
