//! Semantic analysis: the specification-conformance checks a front-end must
//! perform before lowering.
//!
//! The checks are deliberately those a conforming OpenACC 1.0 front-end
//! performs: clause legality per directive, rejection of 2.0-only syntax in
//! 1.0 mode, declaration-before-use, reduction-variable shape, and constant
//! `collapse` arguments. The simulated vendor compilers run this pass and
//! report compile-time errors from it — the paper's "compile-time errors are
//! assertion violations or other internal compilation errors … if the user
//! uses an OpenACC feature that is not yet supported" (§V).

use crate::cursor::is_fortran_callable;
use crate::diag::Diagnostic;
use acc_ast::{AccClause, AccDirective, Expr, Function, LValue, Program, Stmt};
use acc_spec::{DeviceType, Language, SpecVersion};
use std::collections::HashSet;

/// C math intrinsics known to the runtime.
const C_INTRINSICS: &[&str] = &[
    "powf", "pow", "fabsf", "fabs", "sqrtf", "sqrt", "abs", "min", "max", "mod", "iand", "ior",
    "ieor", "malloc", "free",
];

/// Run all checks on a program. Returns the diagnostics; compilation should
/// be rejected if any has `Severity::Error`.
pub fn analyze(program: &Program, spec: SpecVersion) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let fn_names: HashSet<&str> = program.functions.iter().map(|f| f.name.as_str()).collect();
    for f in &program.functions {
        analyze_function(program, f, &fn_names, spec, &mut diags);
    }
    diags
}

/// True when a program has no error-severity diagnostics under `spec`.
pub fn conforms(program: &Program, spec: SpecVersion) -> bool {
    analyze(program, spec)
        .iter()
        .all(|d| d.severity < crate::diag::Severity::Error)
}

fn predefined_constants() -> HashSet<String> {
    let mut s = HashSet::new();
    for d in [
        DeviceType::None,
        DeviceType::Default,
        DeviceType::Host,
        DeviceType::NotHost,
        DeviceType::Cuda,
        DeviceType::Opencl,
        DeviceType::Nvidia,
        DeviceType::Radeon,
        DeviceType::XeonPhi,
        DeviceType::PgiOpencl,
        DeviceType::NvidiaOpencl,
    ] {
        s.insert(d.symbol().to_string());
    }
    s
}

struct Scope {
    vars: HashSet<String>,
    arrays: HashSet<String>,
    ptrs: HashSet<String>,
}

fn analyze_function(
    program: &Program,
    f: &Function,
    fn_names: &HashSet<&str>,
    spec: SpecVersion,
    diags: &mut Vec<Diagnostic>,
) {
    let mut scope = Scope {
        vars: predefined_constants(),
        arrays: HashSet::new(),
        ptrs: HashSet::new(),
    };
    for p in &f.params {
        match p.kind {
            acc_ast::ParamKind::Scalar(_) => {
                scope.vars.insert(p.name.clone());
            }
            acc_ast::ParamKind::ArrayPtr(_) => {
                scope.arrays.insert(p.name.clone());
            }
        }
    }
    check_body(program, &f.body, &mut scope, fn_names, spec, diags);
}

fn check_body(
    program: &Program,
    body: &[Stmt],
    scope: &mut Scope,
    fn_names: &HashSet<&str>,
    spec: SpecVersion,
    diags: &mut Vec<Diagnostic>,
) {
    for s in body {
        match s {
            Stmt::DeclScalar { name, ty, init } => {
                if let Some(e) = init {
                    check_expr(program, e, scope, fn_names, diags);
                }
                scope.vars.insert(name.clone());
                if matches!(ty, acc_ast::Type::Ptr(_)) {
                    scope.ptrs.insert(name.clone());
                }
            }
            Stmt::DeclArray { name, dims, .. } => {
                if dims.is_empty() || dims.len() > 2 {
                    diags.push(Diagnostic::error(
                        0,
                        format!("array `{name}` must have one or two dimensions"),
                    ));
                }
                scope.arrays.insert(name.clone());
            }
            Stmt::Assign { target, value, .. } => {
                check_lvalue(program, target, scope, fn_names, diags);
                check_expr(program, value, scope, fn_names, diags);
            }
            Stmt::For(l) => {
                check_expr(program, &l.from, scope, fn_names, diags);
                check_expr(program, &l.to, scope, fn_names, diags);
                check_expr(program, &l.step, scope, fn_names, diags);
                scope.vars.insert(l.var.clone());
                check_body(program, &l.body, scope, fn_names, spec, diags);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                check_expr(program, cond, scope, fn_names, diags);
                check_body(program, then_body, scope, fn_names, spec, diags);
                check_body(program, else_body, scope, fn_names, spec, diags);
            }
            Stmt::Call { name, args } => {
                check_callee(program, name, fn_names, diags);
                for a in args {
                    check_expr(program, a, scope, fn_names, diags);
                }
            }
            Stmt::Return(e) => check_expr(program, e, scope, fn_names, diags),
            Stmt::AccBlock { dir, body } => {
                check_directive(program, dir, scope, fn_names, spec, diags);
                check_body(program, body, scope, fn_names, spec, diags);
            }
            Stmt::AccLoop { dir, l } => {
                check_directive(program, dir, scope, fn_names, spec, diags);
                check_expr(program, &l.from, scope, fn_names, diags);
                check_expr(program, &l.to, scope, fn_names, diags);
                scope.vars.insert(l.var.clone());
                check_body(program, &l.body, scope, fn_names, spec, diags);
            }
            Stmt::AccStandalone { dir } => {
                check_directive(program, dir, scope, fn_names, spec, diags);
            }
        }
    }
}

fn check_lvalue(
    program: &Program,
    lv: &LValue,
    scope: &Scope,
    fn_names: &HashSet<&str>,
    diags: &mut Vec<Diagnostic>,
) {
    match lv {
        LValue::Var(n) => {
            // Assignment to the function result name (Fortran) or a declared
            // scalar.
            if !scope.vars.contains(n) && !fn_names.contains(n.as_str()) {
                diags.push(Diagnostic::error(
                    0,
                    format!("assignment to undeclared variable `{n}`"),
                ));
            }
        }
        LValue::Index { base, indices } => {
            if !scope.arrays.contains(base) && !scope.ptrs.contains(base) {
                diags.push(Diagnostic::error(
                    0,
                    format!("indexing undeclared array `{base}`"),
                ));
            }
            for i in indices {
                check_expr(program, i, scope, fn_names, diags);
            }
        }
    }
}

fn check_callee(
    program: &Program,
    name: &str,
    fn_names: &HashSet<&str>,
    diags: &mut Vec<Diagnostic>,
) {
    let known = fn_names.contains(name)
        || name.starts_with("acc_")
        || C_INTRINSICS.contains(&name)
        || (program.language == Language::Fortran && is_fortran_callable(name));
    if !known {
        diags.push(Diagnostic::error(
            0,
            format!("call to undefined function `{name}`"),
        ));
    }
}

fn check_expr(
    program: &Program,
    e: &Expr,
    scope: &Scope,
    fn_names: &HashSet<&str>,
    diags: &mut Vec<Diagnostic>,
) {
    match e {
        Expr::Var(n) => {
            if !scope.vars.contains(n) && !scope.arrays.contains(n) {
                diags.push(Diagnostic::error(
                    0,
                    format!("use of undeclared variable `{n}`"),
                ));
            }
        }
        Expr::Index { base, indices } => {
            if !scope.arrays.contains(base) && !scope.ptrs.contains(base) {
                diags.push(Diagnostic::error(
                    0,
                    format!("indexing undeclared array `{base}`"),
                ));
            }
            for i in indices {
                check_expr(program, i, scope, fn_names, diags);
            }
        }
        Expr::Unary(_, inner) => check_expr(program, inner, scope, fn_names, diags),
        Expr::Binary(_, l, r) => {
            check_expr(program, l, scope, fn_names, diags);
            check_expr(program, r, scope, fn_names, diags);
        }
        Expr::Call { name, args } => {
            check_callee(program, name, fn_names, diags);
            for a in args {
                check_expr(program, a, scope, fn_names, diags);
            }
        }
        Expr::Int(_) | Expr::Real(..) | Expr::SizeOf(_) => {}
    }
}

fn check_directive(
    program: &Program,
    dir: &AccDirective,
    scope: &Scope,
    fn_names: &HashSet<&str>,
    spec: SpecVersion,
    diags: &mut Vec<Diagnostic>,
) {
    // 2.0 syntax rejected under a 1.0 front-end.
    if dir.kind.introduced_in() > spec {
        diags.push(Diagnostic::error(
            0,
            format!(
                "directive `{}` requires OpenACC {}",
                dir.kind.name(),
                dir.kind.introduced_in()
            ),
        ));
    }
    for c in &dir.clauses {
        let kind = c.kind();
        if kind.introduced_in() > spec {
            diags.push(Diagnostic::error(
                0,
                format!(
                    "clause `{}` requires OpenACC {}",
                    kind.name(),
                    kind.introduced_in()
                ),
            ));
        } else if !dir.kind.allows(kind) {
            diags.push(Diagnostic::error(
                0,
                format!(
                    "clause `{}` is not allowed on `{}`",
                    kind.name(),
                    dir.kind.name()
                ),
            ));
        }
        match c {
            AccClause::If(e)
            | AccClause::NumGangs(e)
            | AccClause::NumWorkers(e)
            | AccClause::VectorLength(e)
            | AccClause::Async(Some(e))
            | AccClause::Gang(Some(e))
            | AccClause::Worker(Some(e))
            | AccClause::Vector(Some(e)) => check_expr(program, e, scope, fn_names, diags),
            AccClause::Collapse(e) => match e.const_int() {
                Some(n) if n >= 1 => {}
                Some(n) => diags.push(Diagnostic::error(
                    0,
                    format!("collapse({n}) must be a positive constant"),
                )),
                None => diags.push(Diagnostic::error(
                    0,
                    "collapse argument must be a compile-time constant".to_string(),
                )),
            },
            AccClause::Reduction(_, vars) => {
                for v in vars {
                    if scope.arrays.contains(v) {
                        diags.push(Diagnostic::error(
                            0,
                            format!("reduction variable `{v}` must be scalar"),
                        ));
                    } else if !scope.vars.contains(v) {
                        diags.push(Diagnostic::error(
                            0,
                            format!("reduction variable `{v}` is not declared"),
                        ));
                    }
                }
            }
            AccClause::Private(vars)
            | AccClause::Firstprivate(vars)
            | AccClause::UseDevice(vars)
            | AccClause::Deviceptr(vars) => {
                for v in vars {
                    if !scope.vars.contains(v) && !scope.arrays.contains(v) {
                        diags.push(Diagnostic::error(
                            0,
                            format!("variable `{v}` in `{}` clause is not declared", kind.name()),
                        ));
                    }
                }
            }
            AccClause::Data(_, refs) => {
                for r in refs {
                    if !scope.vars.contains(&r.name) && !scope.arrays.contains(&r.name) {
                        diags.push(Diagnostic::error(
                            0,
                            format!("variable `{}` in data clause is not declared", r.name),
                        ));
                    }
                    if let Some((start, len)) = &r.section {
                        check_expr(program, start, scope, fn_names, diags);
                        check_expr(program, len, scope, fn_names, diags);
                    }
                }
            }
            _ => {}
        }
    }
    if let Some(e) = &dir.wait_arg {
        check_expr(program, e, scope, fn_names, diags);
    }
    for r in &dir.cache_args {
        if !scope.arrays.contains(&r.name) {
            diags.push(Diagnostic::error(
                0,
                format!("cache reference `{}` is not a declared array", r.name),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cparse::parse_c;

    fn diag_count(src: &str, spec: SpecVersion) -> usize {
        let p = parse_c(src).unwrap();
        analyze(&p, spec).len()
    }

    #[test]
    fn clean_program_passes() {
        let src = "int main(void) {\n    int error = 0;\n    int a[10];\n    #pragma acc parallel copy(a[0:10])\n    {\n        #pragma acc loop\n        for (i = 0; i < 10; i++)\n        {\n            a[i] = i;\n        }\n    }\n    return error == 0;\n}\n";
        assert_eq!(diag_count(src, SpecVersion::V1_0), 0);
    }

    #[test]
    fn undeclared_variable_flagged() {
        let src = "int main(void) {\n    x = 3;\n    return 1;\n}\n";
        assert!(diag_count(src, SpecVersion::V1_0) > 0);
    }

    #[test]
    fn illegal_clause_flagged() {
        // num_gangs is not allowed on kernels.
        let src = "int main(void) {\n    #pragma acc kernels num_gangs(8)\n    {\n    }\n    return 1;\n}\n";
        let p = parse_c(src).unwrap();
        let diags = analyze(&p, SpecVersion::V1_0);
        assert!(diags.iter().any(|d| d.message.contains("not allowed")));
    }

    #[test]
    fn v2_directive_rejected_in_v1() {
        let src = "int main(void) {\n    int a[4];\n    #pragma acc enter data copyin(a[0:4])\n    return 1;\n}\n";
        let p = parse_c(src).unwrap();
        assert!(!conforms(&p, SpecVersion::V1_0));
        assert!(conforms(&p, SpecVersion::V2_0));
    }

    #[test]
    fn reduction_on_array_rejected() {
        let src = "int main(void) {\n    int a[4];\n    #pragma acc parallel reduction(+:a)\n    {\n    }\n    return 1;\n}\n";
        let p = parse_c(src).unwrap();
        assert!(!conforms(&p, SpecVersion::V1_0));
    }

    #[test]
    fn collapse_must_be_constant() {
        let src = "int main(void) {\n    int n = 2;\n    #pragma acc parallel\n    {\n        #pragma acc loop collapse(n)\n        for (i = 0; i < 4; i++)\n        {\n            n = n;\n        }\n    }\n    return 1;\n}\n";
        let p = parse_c(src).unwrap();
        assert!(!conforms(&p, SpecVersion::V1_0));
    }

    #[test]
    fn device_type_constants_predeclared() {
        let src = "int main(void) {\n    int t = 0;\n    acc_set_device_type(acc_device_not_host);\n    t = acc_get_device_type();\n    return t != acc_device_host;\n}\n";
        assert_eq!(diag_count(src, SpecVersion::V1_0), 0);
    }

    #[test]
    fn unknown_function_flagged() {
        let src = "int main(void) {\n    frobnicate(3);\n    return 1;\n}\n";
        assert!(diag_count(src, SpecVersion::V1_0) > 0);
    }

    #[test]
    fn helper_functions_resolve() {
        let src = "void helper(float* a, int n);\n\nvoid helper(float* a, int n) {\n    a[0] = n;\n}\n\nint main(void) {\n    float b[4];\n    helper(b, 4);\n    return 1;\n}\n";
        assert_eq!(diag_count(src, SpecVersion::V1_0), 0);
    }

    #[test]
    fn data_clause_undeclared_var_flagged() {
        let src = "int main(void) {\n    #pragma acc data copy(ghost[0:4])\n    {\n    }\n    return 1;\n}\n";
        assert!(diag_count(src, SpecVersion::V1_0) > 0);
    }
}
