//! Line-oriented parser for the Fortran dialect emitted by
//! `acc_ast::fgen`.
//!
//! Normalizations performed while lowering to the shared AST:
//!
//! * `do v = a, b[, s]` becomes a half-open [`ForLoop`] with `to = b + 1`
//!   (peephole-simplified so `n - 1` bounds recover `n`).
//! * `!$acc parallel` … `!$acc end parallel` block sentinels become
//!   [`Stmt::AccBlock`] regions.
//! * The `fname = expr` / `return` pair in a function becomes
//!   [`Stmt::Return`].
//! * Declarations stay hoisted (the shared AST permits interleaving, but
//!   re-emission hoists again, so Fortran emit∘parse is a fixpoint).

use crate::cursor::{parse_expr, Cursor};
use crate::diag::ParseError;
use crate::directive::parse_directive;
use crate::lex::{lex_fortran, Tok};
use acc_ast::{
    fgen, AccDirective, Expr, ForLoop, Function, LValue, Param, ParamKind, Program, ScalarType,
    Stmt, Type,
};
use acc_spec::{DirectiveKind, Language};

/// Parse Fortran source into a [`Program`].
pub fn parse_fortran(source: &str) -> Result<Program, ParseError> {
    let name = program_name(source);
    let toks = lex_fortran(source)?;
    let mut p = Parser {
        c: Cursor::new(toks),
    };
    let mut functions = Vec::new();
    p.c.skip_newlines();
    while !p.c.at_eof() {
        functions.push(p.parse_function()?);
        p.c.skip_newlines();
    }
    Ok(Program {
        name,
        language: Language::Fortran,
        functions,
    })
}

fn program_name(source: &str) -> String {
    for line in source.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("! test program:") {
            return rest.trim().to_string();
        }
    }
    "unnamed".to_string()
}

struct Parser {
    c: Cursor,
}

impl Parser {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.c.line(), msg.into())
    }

    fn end_of_stmt(&mut self) -> Result<(), ParseError> {
        match self.c.next() {
            Tok::Newline | Tok::Eof => Ok(()),
            other => Err(self.err(format!("expected end of statement, found {other:?}"))),
        }
    }

    fn parse_function(&mut self) -> Result<Function, ParseError> {
        // Header: `<type> function name(params)` or `subroutine name(params)`.
        let first = self.c.expect_any_ident()?;
        let (ret, name) = match first.as_str() {
            "subroutine" => (None, self.c.expect_any_ident()?),
            "integer" => {
                self.c.expect_ident("function")?;
                (Some(ScalarType::Int), self.c.expect_any_ident()?)
            }
            "real" => {
                self.c.expect_ident("function")?;
                (Some(ScalarType::Float), self.c.expect_any_ident()?)
            }
            "double" => {
                self.c.expect_ident("precision")?;
                self.c.expect_ident("function")?;
                (Some(ScalarType::Double), self.c.expect_any_ident()?)
            }
            other => return Err(self.err(format!("expected function header, found {other:?}"))),
        };
        self.c.expect_punct("(")?;
        let mut param_names = Vec::new();
        if !self.c.eat_punct(")") {
            loop {
                param_names.push(self.c.expect_any_ident()?);
                if self.c.eat_punct(",") {
                    continue;
                }
                self.c.expect_punct(")")?;
                break;
            }
        }
        self.end_of_stmt()?;
        self.c.skip_newlines();

        // Declaration section (also classifies parameters).
        let mut params: Vec<Param> = Vec::new();
        let mut decls: Vec<Stmt> = Vec::new();
        loop {
            self.c.skip_newlines();
            match self.c.peek().clone() {
                Tok::Ident(w) if w == "implicit" => {
                    self.c.next();
                    self.c.expect_ident("none")?;
                    self.end_of_stmt()?;
                }
                Tok::Ident(w)
                    if matches!(w.as_str(), "integer" | "real" | "double")
                        // `double precision ::` is a decl; guard against the
                        // (never-emitted) ambiguity with expressions.
                        =>
                {
                    self.parse_decl_line(&param_names, &mut params, &mut decls)?;
                }
                _ => break,
            }
        }
        // Order params as in the header.
        params.sort_by_key(|p| {
            param_names
                .iter()
                .position(|n| *n == p.name)
                .unwrap_or(usize::MAX)
        });

        // Body.
        let mut body = decls;
        let fname = name.clone();
        self.parse_body_until(
            &mut body,
            &|t: &Tok| t.is_ident("end"),
            &fname,
            ret.is_some(),
        )?;
        // Footer: `end function name` / `end subroutine name`.
        self.c.expect_ident("end")?;
        match ret {
            Some(_) => self.c.expect_ident("function")?,
            None => self.c.expect_ident("subroutine")?,
        }
        self.c.expect_ident(&name)?;
        self.end_of_stmt()?;
        Ok(Function {
            name,
            params,
            ret,
            body,
        })
    }

    fn parse_decl_line(
        &mut self,
        param_names: &[String],
        params: &mut Vec<Param>,
        decls: &mut Vec<Stmt>,
    ) -> Result<(), ParseError> {
        let ty_word = self.c.expect_any_ident()?;
        let (scalar, is_ptr) = match ty_word.as_str() {
            "integer" => {
                if self.c.eat_punct("(") {
                    // `integer(8)` — device-pointer surrogate.
                    match self.c.next() {
                        Tok::Int(8) => {}
                        other => {
                            return Err(self.err(format!("unsupported integer kind {other:?}")))
                        }
                    }
                    self.c.expect_punct(")")?;
                    (ScalarType::Int, true)
                } else {
                    (ScalarType::Int, false)
                }
            }
            "real" => (ScalarType::Float, false),
            "double" => {
                self.c.expect_ident("precision")?;
                (ScalarType::Double, false)
            }
            other => return Err(self.err(format!("expected type, found {other:?}"))),
        };
        self.c.expect_punct(":")?;
        self.c.expect_punct(":")?;
        loop {
            let name = self.c.expect_any_ident()?;
            if self.c.eat_punct("(") {
                // Array bounds `0:hi` per dimension, or `0:*` for params.
                let mut dims = Vec::new();
                let mut assumed = false;
                loop {
                    match self.c.next() {
                        Tok::Int(0) => {}
                        other => {
                            return Err(self.err(format!(
                                "array declarations are 0-based in the dialect, found {other:?}"
                            )))
                        }
                    }
                    self.c.expect_punct(":")?;
                    match self.c.next() {
                        Tok::Int(hi) if hi >= 0 => dims.push(hi as usize + 1),
                        Tok::Punct("*") => assumed = true,
                        other => return Err(self.err(format!("bad array bound {other:?}"))),
                    }
                    if self.c.eat_punct(",") {
                        continue;
                    }
                    self.c.expect_punct(")")?;
                    break;
                }
                if param_names.contains(&name) {
                    params.push(Param {
                        name,
                        kind: ParamKind::ArrayPtr(scalar),
                    });
                } else if assumed {
                    return Err(self.err("assumed-size array must be a parameter"));
                } else {
                    decls.push(Stmt::DeclArray {
                        name,
                        elem: scalar,
                        dims,
                    });
                }
            } else if param_names.contains(&name) {
                params.push(Param {
                    name,
                    kind: ParamKind::Scalar(scalar),
                });
            } else {
                let ty = if is_ptr {
                    Type::Ptr(scalar)
                } else {
                    Type::Scalar(scalar)
                };
                decls.push(Stmt::DeclScalar {
                    name,
                    ty,
                    init: None,
                });
            }
            if !self.c.eat_punct(",") {
                break;
            }
        }
        self.end_of_stmt()?;
        Ok(())
    }

    /// Parse statements into `out` until `stop` matches the current token
    /// (which is left unconsumed).
    fn parse_body_until(
        &mut self,
        out: &mut Vec<Stmt>,
        stop: &dyn Fn(&Tok) -> bool,
        fname: &str,
        has_ret: bool,
    ) -> Result<(), ParseError> {
        loop {
            self.c.skip_newlines();
            if self.c.at_eof() || stop(self.c.peek()) {
                return Ok(());
            }
            let stmt = self.parse_stmt(fname, has_ret)?;
            // Merge `fname = e` + `return` into Return(e).
            if has_ret {
                if let Stmt::Return(_) = &stmt {
                    if let Some(Stmt::Assign {
                        target: LValue::Var(v),
                        op: None,
                        value,
                    }) = out.last().cloned()
                    {
                        if v == fname {
                            out.pop();
                            out.push(Stmt::Return(value));
                            continue;
                        }
                    }
                }
            }
            out.push(stmt);
        }
    }

    fn parse_stmt(&mut self, fname: &str, has_ret: bool) -> Result<Stmt, ParseError> {
        if let Tok::Directive(payload) = self.c.peek().clone() {
            let line = self.c.line();
            self.c.next();
            self.end_of_stmt()?;
            if payload.trim_start().starts_with("end") {
                return Err(self.err(format!("unmatched `!$acc {payload}`")));
            }
            let dir = parse_directive(&payload, Language::Fortran, line)?;
            return self.parse_directive_stmt(dir, fname, has_ret);
        }
        match self.c.peek().clone() {
            Tok::Ident(w) => match w.as_str() {
                "do" => self.parse_do(fname, has_ret).map(Stmt::For),
                "if" => self.parse_if(fname, has_ret),
                "call" => {
                    self.c.next();
                    let name = self.c.expect_any_ident()?;
                    self.c.expect_punct("(")?;
                    let mut args = Vec::new();
                    if !self.c.eat_punct(")") {
                        loop {
                            args.push(parse_expr(&mut self.c, Language::Fortran)?);
                            if self.c.eat_punct(",") {
                                continue;
                            }
                            self.c.expect_punct(")")?;
                            break;
                        }
                    }
                    self.end_of_stmt()?;
                    Ok(Stmt::Call { name, args })
                }
                "return" => {
                    self.c.next();
                    self.end_of_stmt()?;
                    // Placeholder value; merged with the preceding result
                    // assignment by `parse_body_until`.
                    Ok(Stmt::Return(Expr::int(0)))
                }
                _ => self.parse_assign(),
            },
            other => Err(self.err(format!("expected statement, found {other:?}"))),
        }
    }

    fn parse_directive_stmt(
        &mut self,
        dir: AccDirective,
        fname: &str,
        has_ret: bool,
    ) -> Result<Stmt, ParseError> {
        match dir.kind {
            DirectiveKind::Parallel
            | DirectiveKind::Kernels
            | DirectiveKind::Data
            | DirectiveKind::HostData => {
                let mut body = Vec::new();
                let end_payload = format!("end {}", dir.kind.name());
                let stop = move |t: &Tok| matches!(t, Tok::Directive(p) if p.trim() == end_payload);
                self.parse_body_until(&mut body, &stop, fname, has_ret)?;
                match self.c.next() {
                    Tok::Directive(_) => {}
                    other => {
                        return Err(self.err(format!(
                            "missing `!$acc end {}`, found {other:?}",
                            dir.kind.name()
                        )))
                    }
                }
                self.end_of_stmt()?;
                Ok(Stmt::AccBlock { dir, body })
            }
            DirectiveKind::Loop | DirectiveKind::ParallelLoop | DirectiveKind::KernelsLoop => {
                self.c.skip_newlines();
                if !self.c.peek().is_ident("do") {
                    return Err(self.err("loop directive must be followed by a do loop"));
                }
                let l = self.parse_do(fname, has_ret)?;
                Ok(Stmt::AccLoop { dir, l })
            }
            _ => Ok(Stmt::AccStandalone { dir }),
        }
    }

    fn parse_do(&mut self, fname: &str, has_ret: bool) -> Result<ForLoop, ParseError> {
        self.c.expect_ident("do")?;
        let var = self.c.expect_any_ident()?;
        self.c.expect_punct("=")?;
        let from = parse_expr(&mut self.c, Language::Fortran)?;
        self.c.expect_punct(",")?;
        let hi = parse_expr(&mut self.c, Language::Fortran)?;
        let step = if self.c.eat_punct(",") {
            parse_expr(&mut self.c, Language::Fortran)?
        } else {
            Expr::int(1)
        };
        self.end_of_stmt()?;
        let mut body = Vec::new();
        let stop = |t: &Tok| t.is_ident("end");
        self.parse_body_until(&mut body, &stop, fname, has_ret)?;
        self.c.expect_ident("end")?;
        self.c.expect_ident("do")?;
        self.end_of_stmt()?;
        // Inclusive upper bound -> exclusive.
        Ok(ForLoop {
            var,
            from,
            to: fgen::add_one(&hi),
            step,
            body,
        })
    }

    fn parse_if(&mut self, fname: &str, has_ret: bool) -> Result<Stmt, ParseError> {
        self.c.expect_ident("if")?;
        self.c.expect_punct("(")?;
        let cond = parse_expr(&mut self.c, Language::Fortran)?;
        self.c.expect_punct(")")?;
        self.c.expect_ident("then")?;
        self.end_of_stmt()?;
        let mut then_body = Vec::new();
        let stop = |t: &Tok| t.is_ident("else") || t.is_ident("end");
        self.parse_body_until(&mut then_body, &stop, fname, has_ret)?;
        let mut else_body = Vec::new();
        if self.c.eat_ident("else") {
            self.end_of_stmt()?;
            self.parse_body_until(&mut else_body, &|t: &Tok| t.is_ident("end"), fname, has_ret)?;
        }
        self.c.expect_ident("end")?;
        self.c.expect_ident("if")?;
        self.end_of_stmt()?;
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
        })
    }

    fn parse_assign(&mut self) -> Result<Stmt, ParseError> {
        let name = self.c.expect_any_ident()?;
        let target = if self.c.eat_punct("(") {
            let mut indices = Vec::new();
            loop {
                indices.push(parse_expr(&mut self.c, Language::Fortran)?);
                if self.c.eat_punct(",") {
                    continue;
                }
                self.c.expect_punct(")")?;
                break;
            }
            LValue::Index {
                base: name,
                indices,
            }
        } else {
            LValue::Var(name)
        };
        self.c.expect_punct("=")?;
        let value = parse_expr(&mut self.c, Language::Fortran)?;
        self.end_of_stmt()?;
        Ok(Stmt::Assign {
            target,
            op: None,
            value,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_ast::builder as b;
    use acc_ast::fgen::emit_fortran;
    use acc_ast::AccClause;

    /// Emit a program as Fortran, parse it back, and check the fixpoint
    /// property: emitting the reparsed program reproduces the text.
    fn check_fixpoint(p: &Program) -> Program {
        let src = emit_fortran(p);
        let q = parse_fortran(&src).unwrap_or_else(|e| panic!("{e}\n---\n{src}"));
        let src2 = emit_fortran(&q);
        assert_eq!(src, src2, "emit∘parse must be a fixpoint");
        q
    }

    #[test]
    fn minimal_function() {
        let p = Program::simple("t", Language::Fortran, vec![Stmt::Return(Expr::int(1))]);
        let q = check_fixpoint(&p);
        assert_eq!(q.entry().unwrap().body, vec![Stmt::Return(Expr::int(1))]);
    }

    #[test]
    fn do_loop_bounds_recover() {
        let p = Program::simple(
            "t",
            Language::Fortran,
            vec![
                b::decl_int("s", 0),
                b::for_upto("i", Expr::var("n"), vec![b::add("s", Expr::var("i"))]),
                Stmt::Return(Expr::var("s")),
            ],
        );
        let q = check_fixpoint(&p);
        // The do-loop upper bound `n - 1` must recover `to = n`.
        let for_stmt = q
            .entry()
            .unwrap()
            .body
            .iter()
            .find_map(|s| match s {
                Stmt::For(l) => Some(l.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(for_stmt.to, Expr::var("n"));
    }

    #[test]
    fn region_with_end_sentinel() {
        let p = Program::simple(
            "t",
            Language::Fortran,
            vec![
                b::decl_array("a", ScalarType::Int, 16),
                b::parallel_region(
                    vec![
                        AccClause::NumGangs(Expr::int(4)),
                        b::copy_sec("a", Expr::int(16)),
                    ],
                    vec![b::acc_loop(
                        vec![],
                        "i",
                        Expr::int(16),
                        vec![b::set1("a", Expr::var("i"), Expr::var("i"))],
                    )],
                ),
                Stmt::Return(Expr::int(1)),
            ],
        );
        let q = check_fixpoint(&p);
        assert_eq!(q.directives().len(), 2);
    }

    #[test]
    fn nested_regions() {
        let p = Program::simple(
            "t",
            Language::Fortran,
            vec![
                b::decl_array("a", ScalarType::Float, 8),
                b::data_region(
                    vec![b::copy_sec("a", Expr::int(8))],
                    vec![b::parallel_region(
                        vec![],
                        vec![b::acc_loop(
                            vec![],
                            "i",
                            Expr::int(8),
                            vec![b::set1(
                                "a",
                                Expr::var("i"),
                                Expr::Real(1.0, ScalarType::Float),
                            )],
                        )],
                    )],
                ),
                Stmt::Return(Expr::int(1)),
            ],
        );
        let q = check_fixpoint(&p);
        assert_eq!(q.directives().len(), 3);
    }

    #[test]
    fn if_else_and_logical_ops() {
        let p = Program::simple(
            "t",
            Language::Fortran,
            vec![
                b::decl_int("e", 0),
                Stmt::If {
                    cond: Expr::bin(
                        acc_ast::BinOp::And,
                        Expr::eq(Expr::var("x"), Expr::int(1)),
                        Expr::lt(Expr::var("y"), Expr::int(5)),
                    ),
                    then_body: vec![b::set("e", Expr::int(1))],
                    else_body: vec![b::set("e", Expr::int(2))],
                },
                Stmt::Return(Expr::var("e")),
            ],
        );
        check_fixpoint(&p);
    }

    #[test]
    fn subroutine_with_array_param() {
        let mut p = Program::simple("t", Language::Fortran, vec![Stmt::Return(Expr::int(1))]);
        p.functions.insert(
            0,
            Function {
                name: "scale2".into(),
                params: vec![
                    Param {
                        name: "a".into(),
                        kind: ParamKind::ArrayPtr(ScalarType::Float),
                    },
                    Param {
                        name: "n".into(),
                        kind: ParamKind::Scalar(ScalarType::Int),
                    },
                ],
                ret: None,
                body: vec![b::for_upto(
                    "i",
                    Expr::var("n"),
                    vec![Stmt::assign_op(
                        LValue::idx("a", Expr::var("i")),
                        acc_ast::BinOp::Mul,
                        Expr::int(2),
                    )],
                )],
            },
        );
        let q = check_fixpoint(&p);
        let helper = q.function("scale2").unwrap();
        assert_eq!(helper.params.len(), 2);
        assert_eq!(
            helper.params[0].kind,
            ParamKind::ArrayPtr(ScalarType::Float)
        );
        assert_eq!(helper.params[1].kind, ParamKind::Scalar(ScalarType::Int));
    }

    #[test]
    fn update_and_wait_standalone() {
        let p = Program::simple(
            "t",
            Language::Fortran,
            vec![
                b::decl_array("a", ScalarType::Int, 4),
                b::update(vec![b::data_whole(
                    acc_spec::ClauseKind::HostClause,
                    &["a"],
                )]),
                b::wait(Some(Expr::int(2))),
                Stmt::Return(Expr::int(1)),
            ],
        );
        let q = check_fixpoint(&p);
        let kinds: Vec<_> = q.directives().iter().map(|d| d.kind).collect();
        assert_eq!(kinds, vec![DirectiveKind::Update, DirectiveKind::Wait]);
    }

    #[test]
    fn reduction_clause_fortran() {
        let p = Program::simple(
            "t",
            Language::Fortran,
            vec![
                b::decl_int("s", 0),
                b::parallel_region(
                    vec![AccClause::Reduction(
                        acc_spec::ReductionOp::Add,
                        vec!["s".into()],
                    )],
                    vec![b::add("s", Expr::int(1))],
                ),
                Stmt::Return(Expr::var("s")),
            ],
        );
        let q = check_fixpoint(&p);
        match &q.directives()[0].clauses[0] {
            AccClause::Reduction(op, vars) => {
                assert_eq!(*op, acc_spec::ReductionOp::Add);
                assert_eq!(vars, &["s".to_string()]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn missing_end_sentinel_is_error() {
        let src = "! test program: t\ninteger function main()\n    implicit none\n!$acc parallel\n    main = 1\n    return\nend function main\n";
        assert!(parse_fortran(src).is_err());
    }

    #[test]
    fn program_name_recovered() {
        let src = "! test program: f_test\ninteger function main()\n    implicit none\n    main = 1\n    return\nend function main\n";
        let p = parse_fortran(src).unwrap();
        assert_eq!(p.name, "f_test");
    }
}
