//! Recursive-descent parser for the C subset emitted by `acc_ast::cgen`.

use crate::cursor::{parse_expr, Cursor};
use crate::diag::ParseError;
use crate::directive::parse_directive;
use crate::lex::{lex_c, Tok};
use acc_ast::{
    AccDirective, BinOp, Expr, ForLoop, Function, LValue, Param, ParamKind, Program, ScalarType,
    Stmt, Type,
};
use acc_spec::{DirectiveKind, Language};

/// Parse a C translation unit into a [`Program`].
pub fn parse_c(source: &str) -> Result<Program, ParseError> {
    let toks = lex_c(source)?;
    let mut p = Parser {
        c: Cursor::new(toks),
    };
    p.parse_unit(program_name(source))
}

/// Recover the program name from the leading `/* test program: … */` comment
/// the generator emits (comments are stripped by the lexer, so peek at the
/// raw text).
fn program_name(source: &str) -> String {
    for line in source.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("/* test program:") {
            if let Some(name) = rest.strip_suffix("*/") {
                return name.trim().to_string();
            }
        }
    }
    "unnamed".to_string()
}

struct Parser {
    c: Cursor,
}

impl Parser {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.c.line(), msg.into())
    }

    fn parse_unit(&mut self, name: String) -> Result<Program, ParseError> {
        let mut functions = Vec::new();
        while !self.c.at_eof() {
            if let Some(f) = self.parse_toplevel()? {
                functions.push(f);
            }
        }
        Ok(Program {
            name,
            language: Language::C,
            functions,
        })
    }

    /// A top-level item: a prototype (skipped) or a function definition.
    fn parse_toplevel(&mut self) -> Result<Option<Function>, ParseError> {
        let ret = self.parse_ret_type()?;
        let name = self.c.expect_any_ident()?;
        self.c.expect_punct("(")?;
        let params = self.parse_params()?;
        self.c.expect_punct(")")?;
        if self.c.eat_punct(";") {
            return Ok(None); // prototype
        }
        self.c.expect_punct("{")?;
        let body = self.parse_stmts_until_close()?;
        Ok(Some(Function {
            name,
            params,
            ret,
            body,
        }))
    }

    fn parse_ret_type(&mut self) -> Result<Option<ScalarType>, ParseError> {
        let name = self.c.expect_any_ident()?;
        match name.as_str() {
            "void" => Ok(None),
            "int" => Ok(Some(ScalarType::Int)),
            "float" => Ok(Some(ScalarType::Float)),
            "double" => Ok(Some(ScalarType::Double)),
            other => Err(self.err(format!("expected return type, found {other:?}"))),
        }
    }

    fn parse_params(&mut self) -> Result<Vec<Param>, ParseError> {
        let mut params = Vec::new();
        if self.c.peek().is_punct(")") {
            return Ok(params);
        }
        if self.c.eat_ident("void") {
            return Ok(params);
        }
        loop {
            let ty = self.parse_scalar_keyword()?;
            let is_ptr = self.c.eat_punct("*");
            let name = self.c.expect_any_ident()?;
            params.push(Param {
                name,
                kind: if is_ptr {
                    ParamKind::ArrayPtr(ty)
                } else {
                    ParamKind::Scalar(ty)
                },
            });
            if !self.c.eat_punct(",") {
                break;
            }
        }
        Ok(params)
    }

    fn parse_scalar_keyword(&mut self) -> Result<ScalarType, ParseError> {
        let name = self.c.expect_any_ident()?;
        scalar_of(&name).ok_or_else(|| self.err(format!("expected type, found {name:?}")))
    }

    fn parse_stmts_until_close(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut body = Vec::new();
        while !self.c.eat_punct("}") {
            if self.c.at_eof() {
                return Err(self.err("unexpected end of file in block"));
            }
            body.push(self.parse_stmt()?);
        }
        Ok(body)
    }

    /// A block `{ … }` or a single statement.
    fn parse_block_or_stmt(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if self.c.eat_punct("{") {
            self.parse_stmts_until_close()
        } else {
            Ok(vec![self.parse_stmt()?])
        }
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        // Every statement-level recursion (nested blocks, if/for bodies,
        // directive regions) passes through here, so one depth guard turns
        // pathological nesting into a ParseError instead of a stack
        // overflow — which would abort the process and bypass the
        // executor's catch_unwind isolation.
        self.c.descend()?;
        let r = self.parse_stmt_inner();
        self.c.ascend();
        r
    }

    fn parse_stmt_inner(&mut self) -> Result<Stmt, ParseError> {
        // Directive-introduced statements.
        if let Tok::Directive(payload) = self.c.peek().clone() {
            let line = self.c.line();
            self.c.next();
            let dir = parse_directive(&payload, Language::C, line)?;
            return self.parse_directive_stmt(dir);
        }
        match self.c.peek().clone() {
            Tok::Punct("{") => {
                // Bare block: flatten into an If(true)? Keep structure simple:
                // the generator never emits bare blocks outside directives.
                self.c.next();
                let body = self.parse_stmts_until_close()?;
                // Represent as if(1) { body } to stay within the AST.
                Ok(Stmt::If {
                    cond: Expr::int(1),
                    then_body: body,
                    else_body: vec![],
                })
            }
            Tok::Ident(word) => match word.as_str() {
                "int" | "float" | "double" => self.parse_decl(),
                "for" => self.parse_for().map(Stmt::For),
                "if" => self.parse_if(),
                "return" => {
                    self.c.next();
                    let e = parse_expr(&mut self.c, Language::C)?;
                    self.c.expect_punct(";")?;
                    Ok(Stmt::Return(e))
                }
                _ => self.parse_assign_or_call(),
            },
            other => Err(self.err(format!("expected statement, found {other:?}"))),
        }
    }

    fn parse_directive_stmt(&mut self, dir: AccDirective) -> Result<Stmt, ParseError> {
        match dir.kind {
            DirectiveKind::Parallel
            | DirectiveKind::Kernels
            | DirectiveKind::Data
            | DirectiveKind::HostData => {
                let body = self.parse_block_or_stmt()?;
                Ok(Stmt::AccBlock { dir, body })
            }
            DirectiveKind::Loop | DirectiveKind::ParallelLoop | DirectiveKind::KernelsLoop => {
                // The annotated loop may itself carry another directive
                // (nested loop pragmas) — but the grammar requires a `for`.
                if !matches!(self.c.peek(), Tok::Ident(w) if w == "for") {
                    return Err(self.err("loop directive must be followed by a for loop"));
                }
                let l = self.parse_for()?;
                Ok(Stmt::AccLoop { dir, l })
            }
            _ => Ok(Stmt::AccStandalone { dir }),
        }
    }

    fn parse_decl(&mut self) -> Result<Stmt, ParseError> {
        let ty = self.parse_scalar_keyword()?;
        let is_ptr = self.c.eat_punct("*");
        let name = self.c.expect_any_ident()?;
        // Array declaration?
        if self.c.peek().is_punct("[") {
            let mut dims = Vec::new();
            while self.c.eat_punct("[") {
                match self.c.next() {
                    Tok::Int(v) if v > 0 => dims.push(v as usize),
                    other => {
                        return Err(self.err(format!(
                            "array dimension must be a positive integer literal, found {other:?}"
                        )))
                    }
                }
                self.c.expect_punct("]")?;
            }
            self.c.expect_punct(";")?;
            return Ok(Stmt::DeclArray {
                name,
                elem: ty,
                dims,
            });
        }
        let declared = if is_ptr {
            Type::Ptr(ty)
        } else {
            Type::Scalar(ty)
        };
        let init = if self.c.eat_punct("=") {
            Some(parse_expr(&mut self.c, Language::C)?)
        } else {
            None
        };
        self.c.expect_punct(";")?;
        Ok(Stmt::DeclScalar {
            name,
            ty: declared,
            init,
        })
    }

    fn parse_for(&mut self) -> Result<ForLoop, ParseError> {
        self.c.expect_ident("for")?;
        self.c.expect_punct("(")?;
        let var = self.c.expect_any_ident()?;
        self.c.expect_punct("=")?;
        let from = parse_expr(&mut self.c, Language::C)?;
        self.c.expect_punct(";")?;
        let cond_var = self.c.expect_any_ident()?;
        if cond_var != var {
            return Err(self.err(format!(
                "for-loop condition must test the induction variable {var:?}"
            )));
        }
        self.c.expect_punct("<")?;
        let to = parse_expr(&mut self.c, Language::C)?;
        self.c.expect_punct(";")?;
        let step_var = self.c.expect_any_ident()?;
        if step_var != var {
            return Err(self.err("for-loop increment must update the induction variable"));
        }
        let step = if self.c.eat_punct("++") {
            Expr::int(1)
        } else if self.c.eat_punct("+=") {
            parse_expr(&mut self.c, Language::C)?
        } else {
            return Err(self.err("for-loop increment must be ++ or +="));
        };
        self.c.expect_punct(")")?;
        let body = self.parse_block_or_stmt()?;
        Ok(ForLoop {
            var,
            from,
            to,
            step,
            body,
        })
    }

    fn parse_if(&mut self) -> Result<Stmt, ParseError> {
        self.c.expect_ident("if")?;
        self.c.expect_punct("(")?;
        let cond = parse_expr(&mut self.c, Language::C)?;
        self.c.expect_punct(")")?;
        let then_body = self.parse_block_or_stmt()?;
        let else_body = if self.c.eat_ident("else") {
            self.parse_block_or_stmt()?
        } else {
            vec![]
        };
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
        })
    }

    fn parse_assign_or_call(&mut self) -> Result<Stmt, ParseError> {
        let name = self.c.expect_any_ident()?;
        // Call statement.
        if self.c.eat_punct("(") {
            let mut args = Vec::new();
            if !self.c.eat_punct(")") {
                loop {
                    args.push(parse_expr(&mut self.c, Language::C)?);
                    if self.c.eat_punct(",") {
                        continue;
                    }
                    self.c.expect_punct(")")?;
                    break;
                }
            }
            self.c.expect_punct(";")?;
            return Ok(Stmt::Call { name, args });
        }
        // LValue: optional indices.
        let target = if self.c.peek().is_punct("[") {
            let mut indices = Vec::new();
            while self.c.eat_punct("[") {
                indices.push(parse_expr(&mut self.c, Language::C)?);
                self.c.expect_punct("]")?;
            }
            LValue::Index {
                base: name,
                indices,
            }
        } else {
            LValue::Var(name)
        };
        // `x++;` sugar for `x += 1;`.
        if self.c.eat_punct("++") {
            self.c.expect_punct(";")?;
            return Ok(Stmt::Assign {
                target,
                op: Some(BinOp::Add),
                value: Expr::int(1),
            });
        }
        let op = match self.c.next() {
            Tok::Punct("=") => None,
            Tok::Punct("+=") => Some(BinOp::Add),
            Tok::Punct("-=") => Some(BinOp::Sub),
            Tok::Punct("*=") => Some(BinOp::Mul),
            Tok::Punct("/=") => Some(BinOp::Div),
            Tok::Punct("%=") => Some(BinOp::Rem),
            Tok::Punct("&=") => Some(BinOp::BitAnd),
            Tok::Punct("|=") => Some(BinOp::BitOr),
            Tok::Punct("^=") => Some(BinOp::BitXor),
            other => return Err(self.err(format!("expected assignment operator, found {other:?}"))),
        };
        let value = parse_expr(&mut self.c, Language::C)?;
        self.c.expect_punct(";")?;
        Ok(Stmt::Assign { target, op, value })
    }
}

fn scalar_of(name: &str) -> Option<ScalarType> {
    match name {
        "int" => Some(ScalarType::Int),
        "float" => Some(ScalarType::Float),
        "double" => Some(ScalarType::Double),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_ast::cgen::emit_c;

    fn round_trip(src: &str) -> String {
        let p = parse_c(src).unwrap();
        emit_c(&p)
    }

    #[test]
    fn parse_minimal_main() {
        let p = parse_c("int main(void) {\n    return 1;\n}\n").unwrap();
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.entry().unwrap().body, vec![Stmt::Return(Expr::int(1))]);
    }

    #[test]
    fn fig2_source_round_trips_exactly() {
        let prog = acc_ast::Program::simple(
            "fig2",
            Language::C,
            vec![
                acc_ast::builder::decl_int("error", 0),
                acc_ast::builder::decl_array("A", ScalarType::Int, 100),
                acc_ast::builder::parallel_region(
                    vec![
                        acc_ast::AccClause::NumGangs(Expr::int(10)),
                        acc_ast::builder::copy_sec("A", Expr::int(100)),
                    ],
                    vec![acc_ast::builder::acc_loop(
                        vec![],
                        "i",
                        Expr::int(100),
                        vec![acc_ast::builder::add1("A", Expr::var("i"), Expr::int(1))],
                    )],
                ),
                acc_ast::builder::return_error_check(),
            ],
        );
        let src = emit_c(&prog);
        let reparsed = parse_c(&src).unwrap();
        assert_eq!(
            emit_c(&reparsed),
            src,
            "emit∘parse must be identity on emitted text"
        );
        assert_eq!(reparsed.directives().len(), 2);
    }

    #[test]
    fn prototypes_are_skipped_definitions_kept() {
        let src = "void helper(float* a, int n);\n\nvoid helper(float* a, int n) {\n}\n\nint main(void) {\n    helper(b, 4);\n    return 1;\n}\n";
        let p = parse_c(src).unwrap();
        assert_eq!(p.functions.len(), 2);
        assert_eq!(p.functions[0].name, "helper");
        assert_eq!(
            p.functions[0].params[0].kind,
            ParamKind::ArrayPtr(ScalarType::Float)
        );
        assert_eq!(
            p.functions[0].params[1].kind,
            ParamKind::Scalar(ScalarType::Int)
        );
    }

    #[test]
    fn declarations_forms() {
        let src = "int main(void) {\n    int x;\n    int y = 3;\n    float* p = 0;\n    double m[10][20];\n    return 1;\n}\n";
        let p = parse_c(src).unwrap();
        let b = &p.entry().unwrap().body;
        assert_eq!(
            b[0],
            Stmt::DeclScalar {
                name: "x".into(),
                ty: Type::INT,
                init: None
            }
        );
        assert_eq!(
            b[1],
            Stmt::DeclScalar {
                name: "y".into(),
                ty: Type::INT,
                init: Some(Expr::int(3))
            }
        );
        assert_eq!(
            b[2],
            Stmt::DeclScalar {
                name: "p".into(),
                ty: Type::Ptr(ScalarType::Float),
                init: Some(Expr::int(0))
            }
        );
        assert_eq!(
            b[3],
            Stmt::DeclArray {
                name: "m".into(),
                elem: ScalarType::Double,
                dims: vec![10, 20]
            }
        );
    }

    #[test]
    fn for_loop_with_stride() {
        let src = "int main(void) {\n    for (i = 2; i < n; i += 2)\n    {\n        s += i;\n    }\n    return 1;\n}\n";
        let p = parse_c(src).unwrap();
        match &p.entry().unwrap().body[0] {
            Stmt::For(l) => {
                assert_eq!(l.from, Expr::int(2));
                assert_eq!(l.step, Expr::int(2));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn increment_statement_sugar() {
        let src = "int main(void) {\n    gang_num++;\n    return 1;\n}\n";
        let p = parse_c(src).unwrap();
        assert_eq!(
            p.entry().unwrap().body[0],
            Stmt::assign_op(LValue::var("gang_num"), BinOp::Add, Expr::int(1))
        );
    }

    #[test]
    fn standalone_directives() {
        let src = "int main(void) {\n    #pragma acc update host(a[0:10])\n    #pragma acc wait(3)\n    return 1;\n}\n";
        let p = parse_c(src).unwrap();
        let b = &p.entry().unwrap().body;
        assert!(matches!(&b[0], Stmt::AccStandalone { dir } if dir.kind == DirectiveKind::Update));
        assert!(matches!(&b[1], Stmt::AccStandalone { dir } if dir.kind == DirectiveKind::Wait));
    }

    #[test]
    fn combined_parallel_loop_attaches_to_for() {
        let src = "int main(void) {\n    #pragma acc parallel loop if(sum < N)\n    for (j = 0; j < N; j++)\n    {\n        C[j] += A[j] + B[j];\n    }\n    return 1;\n}\n";
        let p = parse_c(src).unwrap();
        match &p.entry().unwrap().body[0] {
            Stmt::AccLoop { dir, l } => {
                assert_eq!(dir.kind, DirectiveKind::ParallelLoop);
                assert_eq!(l.var, "j");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn loop_directive_requires_for() {
        let src = "int main(void) {\n    #pragma acc loop\n    x = 1;\n    return 1;\n}\n";
        assert!(parse_c(src).is_err());
    }

    #[test]
    fn nested_regions_round_trip() {
        let src = round_trip(
            "int main(void) {\n    #pragma acc data copy(a[0:10])\n    {\n        #pragma acc parallel\n        {\n            #pragma acc loop gang\n            for (i = 0; i < 10; i++)\n            {\n                a[i] = i;\n            }\n        }\n    }\n    return error == 0;\n}\n",
        );
        assert!(src.contains("#pragma acc data copy(a[0:10])"));
        assert!(src.contains("#pragma acc loop gang"));
    }

    #[test]
    fn call_statement_with_constants() {
        let src = "int main(void) {\n    acc_init(acc_device_default);\n    acc_set_device_type(acc_device_not_host);\n    return 1;\n}\n";
        let p = parse_c(src).unwrap();
        match &p.entry().unwrap().body[0] {
            Stmt::Call { name, args } => {
                assert_eq!(name, "acc_init");
                assert_eq!(args[0], Expr::var("acc_device_default"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn deeply_nested_pragma_operand_is_a_parse_error() {
        // A malformed template with a pathologically nested `#pragma acc`
        // operand used to drive the recursive-descent expression parser off
        // the stack; it must now fail with a ParseError the harness can
        // classify as a compile error.
        let deep = format!("{}8{}", "(".repeat(50_000), ")".repeat(50_000));
        let src = format!(
            "int main(void) {{\n    #pragma acc parallel num_gangs({deep})\n    {{\n    }}\n    return 1;\n}}\n"
        );
        let err = parse_c(&src).unwrap_err();
        assert!(err.to_string().contains("parser limit"), "{err}");
    }

    #[test]
    fn deeply_nested_blocks_are_a_parse_error() {
        let src = format!(
            "int main(void) {{\n{}{}    return 1;\n}}\n",
            "{\n".repeat(50_000),
            "}\n".repeat(50_000)
        );
        let err = parse_c(&src).unwrap_err();
        assert!(err.to_string().contains("parser limit"), "{err}");
    }

    #[test]
    fn program_name_recovered_from_comment() {
        let p =
            parse_c("/* test program: my_test */\nint main(void) {\n    return 1;\n}\n").unwrap();
        assert_eq!(p.name, "my_test");
    }
}
