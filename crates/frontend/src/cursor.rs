//! Token cursor and the shared Pratt expression parser.
//!
//! Both front-ends and the directive grammar parse expressions through
//! [`parse_expr`]; the only language-dependent choice is whether
//! `ident(args)` denotes a call or an array element (Fortran overloads
//! parentheses — the front-end resolves using the intrinsic/runtime name
//! space, which is exactly what a real Fortran front-end's implicit
//! interface rules boil down to for the generated subset).

use crate::diag::ParseError;
use crate::lex::{SpannedTok, Tok};
use acc_ast::{BinOp, Expr, ScalarType, UnOp};
use acc_spec::Language;

/// Names that denote calls (not array references) in Fortran expressions.
pub const FORTRAN_INTRINSICS: &[&str] = &[
    "mod", "iand", "ior", "ieor", "pow", "powf", "fabs", "fabsf", "sqrt", "sqrtf", "abs", "min",
    "max",
];

/// True when `name` is a callable (intrinsic or OpenACC runtime routine) in
/// Fortran expression position.
pub fn is_fortran_callable(name: &str) -> bool {
    FORTRAN_INTRINSICS.contains(&name) || name.starts_with("acc_")
}

/// Maximum parser recursion depth (expression nesting plus statement/block
/// nesting share one counter). Deeply nested input — e.g. a pathological
/// `((((…1…))))` pragma operand — must produce a [`ParseError`], not a stack
/// overflow that aborts the whole process and would defeat the executor's
/// panic isolation.
pub const MAX_PARSE_DEPTH: usize = 200;

/// A cursor over a token stream.
#[derive(Debug)]
pub struct Cursor {
    toks: Vec<SpannedTok>,
    pos: usize,
    depth: usize,
}

impl Cursor {
    /// Wrap a token stream.
    pub fn new(toks: Vec<SpannedTok>) -> Self {
        Cursor {
            toks,
            pos: 0,
            depth: 0,
        }
    }

    /// Enter one recursion level; errors past [`MAX_PARSE_DEPTH`].
    pub fn descend(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            Err(ParseError::new(
                self.line(),
                format!("nesting exceeds the {MAX_PARSE_DEPTH}-level parser limit"),
            ))
        } else {
            Ok(())
        }
    }

    /// Leave one recursion level (paired with a successful [`Cursor::descend`]).
    pub fn ascend(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }

    /// Current token (Eof-padded).
    pub fn peek(&self) -> &Tok {
        self.toks.get(self.pos).map(|t| &t.tok).unwrap_or(&Tok::Eof)
    }

    /// Token `n` ahead of the current one.
    pub fn peek_n(&self, n: usize) -> &Tok {
        self.toks
            .get(self.pos + n)
            .map(|t| &t.tok)
            .unwrap_or(&Tok::Eof)
    }

    /// Current 1-based line.
    pub fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    /// Advance and return the consumed token.
    #[allow(clippy::should_implement_trait)] // a cursor, not an Iterator
    pub fn next(&mut self) -> Tok {
        let t = self.peek().clone();
        if self.pos < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    /// Consume the given punctuation if present; returns whether it was.
    pub fn eat_punct(&mut self, p: &str) -> bool {
        if self.peek().is_punct(p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consume the given identifier if present; returns whether it was.
    pub fn eat_ident(&mut self, k: &str) -> bool {
        if self.peek().is_ident(k) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Require the given punctuation.
    pub fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(ParseError::new(
                self.line(),
                format!("expected {p:?}, found {:?}", self.peek()),
            ))
        }
    }

    /// Require any identifier and return it as an owned [`String`] (the AST
    /// stores plain `String` names).
    pub fn expect_any_ident(&mut self) -> Result<String, ParseError> {
        self.expect_any_ident_interned().map(|s| s.to_string())
    }

    /// Require any identifier and return the interned token text. Cloning a
    /// [`SmolStr`] out of the stream is allocation-free, so keyword-matching
    /// paths (directive/clause grammars) should prefer this.
    pub fn expect_any_ident_interned(&mut self) -> Result<smol_str::SmolStr, ParseError> {
        match self.next() {
            Tok::Ident(s) => Ok(s),
            other => Err(ParseError::new(
                self.line(),
                format!("expected identifier, found {other:?}"),
            )),
        }
    }

    /// Require the given identifier/keyword.
    pub fn expect_ident(&mut self, k: &str) -> Result<(), ParseError> {
        if self.eat_ident(k) {
            Ok(())
        } else {
            Err(ParseError::new(
                self.line(),
                format!("expected {k:?}, found {:?}", self.peek()),
            ))
        }
    }

    /// Skip any run of newline separators (Fortran).
    pub fn skip_newlines(&mut self) {
        while matches!(self.peek(), Tok::Newline) {
            self.pos += 1;
        }
    }

    /// True at end of input.
    pub fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }
}

/// Parse a full expression.
pub fn parse_expr(c: &mut Cursor, lang: Language) -> Result<Expr, ParseError> {
    parse_bin(c, lang, 0)
}

fn punct_binop(p: &str) -> Option<BinOp> {
    Some(match p {
        "+" => BinOp::Add,
        "-" => BinOp::Sub,
        "*" => BinOp::Mul,
        "/" => BinOp::Div,
        "%" => BinOp::Rem,
        "<" => BinOp::Lt,
        "<=" => BinOp::Le,
        ">" => BinOp::Gt,
        ">=" => BinOp::Ge,
        "==" => BinOp::Eq,
        "!=" => BinOp::Ne,
        "&&" => BinOp::And,
        "||" => BinOp::Or,
        "&" => BinOp::BitAnd,
        "|" => BinOp::BitOr,
        "^" => BinOp::BitXor,
        _ => return None,
    })
}

fn parse_bin(c: &mut Cursor, lang: Language, min_prec: u8) -> Result<Expr, ParseError> {
    c.descend()?;
    let r = parse_bin_inner(c, lang, min_prec);
    c.ascend();
    r
}

fn parse_bin_inner(c: &mut Cursor, lang: Language, min_prec: u8) -> Result<Expr, ParseError> {
    let mut lhs = parse_unary(c, lang)?;
    while let Tok::Punct(p) = c.peek() {
        let op = match punct_binop(p) {
            Some(op) if op.precedence() >= min_prec => op,
            _ => break,
        };
        c.next();
        let rhs = parse_bin(c, lang, op.precedence() + 1)?;
        lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
    }
    Ok(lhs)
}

fn parse_unary(c: &mut Cursor, lang: Language) -> Result<Expr, ParseError> {
    c.descend()?;
    let r = parse_unary_inner(c, lang);
    c.ascend();
    r
}

fn parse_unary_inner(c: &mut Cursor, lang: Language) -> Result<Expr, ParseError> {
    if c.eat_punct("-") {
        let inner = parse_unary(c, lang)?;
        // Fold -literal immediately so `(-1)` round-trips as Int(-1).
        return Ok(match inner {
            Expr::Int(v) => Expr::Int(-v),
            Expr::Real(v, t) => Expr::Real(-v, t),
            e => Expr::Unary(UnOp::Neg, Box::new(e)),
        });
    }
    if c.eat_punct("!") {
        let inner = parse_unary(c, lang)?;
        return Ok(Expr::Unary(UnOp::Not, Box::new(inner)));
    }
    if c.eat_punct("+") {
        return parse_unary(c, lang);
    }
    parse_postfix(c, lang)
}

fn parse_postfix(c: &mut Cursor, lang: Language) -> Result<Expr, ParseError> {
    let line = c.line();
    match c.next() {
        Tok::Int(v) => Ok(Expr::Int(v)),
        Tok::Real(v, double) => Ok(Expr::Real(
            v,
            if double {
                ScalarType::Double
            } else {
                ScalarType::Float
            },
        )),
        Tok::Punct("(") => {
            let e = parse_expr(c, lang)?;
            c.expect_punct(")")?;
            Ok(e)
        }
        Tok::Ident(name) => {
            if name == "sizeof" && lang == Language::C {
                c.expect_punct("(")?;
                let ty = parse_scalar_type_name(c)?;
                c.expect_punct(")")?;
                return Ok(Expr::SizeOf(ty));
            }
            match lang {
                Language::C => {
                    if c.peek().is_punct("(") {
                        c.next();
                        let args = parse_args(c, lang)?;
                        Ok(Expr::Call {
                            name: name.to_string(),
                            args,
                        })
                    } else if c.peek().is_punct("[") {
                        let mut indices = Vec::new();
                        while c.eat_punct("[") {
                            indices.push(parse_expr(c, lang)?);
                            c.expect_punct("]")?;
                        }
                        Ok(Expr::Index {
                            base: name.to_string(),
                            indices,
                        })
                    } else {
                        Ok(Expr::Var(name.to_string()))
                    }
                }
                Language::Fortran => {
                    if c.peek().is_punct("(") {
                        c.next();
                        let args = parse_args(c, lang)?;
                        if is_fortran_callable(&name) {
                            Ok(Expr::Call {
                                name: name.to_string(),
                                args,
                            })
                        } else {
                            Ok(Expr::Index {
                                base: name.to_string(),
                                indices: args,
                            })
                        }
                    } else {
                        Ok(Expr::Var(name.to_string()))
                    }
                }
            }
        }
        other => Err(ParseError::new(
            line,
            format!("expected expression, found {other:?}"),
        )),
    }
}

fn parse_args(c: &mut Cursor, lang: Language) -> Result<Vec<Expr>, ParseError> {
    let mut args = Vec::new();
    if c.eat_punct(")") {
        return Ok(args);
    }
    loop {
        args.push(parse_expr(c, lang)?);
        if c.eat_punct(",") {
            continue;
        }
        c.expect_punct(")")?;
        break;
    }
    Ok(args)
}

/// Parse a scalar type name (for `sizeof` and declarations).
pub fn parse_scalar_type_name(c: &mut Cursor) -> Result<ScalarType, ParseError> {
    let line = c.line();
    let name = c.expect_any_ident()?;
    match name.as_str() {
        "int" => Ok(ScalarType::Int),
        "float" => Ok(ScalarType::Float),
        "double" => Ok(ScalarType::Double),
        other => Err(ParseError::new(
            line,
            format!("unknown type name {other:?}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::{lex_c, lex_fortran};
    use acc_ast::cgen::expr_to_c;

    fn c_expr(src: &str) -> Expr {
        let toks = lex_c(src).unwrap();
        let mut c = Cursor::new(toks);
        parse_expr(&mut c, Language::C).unwrap()
    }

    fn f_expr(src: &str) -> Expr {
        let toks = lex_fortran(src).unwrap();
        let mut c = Cursor::new(toks);
        parse_expr(&mut c, Language::Fortran).unwrap()
    }

    #[test]
    fn precedence_c() {
        assert_eq!(expr_to_c(&c_expr("a + b * c")), "a + b * c");
        assert_eq!(expr_to_c(&c_expr("(a + b) * c")), "(a + b) * c");
        assert_eq!(expr_to_c(&c_expr("a - b - c")), "a - b - c");
        assert_eq!(expr_to_c(&c_expr("a - (b - c)")), "a - (b - c)");
    }

    #[test]
    fn logical_chain() {
        let e = c_expr("a == 1 && b != 0 || c");
        assert_eq!(expr_to_c(&e), "a == 1 && b != 0 || c");
    }

    #[test]
    fn calls_and_indexes_c() {
        let e = c_expr("powf(ft, i) + A[i][j]");
        assert_eq!(expr_to_c(&e), "powf(ft, i) + A[i][j]");
    }

    #[test]
    fn sizeof_c() {
        let e = c_expr("n * sizeof(float)");
        assert_eq!(
            e,
            Expr::mul(Expr::var("n"), Expr::SizeOf(ScalarType::Float))
        );
    }

    #[test]
    fn negative_literal_folds() {
        assert_eq!(c_expr("-1"), Expr::Int(-1));
        assert_eq!(c_expr("(-1)"), Expr::Int(-1));
        assert_eq!(c_expr("-1.5"), Expr::Real(-1.5, ScalarType::Double));
    }

    #[test]
    fn fortran_index_vs_call() {
        // `a(i)` is an index; `mod(i, 2)` and `acc_async_test(t)` are calls.
        assert_eq!(
            f_expr("a(i)"),
            Expr::Index {
                base: "a".into(),
                indices: vec![Expr::var("i")]
            }
        );
        assert!(matches!(f_expr("mod(i, 2)"), Expr::Call { .. }));
        assert!(matches!(f_expr("acc_async_test(t)"), Expr::Call { .. }));
    }

    #[test]
    fn fortran_two_dim_index() {
        assert_eq!(
            f_expr("m(i, j)"),
            Expr::Index {
                base: "m".into(),
                indices: vec![Expr::var("i"), Expr::var("j")]
            }
        );
    }

    #[test]
    fn fortran_logical_spellings() {
        let e = f_expr("a == 1 .and. .not. b");
        assert_eq!(expr_to_c(&e), "a == 1 && !b");
    }

    #[test]
    fn unary_plus_ignored() {
        assert_eq!(c_expr("+5"), Expr::Int(5));
    }

    #[test]
    fn error_on_garbage() {
        let toks = lex_c("*;\n").unwrap();
        let mut c = Cursor::new(toks);
        assert!(parse_expr(&mut c, Language::C).is_err());
    }

    #[test]
    fn pathological_paren_nesting_is_an_error_not_a_stack_overflow() {
        // Before the depth guard this recursed once per '(' and could blow
        // the stack — an abort no catch_unwind can isolate.
        let src = format!("{}1{}\n", "(".repeat(50_000), ")".repeat(50_000));
        let toks = lex_c(&src).unwrap();
        let mut c = Cursor::new(toks);
        let err = parse_expr(&mut c, Language::C).unwrap_err();
        assert!(err.to_string().contains("parser limit"), "{err}");
    }

    #[test]
    fn pathological_unary_nesting_is_an_error() {
        let src = format!("{}x\n", "!".repeat(50_000));
        let toks = lex_c(&src).unwrap();
        let mut c = Cursor::new(toks);
        assert!(parse_expr(&mut c, Language::C).is_err());
    }

    #[test]
    fn reasonable_nesting_still_parses() {
        let src = format!("{}1{}\n", "(".repeat(50), ")".repeat(50));
        let toks = lex_c(&src).unwrap();
        let mut c = Cursor::new(toks);
        assert_eq!(parse_expr(&mut c, Language::C).unwrap(), Expr::Int(1));
        // The counter unwinds fully: fresh parses have the whole budget.
        for _ in 0..3 {
            let mut c = Cursor::new(lex_c(&src).unwrap());
            assert!(parse_expr(&mut c, Language::C).is_ok());
        }
    }
}
