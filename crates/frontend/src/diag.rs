//! Diagnostics shared by both front-ends.

use std::fmt;

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note.
    Note,
    /// Non-fatal warning.
    Warning,
    /// Fatal error — compilation fails.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A diagnostic message with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity.
    pub severity: Severity,
    /// 1-based line, 0 when unknown.
    pub line: usize,
    /// Message text.
    pub message: String,
}

impl Diagnostic {
    /// Construct an error diagnostic.
    pub fn error(line: usize, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            line,
            message: message.into(),
        }
    }

    /// Construct a warning diagnostic.
    pub fn warning(line: usize, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}: {}", self.line, self.severity, self.message)
        } else {
            write!(f, "{}: {}", self.severity, self.message)
        }
    }
}

/// A fatal parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line where the failure was detected.
    pub line: usize,
    /// Message.
    pub message: String,
}

impl ParseError {
    /// Construct.
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let d = Diagnostic::error(3, "bad clause");
        assert_eq!(d.to_string(), "line 3: error: bad clause");
        let d0 = Diagnostic::warning(0, "general");
        assert_eq!(d0.to_string(), "warning: general");
        let p = ParseError::new(7, "unexpected token");
        assert_eq!(p.to_string(), "parse error at line 7: unexpected token");
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }
}
