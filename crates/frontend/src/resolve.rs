//! Name resolution: assign every identifier a frame slot index.
//!
//! The interpreter used to resolve every variable and array reference
//! through `HashMap<String, Value>` environments, cloning `String` keys on
//! each write — per loop iteration in the hot paths. This pass runs once
//! after sema and produces, per function, a [`FrameLayout`]: a dense
//! `name ↔ slot` mapping covering **every** identifier the function can
//! touch at run time (parameters, declarations, loop variables, assignment
//! targets, every `Expr::Var`/`Expr::Index` base, and all names appearing in
//! OpenACC clauses — private/firstprivate/reduction lists, data references,
//! `deviceptr`/`use_device` lists, wait/cache arguments). The interpreter
//! then backs its frames with slot-indexed `Vec` storage: loop bodies update
//! a pre-resolved slot instead of hashing and cloning a key per iteration.
//!
//! Unbound names are not an error here — a slot simply starts without a
//! binding, and reads of unbound slots surface through the interpreter's
//! existing "undefined variable" crash path (or fall through to device
//! constants such as `acc_device_nvidia`, which appear as plain `Expr::Var`
//! references and therefore also receive slots).

use acc_ast::{AccClause, AccDirective, Expr, LValue, Program, Stmt};
use std::collections::HashMap;

/// The dense `name ↔ slot` mapping for one function's frame.
#[derive(Debug, Clone, Default)]
pub struct FrameLayout {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl FrameLayout {
    /// Intern `name`, returning its (existing or new) slot.
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.names.len() as u32;
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), i);
        i
    }

    /// The slot assigned to `name`, if any.
    pub fn slot(&self, name: &str) -> Option<usize> {
        self.index.get(name).map(|&i| i as usize)
    }

    /// The name stored at `slot`.
    pub fn name(&self, slot: usize) -> &str {
        &self.names[slot]
    }

    /// Number of slots in the frame.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the layout has no slots.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All slot names, in slot order.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

/// Per-function frame layouts for a whole program, produced by [`resolve`].
#[derive(Debug, Clone, Default)]
pub struct ResolvedProgram {
    layouts: Vec<FrameLayout>,
    by_function: HashMap<String, usize>,
}

impl ResolvedProgram {
    /// The layout of the named function (every program function has one).
    pub fn layout(&self, function: &str) -> Option<&FrameLayout> {
        self.by_function.get(function).map(|&i| &self.layouts[i])
    }

    /// Number of resolved functions.
    pub fn len(&self) -> usize {
        self.layouts.len()
    }

    /// True when no functions were resolved.
    pub fn is_empty(&self) -> bool {
        self.layouts.is_empty()
    }
}

/// Resolve every function of `program` to a [`FrameLayout`].
pub fn resolve(program: &Program) -> ResolvedProgram {
    let mut layouts = Vec::with_capacity(program.functions.len());
    let mut by_function = HashMap::with_capacity(program.functions.len());
    for f in &program.functions {
        let mut layout = FrameLayout::default();
        // Parameters first: their slots are the call frame's prefix.
        for p in &f.params {
            layout.intern(&p.name);
        }
        for s in &f.body {
            s.visit(&mut |st| collect_stmt(st, &mut layout));
        }
        by_function.insert(f.name.clone(), layouts.len());
        layouts.push(layout);
    }
    ResolvedProgram {
        layouts,
        by_function,
    }
}

/// Collect the names of one statement node (bodies are handled by the
/// caller's [`Stmt::visit`] traversal).
fn collect_stmt(s: &Stmt, layout: &mut FrameLayout) {
    match s {
        Stmt::DeclScalar { name, init, .. } => {
            layout.intern(name);
            if let Some(e) = init {
                collect_expr(e, layout);
            }
        }
        Stmt::DeclArray { name, dims, .. } => {
            layout.intern(name);
            let _ = dims;
        }
        Stmt::Assign { target, value, .. } => {
            collect_lvalue(target, layout);
            collect_expr(value, layout);
        }
        Stmt::For(l) => {
            layout.intern(&l.var);
            collect_expr(&l.from, layout);
            collect_expr(&l.to, layout);
            collect_expr(&l.step, layout);
        }
        Stmt::If { cond, .. } => collect_expr(cond, layout),
        Stmt::Call { args, .. } => {
            for a in args {
                collect_expr(a, layout);
            }
        }
        Stmt::Return(e) => collect_expr(e, layout),
        Stmt::AccBlock { dir, .. } | Stmt::AccStandalone { dir } => {
            collect_directive(dir, layout);
        }
        Stmt::AccLoop { dir, l } => {
            collect_directive(dir, layout);
            layout.intern(&l.var);
            collect_expr(&l.from, layout);
            collect_expr(&l.to, layout);
            collect_expr(&l.step, layout);
        }
    }
}

fn collect_lvalue(lv: &LValue, layout: &mut FrameLayout) {
    match lv {
        LValue::Var(n) => {
            layout.intern(n);
        }
        LValue::Index { base, indices } => {
            layout.intern(base);
            for i in indices {
                collect_expr(i, layout);
            }
        }
    }
}

fn collect_expr(e: &Expr, layout: &mut FrameLayout) {
    e.visit(&mut |x| match x {
        Expr::Var(n) => {
            layout.intern(n);
        }
        Expr::Index { base, .. } => {
            layout.intern(base);
        }
        _ => {}
    });
}

fn collect_directive(dir: &AccDirective, layout: &mut FrameLayout) {
    if let Some(e) = &dir.wait_arg {
        collect_expr(e, layout);
    }
    for r in &dir.cache_args {
        layout.intern(&r.name);
        if let Some((a, b)) = &r.section {
            collect_expr(a, layout);
            collect_expr(b, layout);
        }
    }
    for c in &dir.clauses {
        match c {
            AccClause::If(e)
            | AccClause::NumGangs(e)
            | AccClause::NumWorkers(e)
            | AccClause::VectorLength(e)
            | AccClause::Collapse(e) => collect_expr(e, layout),
            AccClause::Async(e)
            | AccClause::Gang(e)
            | AccClause::Worker(e)
            | AccClause::Vector(e) => {
                if let Some(e) = e {
                    collect_expr(e, layout);
                }
            }
            AccClause::Reduction(_, names)
            | AccClause::Private(names)
            | AccClause::Firstprivate(names)
            | AccClause::Deviceptr(names)
            | AccClause::UseDevice(names) => {
                for n in names {
                    layout.intern(n);
                }
            }
            AccClause::Data(_, refs) => {
                for r in refs {
                    layout.intern(&r.name);
                    if let Some((a, b)) = &r.section {
                        collect_expr(a, layout);
                        collect_expr(b, layout);
                    }
                }
            }
            AccClause::Seq
            | AccClause::Independent
            | AccClause::DefaultNone
            | AccClause::Auto => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_spec::Language;

    fn resolved(src: &str) -> ResolvedProgram {
        let program = crate::parse(src, Language::C).unwrap();
        resolve(&program)
    }

    #[test]
    fn covers_decls_loops_and_clause_names() {
        let r = resolved(
            "int main(void) {\n\
             \x20   int error = 0;\n\
             \x20   int A[8];\n\
             \x20   #pragma acc parallel num_gangs(n) copy(A[0:8]) private(t) reduction(+:s)\n\
             \x20   {\n\
             \x20       #pragma acc loop\n\
             \x20       for (i = 0; i < 8; i++)\n\
             \x20       {\n\
             \x20           A[i] = A[i] + 1;\n\
             \x20       }\n\
             \x20   }\n\
             \x20   return error == 0;\n\
             }\n",
        );
        let layout = r.layout("main").expect("main resolved");
        for name in ["error", "A", "i", "n", "t", "s"] {
            assert!(layout.slot(name).is_some(), "missing slot for {name}");
        }
        // Slots are dense and names round-trip.
        for (i, name) in layout.names().iter().enumerate() {
            assert_eq!(layout.slot(name), Some(i));
            assert_eq!(layout.name(i), name);
        }
    }

    #[test]
    fn device_constants_get_slots_too() {
        // `acc_device_nvidia` appears as a plain variable reference; the
        // interpreter resolves it through its device-constant fallback, but
        // it still needs a slot so the lookup path is uniform.
        let r = resolved(
            "int main(void) {\n\
             \x20   int t = 0;\n\
             \x20   t = acc_get_device_type();\n\
             \x20   return t == acc_device_nvidia;\n\
             }\n",
        );
        let layout = r.layout("main").unwrap();
        assert!(layout.slot("acc_device_nvidia").is_some());
        assert!(layout.slot("t").is_some());
    }

    #[test]
    fn duplicate_mentions_share_one_slot() {
        let r = resolved(
            "int main(void) {\n\
             \x20   int x = 1;\n\
             \x20   x = x + x;\n\
             \x20   return x;\n\
             }\n",
        );
        let layout = r.layout("main").unwrap();
        assert_eq!(layout.len(), 1);
        assert_eq!(layout.slot("x"), Some(0));
    }
}
