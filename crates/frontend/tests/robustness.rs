//! Robustness fuzzing: the front-ends must never panic — arbitrary input
//! yields `Ok(program)` or a clean `ParseError`, and directive payloads of
//! any shape are likewise total.

use acc_spec::Language;
use proptest::prelude::*;

/// Characters weighted toward the language's own alphabet so the fuzzer
/// spends its budget inside the grammar, not on immediate lex errors.
fn soup() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        8 => prop::sample::select(vec![
            "int", "float", "double", "void", "main", "for", "if", "else", "return", "(", ")",
            "{", "}", "[", "]", ";", ",", "=", "+", "-", "*", "/", "%", "<", ">", "!", "&&",
            "||", "==", "!=", "+=", "0", "1", "42", "0.5f", "1e-9", "x", "A", "i", "n",
            "#pragma acc", "parallel", "kernels", "loop", "data", "copy", "copyin", "num_gangs",
            "reduction", "async", "wait", "acc_malloc", "sizeof", ":",
        ]).prop_map(str::to_string),
        2 => "[ -~]{0,6}".prop_map(|s| s),
        1 => prop::sample::select(vec![
            "do", "end", "function", "subroutine", "integer", "real", "implicit", "none",
            "call", "then", "!$acc", ".and.", ".or.", ".not.", "/=", "::",
        ]).prop_map(str::to_string),
    ];
    prop::collection::vec(atom, 0..60).prop_map(|parts| {
        let mut s = String::new();
        for (i, p) in parts.iter().enumerate() {
            s.push_str(p);
            s.push(if i % 7 == 6 { '\n' } else { ' ' });
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn c_parser_is_total(src in soup()) {
        let _ = acc_frontend::parse(&src, Language::C);
    }

    #[test]
    fn fortran_parser_is_total(src in soup()) {
        let _ = acc_frontend::parse(&src, Language::Fortran);
    }

    #[test]
    fn directive_parser_is_total(payload in soup()) {
        let one_line = payload.replace('\n', " ");
        for lang in [Language::C, Language::Fortran] {
            let _ = acc_frontend::directive::parse_directive(&one_line, lang, 1);
        }
    }

    #[test]
    fn lexers_are_total(src in "[ -~\n]{0,200}") {
        let _ = acc_frontend::lex::lex_c(&src);
        let _ = acc_frontend::lex::lex_fortran(&src);
    }

    #[test]
    fn sema_is_total_on_parsed_programs(src in soup()) {
        // Whatever parses must also be analyzable without panicking.
        if let Ok(p) = acc_frontend::parse(&src, Language::C) {
            let _ = acc_frontend::sema::analyze(&p, acc_spec::SpecVersion::V1_0);
        }
    }
}
