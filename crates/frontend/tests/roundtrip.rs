//! Property tests for the generation↔parsing contract:
//!
//! * C: `emit_c ∘ parse_c` is the **identity** on emitted text.
//! * Fortran: `emit_fortran ∘ parse_fortran` reaches a **fixpoint** after
//!   one normalization pass (declaration hoisting, compound-assignment
//!   expansion, do-loop bound rewriting are all normalizing).
//!
//! The generators produce programs shaped like the corpus: declared-before-
//! use variables, 0-based loops, structured OpenACC regions.

use acc_ast::builder as b;
use acc_ast::{cgen, fgen, AccClause, BinOp, Expr, Program, ScalarType, Stmt};
use acc_frontend::{cparse, fparse};
use acc_spec::{ClauseKind, Language, ReductionOp};
use proptest::prelude::*;

const SCALARS: &[&str] = &["x", "y", "s"];
const ARRAYS: &[&str] = &["A", "B"];

fn arb_leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (-20i64..100).prop_map(Expr::int),
        prop::sample::select(SCALARS).prop_map(Expr::var),
        prop::sample::select(ARRAYS).prop_map(|a| Expr::idx(a, Expr::var("i"))),
        (0u8..3).prop_map(|k| Expr::Real(
            [0.5, 2.0, 1e-3][k as usize],
            if k == 2 {
                ScalarType::Double
            } else {
                ScalarType::Float
            }
        )),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    arb_leaf().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                prop::sample::select(
                    &[
                        BinOp::Add,
                        BinOp::Sub,
                        BinOp::Mul,
                        BinOp::Lt,
                        BinOp::Le,
                        BinOp::Eq,
                        BinOp::Ne,
                        BinOp::And,
                        BinOp::Or,
                        BinOp::BitAnd,
                        BinOp::BitXor,
                    ][..]
                ),
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::bin(op, l, r)),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(acc_ast::UnOp::Not, Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::call("powf", vec![l, r])),
        ]
    })
}

fn arb_simple_stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (prop::sample::select(SCALARS), arb_expr()).prop_map(|(v, e)| b::set(v, e)),
        (prop::sample::select(ARRAYS), arb_expr()).prop_map(|(a, e)| b::set1(a, Expr::var("i"), e)),
        (prop::sample::select(SCALARS), arb_expr()).prop_map(|(v, e)| Stmt::assign_op(
            acc_ast::LValue::var(v),
            BinOp::Add,
            e
        )),
    ]
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        arb_simple_stmt(),
        // counted loop over i
        (1i64..20, prop::collection::vec(arb_simple_stmt(), 1..3))
            .prop_map(|(n, body)| b::for_upto("i", Expr::int(n), body)),
        // if/else
        (
            arb_expr(),
            prop::collection::vec(arb_simple_stmt(), 1..3),
            prop::collection::vec(arb_simple_stmt(), 0..2)
        )
            .prop_map(|(c, t, e)| Stmt::If {
                cond: c,
                then_body: t,
                else_body: e
            }),
        // an OpenACC region with a loop
        (1u32..8, prop::collection::vec(arb_simple_stmt(), 1..3)).prop_map(|(g, body)| {
            b::parallel_region(
                vec![
                    AccClause::NumGangs(Expr::int(g as i64)),
                    b::copy_sec("A", Expr::int(16)),
                ],
                vec![b::acc_loop(vec![], "i", Expr::int(16), body)],
            )
        }),
        // a data region with update inside
        prop::collection::vec(arb_simple_stmt(), 1..2).prop_map(|body| {
            b::data_region(
                vec![b::copyin_sec("A", Expr::int(16))],
                vec![
                    b::update(vec![AccClause::Data(
                        ClauseKind::HostClause,
                        vec![acc_ast::DataRef::section("A", Expr::int(0), Expr::int(16))],
                    )]),
                    Stmt::If {
                        cond: Expr::var("x"),
                        then_body: body,
                        else_body: vec![],
                    },
                ],
            )
        }),
        // a reduction loop
        prop::sample::select(&[ReductionOp::Add, ReductionOp::Max, ReductionOp::BitXor][..])
            .prop_map(|op| b::kernels_loop(
                vec![AccClause::Reduction(op, vec!["s".into()])],
                "i",
                Expr::int(8),
                vec![b::add("s", Expr::int(1))],
            )),
    ]
}

fn arb_program() -> impl Strategy<Value = Program> {
    prop::collection::vec(arb_stmt(), 1..6).prop_map(|stmts| {
        let mut body = vec![
            b::decl_int("x", 1),
            b::decl_int("y", 2),
            b::decl_int("s", 0),
            b::decl_array("A", ScalarType::Int, 16),
            b::decl_array("B", ScalarType::Int, 16),
        ];
        body.extend(stmts);
        body.push(Stmt::Return(Expr::var("s")));
        Program::simple("prop", Language::C, body)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn c_emit_parse_is_identity(p in arb_program()) {
        let src = cgen::emit_c(&p);
        let q = cparse::parse_c(&src)
            .unwrap_or_else(|e| panic!("{e}\n---\n{src}"));
        let src2 = cgen::emit_c(&q);
        prop_assert_eq!(&src, &src2, "C emit∘parse must be identity");
    }

    #[test]
    fn fortran_emit_parse_reaches_fixpoint(p in arb_program()) {
        let mut q = p;
        q.language = Language::Fortran;
        let src1 = fgen::emit_fortran(&q);
        let r1 = fparse::parse_fortran(&src1)
            .unwrap_or_else(|e| panic!("{e}\n---\n{src1}"));
        let src2 = fgen::emit_fortran(&r1);
        let r2 = fparse::parse_fortran(&src2)
            .unwrap_or_else(|e| panic!("{e}\n---\n{src2}"));
        let src3 = fgen::emit_fortran(&r2);
        prop_assert_eq!(&src2, &src3, "Fortran emit∘parse must be a fixpoint");
    }

    #[test]
    fn directive_count_is_preserved(p in arb_program()) {
        let n = p.directives().len();
        let src = cgen::emit_c(&p);
        let q = cparse::parse_c(&src).unwrap();
        prop_assert_eq!(q.directives().len(), n);
        let mut f = p;
        f.language = Language::Fortran;
        let fsrc = fgen::emit_fortran(&f);
        let r = fparse::parse_fortran(&fsrc).unwrap();
        prop_assert_eq!(r.directives().len(), n);
    }

    #[test]
    fn expr_const_fold_agrees_with_reparse(e in arb_expr()) {
        // Folding before and after a C round trip gives the same verdict.
        let before = e.const_int();
        let src = format!(
            "int main(void) {{\n    int x = 1;\n    int y = 2;\n    int s = 0;\n    int A[16];\n    int B[16];\n    s = {};\n    return s;\n}}\n",
            cgen::expr_to_c(&e)
        );
        let p = cparse::parse_c(&src).unwrap_or_else(|err| panic!("{err}\n{src}"));
        let reparsed = match &p.entry().unwrap().body[5] {
            Stmt::Assign { value, .. } => value.clone(),
            other => panic!("{other:?}"),
        };
        prop_assert_eq!(reparsed.const_int(), before);
    }
}
