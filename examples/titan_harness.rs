//! The production-deployment scenario of §VII / Fig. 13: run the validation
//! suite over random nodes of a simulated Titan, across both the
//! OpenACC→CUDA and OpenACC→OpenCL software stacks, find the faulty nodes,
//! and track functionality drift across scheduled runs.
//!
//! ```sh
//! cargo run --release --example titan_harness
//! ```

use openacc_vv::harness::{FunctionalityTracker, HarnessRun, NodeFault, SimulatedCluster};
use openacc_vv::prelude::*;

fn main() {
    // A 32-node slice of the machine; three nodes have gone bad in ways
    // users would only notice as wrong answers.
    let faults = [
        (5, NodeFault::GpuHang),
        (17, NodeFault::StaleRuntime),
        (23, NodeFault::BrokenModules),
    ];
    let cluster = SimulatedCluster::titan(32, &faults);
    println!(
        "cluster `{}`: {} nodes ({} healthy)\n",
        cluster.name,
        cluster.nodes.len(),
        cluster.healthy_count()
    );

    // Node-validation subset: one probe per functionality class, so a full
    // machine sweep stays cheap.
    let probe_features = [
        "loop",
        "data.copy",
        "parallel.async",
        "update.host",
        "parallel.reduction",
    ];
    let suite: Vec<TestCase> = openacc_vv::testsuite::full_suite()
        .into_iter()
        .filter(|c| probe_features.contains(&c.feature.as_str()))
        .collect();
    let run = HarnessRun::new(suite, 12);

    let mut tracker = FunctionalityTracker::new();
    for (week, seed) in [("week-1", 1001u64), ("week-2", 1002), ("week-3", 1003)] {
        let report = run.execute(&cluster, seed);
        println!("== {week}: sampled nodes {:?}", report.sampled);
        println!("{}", report.matrix());
        let suspects = report.suspect_nodes(99.0);
        if suspects.is_empty() {
            println!("no suspect nodes this run\n");
        } else {
            println!("suspect nodes to drain: {suspects:?}\n");
        }
        // Track the machine-wide average per stack (the per-node matrix is
        // printed above; the tracker watches the fleet trend).
        let mut per_stack: std::collections::BTreeMap<&str, (f64, u32)> = Default::default();
        for r in &report.results {
            let e = per_stack.entry(r.stack.as_str()).or_insert((0.0, 0));
            e.0 += r.pass_rate;
            e.1 += 1;
        }
        for (stack, (sum, n)) in per_stack {
            tracker.record(stack, week, sum / n as f64);
        }
    }

    println!("== functionality drift across runs ==");
    let drifts = tracker.latest_drifts();
    if drifts.is_empty() {
        println!("stable");
    }
    for d in drifts {
        println!("{d}");
    }
    println!("\n{}", tracker.trend_table());
}
