//! The Fig. 1 specification ambiguity, explored: a `loop worker` with no
//! enclosing `loop gang`. OpenACC 1.0 does not define its behaviour; this
//! example runs the probe under all three vendor policies and prints their
//! (legitimately) divergent answers, plus the 2.0 resolutions catalogued in
//! `acc_spec::resolution`.
//!
//! ```sh
//! cargo run --example ambiguity_explorer
//! ```

use openacc_vv::compiler::{RunOutcome, VendorCompiler, VendorId};
use openacc_vv::prelude::*;
use openacc_vv::spec::AmbiguityId;
use openacc_vv::testsuite::ambiguity;

fn main() {
    let program = ambiguity::worker_without_gang_program();
    let source = openacc_vv::ast::render(&program);
    println!("== the Fig. 1 probe ==\n{source}");
    println!(
        "({} gangs, worker loop over {} iterations; the program returns the \
         increment count observed per element)\n",
        ambiguity::GANGS,
        ambiguity::ITERS
    );

    println!("== what each vendor's interpretation produces ==");
    for vendor in VendorId::COMMERCIAL {
        let compiler = VendorCompiler::latest(vendor);
        let exe = compiler
            .compile(&source, Language::C)
            .expect("the probe is syntactically valid 1.0");
        let observed = match exe.run().outcome {
            RunOutcome::Completed(v) => v,
            other => panic!("{other:?}"),
        };
        let policy = vendor.worker_loop_policy();
        println!(
            "  {:<6} increments/element = {observed}   (policy: {policy:?}, expected {})",
            vendor.name(),
            ambiguity::expected_for_policy(policy)
        );
    }

    println!("\n== the 1.0 ambiguities the paper reported, and their 2.0 resolutions ==");
    for id in AmbiguityId::ALL {
        let r = id.record();
        println!(
            "* {}\n    1.0: {}\n    2.0: {}\n",
            r.title, r.description, r.resolution
        );
    }
}
