//! Quickstart: validate one OpenACC feature against a vendor compiler and
//! print the plain-text report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use openacc_vv::prelude::*;
use openacc_vv::validation::report;

fn main() {
    // The corpus ships 100+ feature tests; pick the classic Fig. 2 `loop`
    // test plus the whole `data` area.
    let suite = openacc_vv::testsuite::full_suite();
    let campaign =
        Campaign::new(suite).with_config(SuiteConfig::new().select_prefixes(&["loop", "data"]));

    // Validate the newest CAPS release…
    let caps = VendorCompiler::latest(VendorId::Caps);
    let run = campaign.run_one(&caps);
    println!("{}", report::render(&run, ReportFormat::Text));

    // …and an early one, to see the suite catch real bugs.
    let early = VendorCompiler::new(VendorId::Caps, "3.0.7".parse().unwrap());
    let run = campaign.run_one(&early);
    println!(
        "CAPS 3.0.7: C pass rate {:.1}%, Fortran pass rate {:.1}%",
        run.pass_rate(Language::C),
        run.pass_rate(Language::Fortran),
    );
    for feature in run.failing_features(Language::C) {
        println!("  failing (C): {feature}");
    }
}
