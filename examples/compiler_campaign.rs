//! The full evaluation campaign of the paper's §V: run the complete suite
//! against all eight released versions of each vendor compiler and print
//! the Fig. 8 pass-rate series and the Table I bug counts.
//!
//! ```sh
//! cargo run --release --example compiler_campaign
//! ```

use openacc_vv::compiler::{BugCatalog, VendorId};
use openacc_vv::prelude::*;

fn main() {
    let suite = openacc_vv::testsuite::full_suite();
    println!(
        "suite: {} feature cases, {} generated test programs\n",
        suite.len(),
        openacc_vv::testsuite::variant_count(&suite)
    );
    let campaign = Campaign::new(suite);
    let catalog = BugCatalog::paper();

    for vendor in VendorId::COMMERCIAL {
        println!("=== {} (Fig. 8 pass rates) ===", vendor.name());
        println!("{:>10} {:>8} {:>10}", "version", "C %", "Fortran %");
        let result = campaign.run_vendor_line(vendor);
        for (version, run) in vendor.versions().iter().zip(&result.runs) {
            println!(
                "{:>10} {:>8.1} {:>10.1}",
                version.to_string(),
                run.pass_rate(Language::C),
                run.pass_rate(Language::Fortran)
            );
        }
        println!("\n--- Table I bug counts ({}) ---", vendor.name());
        print!("{:>10}", "version");
        for v in vendor.versions() {
            print!("{:>8}", v.to_string());
        }
        println!();
        for lang in [Language::C, Language::Fortran] {
            print!("{:>10}", lang.letter());
            for v in vendor.versions() {
                print!("{:>8}", catalog.count(vendor, v, lang));
            }
            println!();
        }
        println!();
    }
}
