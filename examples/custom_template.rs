//! Author a brand-new feature test as a text template — exactly how a
//! contributor extends the suite (§III: "Extensible test infrastructure") —
//! then watch the infrastructure expand it into four programs, self-check
//! it against the reference implementation, and run it against a buggy
//! compiler release.
//!
//! ```sh
//! cargo run --example custom_template
//! ```

use openacc_vv::prelude::*;
use openacc_vv::validation::harness::{run_case, validate_case};
use openacc_vv::validation::template::{parse_templates, render_template};

const MY_TEMPLATE: &str = r#"
<acctest name="custom.firstprivate_sum" feature="parallel.firstprivate"
         cross="replace-clause:parallel.firstprivate->private" repetitions="5">
<description>firstprivate seeds every gang with the host value; a gang-count
reduction over it is fully determined</description>
<code>
int main(void) {
    int error = 0;
    int seed = 5;
    int total = 0;
    #pragma acc parallel num_gangs(8) firstprivate(seed) reduction(+:total)
    {
        total += seed;
    }
    if (total != 40)
    {
        error++;
    }
    return error == 0;
}
</code>
</acctest>
"#;

fn main() {
    // 1. Expand the template.
    let case = parse_templates(MY_TEMPLATE)
        .expect("template parses")
        .remove(0);
    println!(
        "== generated functional test (C) ==\n{}",
        case.source_for(Language::C)
    );
    println!(
        "== generated functional test (Fortran) ==\n{}",
        case.source_for(Language::Fortran)
    );
    println!(
        "== generated cross test (C) ==\n{}",
        case.cross_source_for(Language::C).unwrap()
    );

    // 2. Self-check against the reference implementation: the functional
    //    test must pass and the cross test must discriminate.
    let problems = validate_case(&case);
    assert!(problems.is_empty(), "{problems:?}");
    println!("reference self-check: OK (functional passes, cross discriminates)\n");

    // 3. Run it against a release carrying the firstprivate bug.
    for (vendor, version) in [(VendorId::Caps, "3.1.0"), (VendorId::Caps, "3.3.4")] {
        let compiler = VendorCompiler::new(vendor, version.parse().unwrap());
        let result = run_case(&case, &compiler, Language::C);
        println!(
            "{} {}: {}  {}",
            vendor.name(),
            version,
            result.status,
            result
                .certainty
                .map(|c| format!("[{c}]"))
                .unwrap_or_default()
        );
    }

    // 4. The canonical archival form.
    println!(
        "\n== canonical template form ==\n{}",
        render_template(&case)
    );
}
